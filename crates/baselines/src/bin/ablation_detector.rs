//! Ablation of BaFFLe's validation function: which ingredients of the
//! per-class LOF analysis carry the detection power?
//!
//! Compares, per validator (no quorum — this isolates the detector):
//!
//! - the full BaFFLe detector (LOF on `[vˢ, vᵗ]`);
//! - LOF on the source-focused half only;
//! - LOF on the target-focused half only;
//! - a z-score test on the variation norm (magnitude, no direction);
//! - a naive accuracy gate.
//!
//! Each detector sees the same stream of clean and poisoned candidate
//! models and the same per-client validation sets.
//!
//! Run with `cargo run --release -p baffle-baselines --bin ablation_detector`.

use baffle_attack::voting::Vote;
use baffle_attack::{BackdoorSpec, ModelReplacement};
use baffle_baselines::detectors::{
    AccuracyGate, BaffleDetector, Detector, HalfVariationLof, VariationHalf, VariationZScore,
};
use baffle_core::exp::{ExpArgs, Table};
use baffle_core::metrics::DetectionCounts;
use baffle_core::ValidationConfig;
use baffle_data::{SyntheticVision, VisionSpec};
use baffle_fl::LocalTrainer;
use baffle_nn::{Mlp, MlpSpec, Sgd};
use baffle_tensor::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let lookback = 12;
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(BaffleDetector::new(ValidationConfig::new(lookback).with_margin(1.2))),
        Box::new(HalfVariationLof::new(VariationHalf::SourceOnly, lookback, 1.2)),
        Box::new(HalfVariationLof::new(VariationHalf::TargetOnly, lookback, 1.2)),
        Box::new(VariationZScore::new(3.0)),
        Box::new(AccuracyGate::new(0.05)),
    ];
    let mut counts: Vec<DetectionCounts> = vec![DetectionCounts::default(); detectors.len()];

    let rounds = if args.fast { 12 } else { 25 };
    for rep in 0..args.reps() {
        let mut rng = StdRng::seed_from_u64(args.seed + 31 * rep as u64);
        let spec = VisionSpec::cifar_like();
        let gen = SyntheticVision::new(&spec, &mut rng);
        let backdoor = BackdoorSpec::semantic(1, 0, 2);
        let train = gen.generate_excluding(&mut rng, 6_000, 1, 0);
        let validation = gen.generate_excluding(&mut rng, 400, 1, 0);
        let attacker_bd = gen.generate_subgroup(&mut rng, 150, 1, 0);

        // Stable model + history via central training snapshots plus
        // FL-style rounds.
        let mut model =
            Mlp::new(&MlpSpec::new(spec.input_dim(), &[48], spec.num_classes()), &mut rng);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..10 {
            model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
        }
        let trainer = LocalTrainer::new(2, 0.1, 32);
        let mut history = Vec::new();
        let advance = |model: &mut Mlp, rng: &mut StdRng| {
            // One simulated FL round: average 6 client updates.
            let mut sum = vec![0.0_f32; baffle_nn::Model::num_params(model)];
            for _ in 0..6 {
                let shard = train.split_random(rng, 400).0;
                let u = trainer.train_update(model, &shard, rng);
                ops::axpy(1.0 / 6.0, &u, &mut sum);
            }
            let mut p = baffle_nn::Model::params(model);
            ops::axpy(1.0, &sum, &mut p);
            baffle_nn::Model::set_params(model, &p);
        };
        for _ in 0..lookback + 2 {
            advance(&mut model, &mut rng);
            history.push(model.clone());
        }

        let attack = ModelReplacement::new(backdoor, 1.0);
        for round in 0..rounds {
            let poisoned = round % 5 == 4; // every 5th candidate is poisoned
            let candidate = if poisoned {
                let mut atk_rng = StdRng::seed_from_u64(args.seed + round as u64);
                attack.train_backdoored(&model, &train, &attacker_bd, &mut atk_rng)
            } else {
                let mut next = model.clone();
                advance(&mut next, &mut rng);
                next
            };
            for (d, c) in detectors.iter().zip(&mut counts) {
                let vote = d.vote(&candidate, &history, &validation).unwrap_or(Vote::Accept);
                c.record(poisoned, matches!(vote, Vote::Reject));
            }
            if !poisoned {
                // Clean candidates are integrated; poisoned ones dropped
                // (ground-truth-perfect server keeps trajectories aligned).
                model = candidate;
                history.push(model.clone());
                history.remove(0);
            }
        }
    }

    let mut table = Table::new(
        "Detector ablation (per-validator, no quorum): semantic backdoor vs clean rounds",
        &["detector", "FP rate", "FN rate", "accuracy", "clean n", "poisoned n"],
    );
    for (d, c) in detectors.iter().zip(&counts) {
        table.row(vec![
            d.name().to_string(),
            format!("{:.3}", c.false_positive_rate()),
            format!("{:.3}", c.false_negative_rate()),
            format!("{:.3}", c.accuracy()),
            c.clean().to_string(),
            c.poisoned().to_string(),
        ]);
    }
    table.emit(&args);
}
