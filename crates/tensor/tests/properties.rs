//! Property-based tests for the math kernels.

use baffle_tensor::{ops, Matrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0_f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0_f32..10.0, len)
}

proptest! {
    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    /// matmul_nt and matmul_tn agree with their explicit-transpose forms.
    #[test]
    fn fused_transpose_kernels_agree(a in matrix_strategy(3, 5), b in matrix_strategy(4, 5), c in matrix_strategy(3, 4)) {
        let nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
        let tn = c.matmul_tn(&a);
        let explicit = c.transpose().matmul(&a);
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    /// Matrix multiplication distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(a in matrix_strategy(2, 3), b in matrix_strategy(3, 2), c in matrix_strategy(3, 2)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    /// lerp(a, b, t) is between a and b coordinate-wise for t ∈ [0, 1].
    #[test]
    fn lerp_stays_in_segment(a in vec_strategy(6), b in vec_strategy(6), t in 0.0_f32..1.0) {
        let l = ops::lerp(&a, &b, t);
        for ((&x, &y), &z) in a.iter().zip(&b).zip(&l) {
            let (lo, hi) = (x.min(y), x.max(y));
            prop_assert!((lo - 1e-4..=hi + 1e-4).contains(&z));
        }
    }

    /// ‖a − b‖ satisfies the triangle inequality through any midpoint.
    #[test]
    fn distance_triangle(a in vec_strategy(5), b in vec_strategy(5), c in vec_strategy(5)) {
        let ab = ops::distance(&a, &b);
        let ac = ops::distance(&a, &c);
        let cb = ops::distance(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-3);
    }

    /// clip_norm never increases the norm, and respects the bound.
    #[test]
    fn clip_norm_contract(mut v in vec_strategy(8), max_norm in 0.01_f32..20.0) {
        let before = ops::norm(&v);
        ops::clip_norm(&mut v, max_norm);
        let after = ops::norm(&v);
        prop_assert!(after <= before + 1e-4);
        prop_assert!(after <= max_norm * (1.0 + 1e-4) + 1e-6);
    }

    /// mean of k copies of v is v.
    #[test]
    fn mean_of_copies_is_identity(v in vec_strategy(4), k in 1usize..6) {
        let copies = vec![v.clone(); k];
        let m = ops::mean(&copies);
        for (x, y) in m.iter().zip(&v) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// argmax_rows returns indices of maximal entries.
    #[test]
    fn argmax_is_maximal(m in matrix_strategy(4, 6)) {
        for (r, &idx) in m.argmax_rows().iter().enumerate() {
            let row = m.row(r);
            for &v in row {
                prop_assert!(row[idx] >= v);
            }
        }
    }

    /// transpose preserves the multiset of entries and the Frobenius norm.
    #[test]
    fn transpose_preserves_norm(m in matrix_strategy(3, 7)) {
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-3);
    }
}

// ---------------------------------------------------------------------------
// Blocked/parallel GEMM vs the retained naive reference: the dispatched
// kernels must be BIT-identical (`to_bits` equality, not epsilon), at any
// shape — including 1×N / N×1 and non-multiple-of-tile dims — and at any
// thread count. Large banded shapes are covered by unit tests in
// `baffle_tensor::gemm`; these randomized ones sweep the small-shape space.
//
// Under the opt-in fast-math tier (`BAFFLE_FAST_MATH=1` with SIMD on) the
// dispatchers route to the FMA-contracted kernels instead, so the bitwise
// oracle switches to the serial fast kernel for the same shape — banding is
// over independent output rows, so the dispatched result must still match
// it exactly. The fast kernels themselves are pinned to the exact reference
// by the `error_bound` properties at the bottom, on every tier.
// ---------------------------------------------------------------------------

use baffle_tensor::gemm;

/// Whether the dispatchers currently route to the fast kernels (the CI
/// `BAFFLE_FAST_MATH=1` re-run flips this for the whole suite).
fn fast_dispatch() -> bool {
    gemm::fast_math_enabled() && gemm::simd_enabled()
}

/// Random dims straddling the 32-wide tile edges, 1×N/N×1 included.
fn gemm_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=40, 1usize..=40, 1usize..=40)
}

/// Random data with ~10 % exact zeros — the removed zero-skip fast path
/// made zeros a historical edge case worth hammering.
fn gemm_data(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0_f32..10.0, len)
        .prop_map(|v| v.into_iter().map(|x| if x.abs() < 1.0 { 0.0 } else { x }).collect())
}

fn nn_problem() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    gemm_dims()
        .prop_flat_map(|(m, k, n)| (Just(m), Just(k), Just(n), gemm_data(m * k), gemm_data(k * n)))
}

fn tn_problem() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    gemm_dims()
        .prop_flat_map(|(m, k, n)| (Just(m), Just(k), Just(n), gemm_data(m * k), gemm_data(m * n)))
}

fn nt_problem() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    gemm_dims()
        .prop_flat_map(|(m, k, n)| (Just(m), Just(k), Just(n), gemm_data(m * k), gemm_data(n * k)))
}

proptest! {
    /// `Matrix::matmul` (blocked, possibly banded) ≡ its serial oracle,
    /// bitwise: naive on the default tier, the fast kernel under
    /// `BAFFLE_FAST_MATH=1` (row banding cannot change fast results —
    /// each output row's chains read only that row of A).
    #[test]
    fn matmul_is_bit_identical_to_oracle((m, k, n, a, b) in nn_problem()) {
        let got = Matrix::from_vec(m, k, a.clone()).matmul(&Matrix::from_vec(k, n, b.clone()));
        let mut want = vec![0.0f32; m * n];
        if fast_dispatch() {
            gemm::fast_nn(m, k, n, &a, &b, &mut want);
        } else {
            gemm::naive_nn(m, k, n, &a, &b, &mut want);
        }
        for (x, y) in got.as_slice().iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `Matrix::matmul_tn` ≡ its serial oracle, bitwise (A is m×k, B is
    /// m×n): naive Aᵀ·B by default, the fast `tn` kernel when fast math
    /// dispatches.
    #[test]
    fn matmul_tn_is_bit_identical_to_oracle((m, k, n, a, b) in tn_problem()) {
        let got = Matrix::from_vec(m, k, a.clone()).matmul_tn(&Matrix::from_vec(m, n, b.clone()));
        let mut want = vec![0.0f32; k * n];
        if fast_dispatch() {
            gemm::fast_tn(m, k, n, &a, &b, &mut want);
        } else {
            gemm::naive_tn(m, k, n, &a, &b, &mut want);
        }
        for (x, y) in got.as_slice().iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `Matrix::matmul_nt` ≡ naive A·Bᵀ, bitwise (A is m×k, B is n×k).
    /// Holds on every tier at these dims: below the pack threshold the
    /// dispatcher runs the exact dot-product loop even under fast math,
    /// and all dims here (≤ 40³) sit below it.
    #[test]
    fn matmul_nt_is_bit_identical_to_naive((m, k, n, a, b) in nt_problem()) {
        let got = Matrix::from_vec(m, k, a.clone()).matmul_nt(&Matrix::from_vec(n, k, b.clone()));
        let mut want = vec![0.0f32; m * n];
        gemm::naive_nt(m, k, n, &a, &b, &mut want);
        for (x, y) in got.as_slice().iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The explicit 8-wide micro-kernel ≡ naive, bitwise — regardless of
    /// whether dispatch would have picked it (`simd_nn` is called
    /// directly, so this holds even under `BAFFLE_NO_SIMD=1`).
    #[test]
    fn simd_nn_is_bit_identical_to_naive((m, k, n, a, b) in nn_problem()) {
        let mut got = vec![0.0f32; m * n];
        gemm::simd_nn(m, k, n, &a, &b, &mut got);
        let mut want = vec![0.0f32; m * n];
        gemm::naive_nn(m, k, n, &a, &b, &mut want);
        for (x, y) in got.iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The 8-wide Aᵀ·B micro-kernel (strided A reads) ≡ naive, bitwise.
    #[test]
    fn simd_tn_is_bit_identical_to_naive((m, k, n, a, b) in tn_problem()) {
        let mut got = vec![0.0f32; k * n];
        gemm::simd_tn(m, k, n, &a, &b, &mut got);
        let mut want = vec![0.0f32; k * n];
        gemm::naive_tn(m, k, n, &a, &b, &mut want);
        for (x, y) in got.iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Wide-N problems exercise the full 64-column accumulator sweep and
    /// both tails in one shot; dims straddle the 64/8/1 boundaries.
    #[test]
    fn simd_wide_rows_are_bit_identical(
        m in 1usize..=4,
        k in 1usize..=48,
        n in 57usize..=97,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 33) as i32 % 2001 - 1000) as f32 / 100.0;
            if v.abs() < 1.0 { 0.0 } else { v }
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let mut got = vec![0.0f32; m * n];
        gemm::simd_nn(m, k, n, &a, &b, &mut got);
        let mut want = vec![0.0f32; m * n];
        gemm::naive_nn(m, k, n, &a, &b, &mut want);
        for (x, y) in got.iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// Fast-math tier vs the bit-exact oracle: the FMA-contracted kernels are
// called DIRECTLY (no dispatch), so these properties hold on every tier and
// pin the documented `error_bound` contract — per element,
// |fast − exact| ≤ error_bound(depth) · Σᵢ|aᵢ|·|bᵢ|, with the envelope
// accumulated in f64 so the bound itself carries no rounding slack.
// ---------------------------------------------------------------------------

proptest! {
    /// `fast_nn` stays within the documented relative-error bound of the
    /// exact kernel, element-wise, across random shapes and data.
    #[test]
    fn fast_nn_within_error_bound_of_exact((m, k, n, a, b) in nn_problem()) {
        let mut exact = vec![0.0f32; m * n];
        gemm::naive_nn(m, k, n, &a, &b, &mut exact);
        let mut fast = vec![0.0f32; m * n];
        gemm::fast_nn(m, k, n, &a, &b, &mut fast);
        let bound = gemm::error_bound(k);
        for i in 0..m {
            for j in 0..n {
                let envelope: f64 = (0..k)
                    .map(|kk| (a[i * k + kk] as f64 * b[kk * n + j] as f64).abs())
                    .sum();
                let diff = (fast[i * n + j] as f64 - exact[i * n + j] as f64).abs();
                prop_assert!(
                    diff <= bound * envelope + f64::EPSILON,
                    "({}, {}): |{} - {}| = {} > {}",
                    i, j, fast[i * n + j], exact[i * n + j], diff, bound * envelope
                );
            }
        }
    }

    /// `fast_tn` (Aᵀ·B orientation, depth = the shared row count) obeys
    /// the same bound.
    #[test]
    fn fast_tn_within_error_bound_of_exact((m, k, n, a, b) in tn_problem()) {
        let mut exact = vec![0.0f32; k * n];
        gemm::naive_tn(m, k, n, &a, &b, &mut exact);
        let mut fast = vec![0.0f32; k * n];
        gemm::fast_tn(m, k, n, &a, &b, &mut fast);
        let bound = gemm::error_bound(m);
        for i in 0..k {
            for j in 0..n {
                let envelope: f64 = (0..m)
                    .map(|r| (a[r * k + i] as f64 * b[r * n + j] as f64).abs())
                    .sum();
                let diff = (fast[i * n + j] as f64 - exact[i * n + j] as f64).abs();
                prop_assert!(
                    diff <= bound * envelope + f64::EPSILON,
                    "({}, {}): |{} - {}| = {} > {}",
                    i, j, fast[i * n + j], exact[i * n + j], diff, bound * envelope
                );
            }
        }
    }

    /// Fused batched blocks ≡ standalone `nn` calls, bitwise, on EVERY
    /// tier — each block runs the same serial kernel over the same data,
    /// so even the fast kernels must agree with themselves.
    #[test]
    fn batched_nn_blocks_match_standalone_on_all_tiers(
        nb in 1usize..=4,
        (m, k, n) in (1usize..=12, 1usize..=12, 1usize..=12),
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 2001 - 1000) as f32 / 100.0
        };
        let a: Vec<f32> = (0..nb * m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..nb * k * n).map(|_| next()).collect();
        let mut got = vec![0.0f32; nb * m * n];
        gemm::batched_nn(nb, m, k, n, &a, &b, &mut got);
        for bi in 0..nb {
            let mut want = vec![0.0f32; m * n];
            gemm::nn(m, k, n, &a[bi * m * k..(bi + 1) * m * k], &b[bi * k * n..(bi + 1) * k * n], &mut want);
            for (x, y) in got[bi * m * n..(bi + 1) * m * n].iter().zip(&want) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
