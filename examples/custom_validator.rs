//! Uses the BaFFLe building blocks directly — without the bundled
//! `Simulation` driver — to validate your own sequence of models.
//!
//! This is the integration path for a real FL deployment: you hold a
//! history of accepted global models and a local validation set, and you
//! want a vote on the next candidate model.
//!
//! ```sh
//! cargo run --release --example custom_validator
//! ```

use baffle::attack::{BackdoorSpec, ModelReplacement};
use baffle::core::{ModelHistory, ValidationConfig, Validator};
use baffle::data::{SyntheticVision, VisionSpec};
use baffle::nn::{Mlp, MlpSpec, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // Your data pipeline: any labelled dataset works; here we draw a
    // synthetic 8-class problem.
    let spec = VisionSpec::new(8, 24, 2);
    let gen = SyntheticVision::new(&spec, &mut rng);
    let train = gen.generate(&mut rng, 4_000);
    let my_validation_set = gen.generate(&mut rng, 500);

    // Your model pipeline: a sequence of gradually improving models —
    // here, snapshots of an SGD run, standing in for the accepted global
    // models of an FL deployment.
    let mut model = Mlp::new(&MlpSpec::new(24, &[32], 8), &mut rng);
    let mut opt = Sgd::new(0.05).with_momentum(0.9);
    let mut history = ModelHistory::new(11); // keep ℓ+1 = 11 models
    for _ in 0..14 {
        model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
        history.push(model.clone());
    }

    // The validator: Algorithm 2 with a look-back window of ℓ = 10.
    let validator = Validator::new(ValidationConfig::new(10));

    // Candidate A: one more epoch of honest training.
    let mut honest = model.clone();
    honest.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
    let verdict = validator
        .validate(&honest, history.models(), &my_validation_set)
        .expect("enough history and data");
    println!(
        "honest candidate:   vote={:?}  LOF={:.3}  threshold={:.3}",
        verdict.vote(),
        verdict.outlier_factor(),
        verdict.threshold()
    );
    assert!(!verdict.is_reject());

    // Candidate B: a backdoored model (label-flip class 2 → 5).
    let backdoor = BackdoorSpec::label_flip(2, 5);
    let attack = ModelReplacement::new(backdoor, 1.0);
    let backdoor_data = gen.generate_class(&mut rng, 150, 2);
    let poisoned = attack.train_backdoored(&model, &train, &backdoor_data, &mut rng);
    let verdict = validator
        .validate(&poisoned, history.models(), &my_validation_set)
        .expect("enough history and data");
    println!(
        "poisoned candidate: vote={:?}  LOF={:.3}  threshold={:.3}",
        verdict.vote(),
        verdict.outlier_factor(),
        verdict.threshold()
    );
    assert!(verdict.is_reject());

    println!("\nthe LOF of the poisoned update dwarfs the trusted threshold — rejected.");
}
