//! A small residual convolutional classifier ("MiniResNet").
//!
//! The nearest in-repo analogue of the paper's ResNet18: a stack of
//! same-padded 1-D convolutions with an optional residual connection,
//! global average pooling and a dense classification head. Like
//! [`crate::Mlp`], it implements [`Model`], so the whole FL and defense
//! stack — FedAvg over flat parameters, Algorithm 2 validation — works
//! with it unchanged (the defense is model-agnostic by design).

use crate::conv::{Conv1d, GlobalAvgPool1d};
use crate::{softmax_cross_entropy, softmax_cross_entropy_into, Activation, Dense, Model, Sgd};
use baffle_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture of a [`Cnn`]: signal length, conv channel widths, kernel
/// size, residual toggle and class count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnSpec {
    input_len: usize,
    channels: Vec<usize>,
    kernel: usize,
    num_classes: usize,
    residual: bool,
}

impl CnnSpec {
    /// Creates a spec. Input signals have one channel and `input_len`
    /// samples; `channels` gives the output width of each conv stage.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `num_classes < 2`, or the kernel
    /// is even.
    pub fn new(input_len: usize, channels: &[usize], kernel: usize, num_classes: usize) -> Self {
        assert!(input_len > 0, "CnnSpec: input_len must be positive");
        assert!(!channels.is_empty(), "CnnSpec: need at least one conv stage");
        assert!(channels.iter().all(|&c| c > 0), "CnnSpec: channel widths must be positive");
        assert!(kernel % 2 == 1, "CnnSpec: kernel must be odd");
        assert!(num_classes >= 2, "CnnSpec: need at least two classes");
        Self { input_len, channels: channels.to_vec(), kernel, num_classes, residual: false }
    }

    /// Adds a residual (skip) connection around every conv stage whose
    /// input and output widths match — the ResNet building block.
    pub fn with_residual(mut self) -> Self {
        self.residual = true;
        self
    }

    /// Signal length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether residual connections are enabled.
    pub fn residual(&self) -> bool {
        self.residual
    }
}

/// Persistent scratch for the allocation-free CNN training hot path.
/// `acts[s]` holds stage `s`'s *post-skip* activation, which doubles as
/// the next stage's input **and** its residual skip term — replacing the
/// per-stage input clones of the reference path. All buffers are reused
/// across batches; contents are fully rewritten each use.
#[derive(Debug, Clone, Default)]
struct CnnScratch {
    acts: Vec<Matrix>,
    pooled: Matrix,
    logits: Matrix,
    loss_grad: Matrix,
    grad_pooled: Matrix,
    /// Gradient ping-pong pair for the backward chain over conv stages.
    grad_a: Matrix,
    grad_b: Matrix,
    /// Mini-batch staging for `train_epoch`.
    xb: Matrix,
    yb: Vec<usize>,
    order: Vec<usize>,
}

/// The residual 1-D CNN classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cnn {
    spec: CnnSpec,
    convs: Vec<Conv1d>,
    pool: GlobalAvgPool1d,
    head: Dense,
    #[serde(skip)]
    scratch: CnnScratch,
}

impl Cnn {
    /// Creates a CNN with He-initialised weights.
    pub fn new<R: Rng + ?Sized>(spec: &CnnSpec, rng: &mut R) -> Self {
        let mut convs = Vec::with_capacity(spec.channels.len());
        let mut in_ch = 1;
        for &out_ch in &spec.channels {
            convs.push(Conv1d::new(
                in_ch,
                out_ch,
                spec.kernel,
                spec.input_len,
                Activation::Relu,
                rng,
            ));
            in_ch = out_ch;
        }
        let pool = GlobalAvgPool1d::new(in_ch, spec.input_len);
        let head = Dense::new(in_ch, spec.num_classes, Activation::Identity, rng);
        Self { spec: spec.clone(), convs, pool, head, scratch: CnnScratch::default() }
    }

    /// The architecture.
    pub fn spec(&self) -> &CnnSpec {
        &self.spec
    }

    /// Routes every conv layer through the retained scalar loops
    /// (`true`) or the im2col GEMM path (`false`, the default); see
    /// [`Conv1d::force_naive`]. The paths are bit-identical — this
    /// exists so tests can train twin models on both and assert equal
    /// loss curves.
    pub fn force_naive_conv(&mut self, on: bool) {
        for conv in &mut self.convs {
            conv.force_naive(on);
        }
    }

    fn skip_at(&self, stage: usize) -> bool {
        self.spec.residual && self.convs[stage].in_dim() == self.convs[stage].out_dim()
    }

    /// Class logits for a batch of signals (`batch × input_len`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for (s, conv) in self.convs.iter().enumerate() {
            let mut out = conv.forward(&h);
            if self.skip_at(s) {
                out.add_assign(&h);
            }
            h = out;
        }
        self.head.forward(&self.pool.forward(&h))
    }

    /// One SGD step on a mini-batch; returns the batch loss.
    ///
    /// Every intermediate — stage activations (which double as the
    /// residual skip terms, replacing the reference path's per-stage
    /// input clones), pooled features, logits, loss gradient and the
    /// backward ping-pong pair — lives in a persistent buffer, so the
    /// steady-state step performs no allocation on the GEMM conv path.
    /// The arithmetic is bit-identical to [`Cnn::train_batch_ref`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn train_batch(&mut self, x: &Matrix, y: &[usize], opt: &mut Sgd) -> f32 {
        assert_eq!(x.rows(), y.len(), "Cnn::train_batch: rows vs labels");
        let ns = self.convs.len();
        self.scratch.acts.resize_with(ns, Matrix::default);
        // Forward with caches: stage s reads acts[s−1] (or x) and writes
        // acts[s]; the same previous activation serves as the skip term.
        for s in 0..ns {
            let skip = self.skip_at(s);
            let (prev, cur) = self.scratch.acts.split_at_mut(s);
            let input = if s == 0 { x } else { &prev[s - 1] };
            self.convs[s].forward_train_into(input, &mut cur[0]);
            if skip {
                cur[0].add_assign(input);
            }
        }
        self.pool.forward_into(
            self.scratch.acts.last().expect("Cnn has at least one conv stage"),
            &mut self.scratch.pooled,
        );
        self.head.forward_train_into(&self.scratch.pooled, &mut self.scratch.logits);
        let loss = softmax_cross_entropy_into(&self.scratch.logits, y, &mut self.scratch.loss_grad);

        // Backward: ping-pong the stage gradient between two persistent
        // buffers.
        self.head.backward_into(&self.scratch.loss_grad, &mut self.scratch.grad_pooled);
        let mut ga = std::mem::take(&mut self.scratch.grad_a);
        let mut gb = std::mem::take(&mut self.scratch.grad_b);
        self.pool.backward_into(&self.scratch.grad_pooled, &mut ga);
        for s in (0..ns).rev() {
            let skip = self.skip_at(s);
            self.convs[s].backward_into(&ga, &mut gb);
            if skip {
                // Residual: gradient flows through the skip unchanged.
                gb.add_assign(&ga);
            }
            std::mem::swap(&mut ga, &mut gb);
        }
        self.scratch.grad_a = ga;
        self.scratch.grad_b = gb;

        // Update.
        opt.begin_step(self.num_params());
        for conv in &mut self.convs {
            conv.apply_grads_chunked(opt);
        }
        self.head.apply_grads_chunked(opt);
        loss
    }

    /// The retained allocating implementation of [`Cnn::train_batch`] —
    /// fresh buffers (and per-stage skip clones) every call. Kept as the
    /// bit-identity reference for the workspace path.
    pub fn train_batch_ref(&mut self, x: &Matrix, y: &[usize], opt: &mut Sgd) -> f32 {
        assert_eq!(x.rows(), y.len(), "Cnn::train_batch: rows vs labels");
        // Forward with caches, remembering stage inputs for skips.
        let mut h = x.clone();
        let mut skips: Vec<Option<Matrix>> = Vec::with_capacity(self.convs.len());
        for s in 0..self.convs.len() {
            let skip = self.skip_at(s).then(|| h.clone());
            let mut out = self.convs[s].forward_train(&h);
            if let Some(skip_in) = &skip {
                out.add_assign(skip_in);
            }
            skips.push(skip);
            h = out;
        }
        let pooled = self.pool.forward(&h);
        let logits = self.head.forward_train(&pooled);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, y);

        // Backward.
        let grad_pooled = self.head.backward(&grad_logits);
        let mut grad = self.pool.backward(&grad_pooled);
        for s in (0..self.convs.len()).rev() {
            let mut gin = self.convs[s].backward(&grad);
            if skips[s].is_some() {
                // Residual: gradient flows through the skip unchanged.
                gin.add_assign(&grad);
            }
            grad = gin;
        }

        // Update.
        opt.begin_step(self.num_params());
        for conv in &mut self.convs {
            conv.apply_grads(|p, g| opt.update(p, g));
        }
        self.head.apply_grads(|p, g| opt.update(p, g));
        loss
    }

    /// One epoch of shuffled mini-batch SGD; returns the mean batch loss.
    ///
    /// The shuffled order and mini-batch staging buffers persist across
    /// epochs, so the steady-state epoch allocates nothing. RNG
    /// consumption and arithmetic are identical to
    /// [`Cnn::train_epoch_ref`].
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or shapes mismatch.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        y: &[usize],
        batch_size: usize,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> f32 {
        assert!(batch_size > 0, "Cnn::train_epoch: batch_size must be positive");
        if y.is_empty() {
            return 0.0;
        }
        let mut order = std::mem::take(&mut self.scratch.order);
        let mut xb = std::mem::take(&mut self.scratch.xb);
        let mut yb = std::mem::take(&mut self.scratch.yb);
        order.clear();
        order.extend(0..y.len());
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            x.select_rows_into(chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| y[i]));
            total += self.train_batch(&xb, &yb, opt);
            batches += 1;
        }
        self.scratch.order = order;
        self.scratch.xb = xb;
        self.scratch.yb = yb;
        total / batches as f32
    }

    /// The retained allocating implementation of [`Cnn::train_epoch`],
    /// driving [`Cnn::train_batch_ref`]. The bit-identity reference for
    /// the workspace path; consumes the RNG identically.
    pub fn train_epoch_ref<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        y: &[usize],
        batch_size: usize,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> f32 {
        assert!(batch_size > 0, "Cnn::train_epoch: batch_size must be positive");
        if y.is_empty() {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..y.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let xb = x.select_rows(chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
            total += self.train_batch_ref(&xb, &yb, opt);
            batches += 1;
        }
        total / batches as f32
    }

    /// Drops all cached activations/gradients and the training scratch
    /// buffers (e.g. before serialising).
    pub fn clear_cache(&mut self) {
        for conv in &mut self.convs {
            conv.clear_cache();
        }
        self.head.clear_cache();
        self.scratch = CnnScratch::default();
    }

    /// Fraction of correctly classified rows.
    pub fn accuracy(&self, x: &Matrix, y: &[usize]) -> f32 {
        if y.is_empty() {
            return 0.0;
        }
        let preds = self.predict_batch(x);
        preds.iter().zip(y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32
    }
}

impl Model for Cnn {
    fn num_params(&self) -> usize {
        self.convs.iter().map(Conv1d::num_params).sum::<usize>() + self.head.num_params()
    }

    fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for conv in &self.convs {
            conv.write_params(&mut out);
        }
        self.head.write_params(&mut out);
        out
    }

    fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.num_params(), "Cnn::set_params: wrong parameter count");
        let mut rest = p;
        for conv in &mut self.convs {
            rest = conv.read_params(rest);
        }
        self.head.read_params(rest);
    }

    fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Fused multi-model prediction: the first conv stage packs the
    /// shared input rows once and stacks the weight matrices row-wise
    /// ([`Conv1d::forward_multi_shared`]), every later stage runs as one
    /// block-diagonal [`Conv1d::forward_multi`] call, and the dense
    /// heads as one [`Dense::forward_multi`]. Residual skips are added
    /// after each stage's activation, exactly as in [`Cnn::forward`].
    ///
    /// Every fused block runs the same-shape kernel the sequential path
    /// would, so predictions are bit-identical to per-model
    /// [`Model::predict_rows`] under *all* kernel tiers, including
    /// `BAFFLE_FAST_MATH`.
    ///
    /// # Panics
    ///
    /// Panics if the models do not all share one [`CnnSpec`].
    fn predict_multi(models: &[&Self], x: &Matrix, r0: usize, r1: usize) -> Vec<Vec<usize>> {
        if models.is_empty() {
            return Vec::new();
        }
        if models.len() == 1 {
            return vec![models[0].predict_rows(x, r0, r1)];
        }
        for m in models {
            assert_eq!(m.spec, models[0].spec, "Cnn::predict_multi: mismatched architectures");
        }
        // One copy of the shared rows for all models (the sequential
        // path copies them once per model).
        let xm = x.view_rows(r0, r1).to_matrix();
        let stage0: Vec<&Conv1d> = models.iter().map(|m| &m.convs[0]).collect();
        let mut hs = Conv1d::forward_multi_shared(&stage0, &xm);
        if models[0].skip_at(0) {
            for h in &mut hs {
                h.add_assign(&xm);
            }
        }
        for s in 1..models[0].convs.len() {
            let convs: Vec<&Conv1d> = models.iter().map(|m| &m.convs[s]).collect();
            let inputs: Vec<&Matrix> = hs.iter().collect();
            let mut outs = Conv1d::forward_multi(&convs, &inputs);
            if models[0].skip_at(s) {
                for (out, h) in outs.iter_mut().zip(&hs) {
                    out.add_assign(h);
                }
            }
            hs = outs;
        }
        let pooled: Vec<Matrix> = hs.iter().map(|h| models[0].pool.forward(h)).collect();
        let heads: Vec<&Dense> = models.iter().map(|m| &m.head).collect();
        let inputs: Vec<&Matrix> = pooled.iter().collect();
        Dense::forward_multi(&heads, &inputs).into_iter().map(|l| l.argmax_rows()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_signals(rng: &mut StdRng, n_per_class: usize, len: usize) -> (Matrix, Vec<usize>) {
        // Classes differ by bump *shape* at a random location: narrow
        // spike, wide plateau, or flat noise. Random placement makes the
        // task translation invariant — the regime convolutions excel in
        // (and pooled dense models cannot cheat on).
        use rand::Rng as _;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..n_per_class {
                let center = rng.gen_range(2..len - 2) as f32;
                let width = match c {
                    0 => 0.6, // narrow spike
                    1 => 6.0, // wide plateau
                    _ => 0.0, // flat
                };
                let mut v = vec![0.0_f32; len];
                for (p, vp) in v.iter_mut().enumerate() {
                    let bump = if width > 0.0 {
                        (-(p as f32 - center).powi(2) / width).exp()
                    } else {
                        0.0
                    };
                    *vp = bump + 0.1 * baffle_tensor::rng::standard_normal(rng);
                }
                rows.push(v);
                labels.push(c);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), labels)
    }

    #[test]
    fn spec_and_param_roundtrip() {
        let spec = CnnSpec::new(12, &[4, 4], 3, 5).with_residual();
        let mut rng = StdRng::seed_from_u64(1);
        let a = Cnn::new(&spec, &mut rng);
        let mut b = Cnn::new(&spec, &mut rng);
        b.set_params(&a.params());
        assert_eq!(a.params(), b.params());
        assert_eq!(a.params().len(), a.num_params());
        let x = Matrix::from_fn(3, 12, |r, j| (r + j) as f32 * 0.1);
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn learns_translation_structured_signals() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = toy_signals(&mut rng, 60, 16);
        let spec = CnnSpec::new(16, &[6, 6], 3, 3).with_residual();
        let mut model = Cnn::new(&spec, &mut rng);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..25 {
            model.train_epoch(&x, &y, 16, &mut opt, &mut rng);
        }
        let acc = model.accuracy(&x, &y);
        assert!(acc > 0.9, "CNN failed to learn: accuracy {acc}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = toy_signals(&mut rng, 30, 12);
        let spec = CnnSpec::new(12, &[4], 3, 3);
        let mut model = Cnn::new(&spec, &mut rng);
        let mut opt = Sgd::new(0.03);
        let logits = model.forward(&x);
        let before = softmax_cross_entropy(&logits, &y).0;
        for _ in 0..8 {
            model.train_epoch(&x, &y, 8, &mut opt, &mut rng);
        }
        let logits = model.forward(&x);
        let after = softmax_cross_entropy(&logits, &y).0;
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn residual_skips_only_matching_widths() {
        // First stage 1→4 (no skip possible), second 4→4 (skip active).
        let spec = CnnSpec::new(8, &[4, 4], 3, 2).with_residual();
        let mut rng = StdRng::seed_from_u64(4);
        let model = Cnn::new(&spec, &mut rng);
        assert!(!model.skip_at(0));
        assert!(model.skip_at(1));
    }

    #[test]
    fn residual_gradient_check_end_to_end() {
        // Numerical gradient of the total loss w.r.t. a few parameters,
        // through conv + skip + pool + head.
        let spec = CnnSpec::new(6, &[3, 3], 3, 2).with_residual();
        let mut rng = StdRng::seed_from_u64(5);
        let model = Cnn::new(&spec, &mut rng);
        let x = Matrix::from_fn(4, 6, |r, j| ((r * 6 + j) as f32 * 0.37).sin() * 0.5);
        let y = vec![0, 1, 0, 1];

        // Analytic gradient via a zero-lr "training" step is awkward;
        // instead compare two finite-difference estimates around a real
        // SGD step: the loss must decrease along the update direction.
        let loss_of = |m: &Cnn| softmax_cross_entropy(&m.forward(&x), &y).0;
        let before = loss_of(&model);
        let mut stepped = model.clone();
        let mut opt = Sgd::new(0.01);
        stepped.train_batch(&x, &y, &mut opt);
        let after = loss_of(&stepped);
        assert!(
            after < before + 1e-6,
            "SGD step along the gradient increased the loss: {before} -> {after}"
        );
    }

    #[test]
    fn empty_epoch_is_noop() {
        let spec = CnnSpec::new(6, &[2], 3, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = Cnn::new(&spec, &mut rng);
        let before = model.params();
        let loss = model.train_epoch(&Matrix::zeros(0, 6), &[], 4, &mut Sgd::new(0.1), &mut rng);
        assert_eq!(loss, 0.0);
        assert_eq!(model.params(), before);
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn even_kernel_spec_panics() {
        let _ = CnnSpec::new(8, &[4], 4, 2);
    }

    #[test]
    fn predict_multi_matches_sequential_exactly() {
        // Every fused block (row-stacked stage 0, block-diagonal later
        // stages and heads) runs the same-shape kernel the sequential
        // path would, so this holds bitwise on every tier, including
        // BAFFLE_FAST_MATH.
        let spec = CnnSpec::new(10, &[4, 4], 3, 3).with_residual();
        let mut rng = StdRng::seed_from_u64(7);
        let models: Vec<Cnn> = (0..4).map(|_| Cnn::new(&spec, &mut rng)).collect();
        let x = Matrix::from_fn(9, 10, |r, j| ((r * 10 + j) as f32 * 0.19).sin());
        let refs: Vec<&Cnn> = models.iter().collect();
        let multi = Cnn::predict_multi(&refs, &x, 1, 8);
        for (i, preds) in multi.iter().enumerate() {
            assert_eq!(preds, &models[i].predict_rows(&x, 1, 8), "model {i}");
        }
    }
}
