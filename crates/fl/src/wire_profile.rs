//! Per-link wire-encoding selection.
//!
//! The paper's "reduce communication by ×10" estimate (§VI-D) leans on
//! model compression for the validator-bound traffic — shipping the last
//! `ℓ+1` accepted global models dominates bytes on the wire. A
//! [`WireProfile`] names the codec for each hot payload so a deployment
//! can trade fidelity for bandwidth per link class: lossless for the
//! paper-faithful baseline, 8-bit quantisation for the compression
//! estimate, and chained sparse top-k deltas for the history window,
//! where consecutive accepted models differ in few coordinates.

use baffle_nn::wire::Codec;

/// How the accepted-model history window is shipped to validators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryCodec {
    /// Every entry self-contained, encoded with the given codec.
    Dense(Codec),
    /// The first entry of each shipment is dense (with `codec`); each
    /// subsequent entry is a sparse top-k delta against its predecessor,
    /// keeping `keep_per_mille`/1000 of the coordinates (at least one).
    /// Consecutive accepted models share most weights, so the chain is
    /// far smaller than dense shipping; a client that cannot apply a
    /// link of the chain discards its window and is re-shipped dense
    /// state via the history-sync reset path.
    TopKChain {
        /// Dense codec for chain heads (and for entries whose delta
        /// could not be built, e.g. non-finite predecessors).
        codec: Codec,
        /// Retained coordinates per delta, in tenths of a percent.
        keep_per_mille: u16,
    },
}

impl HistoryCodec {
    /// Short name for reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            HistoryCodec::Dense(Codec::F32) => "f32",
            HistoryCodec::Dense(Codec::Q8) => "q8",
            HistoryCodec::Dense(Codec::Q4) => "q4",
            HistoryCodec::TopKChain { .. } => "topk",
        }
    }
}

/// Which codec each payload class uses on the wire.
///
/// The three hot payloads are configured independently: `model` covers
/// the global model and the candidate (server → client), `update` covers
/// local updates (client → server), and `history` covers the accepted
/// history window shipped to validators (server → client, the dominant
/// cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireProfile {
    /// Global model and candidate payloads.
    pub model: Codec,
    /// Client update payloads.
    pub update: Codec,
    /// Accepted-history window payloads.
    pub history: HistoryCodec,
}

impl WireProfile {
    /// Paper-faithful baseline: lossless `f32` everywhere.
    pub fn lossless() -> Self {
        Self { model: Codec::F32, update: Codec::F32, history: HistoryCodec::Dense(Codec::F32) }
    }

    /// 8-bit quantisation on every payload (≈4× fewer bytes).
    pub fn quantized() -> Self {
        Self { model: Codec::Q8, update: Codec::Q8, history: HistoryCodec::Dense(Codec::Q8) }
    }

    /// Aggressive: q8 models/updates plus a top-k delta chain for the
    /// history window (keeps 6.2 % of coordinates per delta).
    pub fn compact() -> Self {
        Self {
            model: Codec::Q8,
            update: Codec::Q8,
            history: HistoryCodec::TopKChain { codec: Codec::Q8, keep_per_mille: 62 },
        }
    }

    /// Short name for reports; presets get their names, anything else is
    /// `"custom"`.
    pub fn label(&self) -> &'static str {
        if *self == Self::lossless() {
            "f32"
        } else if *self == Self::quantized() {
            "q8"
        } else if *self == Self::compact() {
            "topk"
        } else {
            "custom"
        }
    }

    /// Reads `BAFFLE_WIRE_PROFILE` (`f32`, `q8`, or `topk`): unset or
    /// empty means [`WireProfile::lossless`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a misspelt profile silently
    /// falling back to lossless would invalidate a bandwidth experiment.
    pub fn from_env() -> Self {
        match std::env::var("BAFFLE_WIRE_PROFILE").as_deref() {
            Err(_) | Ok("") | Ok("f32") => Self::lossless(),
            Ok("q8") => Self::quantized(),
            Ok("topk") => Self::compact(),
            Ok(other) => {
                panic!("BAFFLE_WIRE_PROFILE: unknown profile {other:?} (want f32|q8|topk)")
            }
        }
    }

    /// How many coordinates a top-k history delta keeps for an
    /// `n`-parameter model under this profile (`None` for dense
    /// history shipping).
    pub fn history_keep(&self, n: usize) -> Option<usize> {
        match self.history {
            HistoryCodec::Dense(_) => None,
            HistoryCodec::TopKChain { keep_per_mille, .. } => {
                Some(((n * keep_per_mille as usize) / 1000).max(1))
            }
        }
    }
}

impl Default for WireProfile {
    fn default() -> Self {
        Self::lossless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_labels_roundtrip() {
        assert_eq!(WireProfile::lossless().label(), "f32");
        assert_eq!(WireProfile::quantized().label(), "q8");
        assert_eq!(WireProfile::compact().label(), "topk");
        let custom = WireProfile { model: Codec::F32, ..WireProfile::compact() };
        assert_eq!(custom.label(), "custom");
        assert_eq!(WireProfile::default(), WireProfile::lossless());
    }

    #[test]
    fn history_keep_scales_with_model_size() {
        let p = WireProfile::compact();
        assert_eq!(p.history_keep(1000), Some(62));
        assert_eq!(p.history_keep(10), Some(1)); // floor of one coordinate
        assert_eq!(WireProfile::lossless().history_keep(1000), None);
    }

    #[test]
    fn history_codec_labels() {
        assert_eq!(HistoryCodec::Dense(Codec::Q4).label(), "q4");
        assert_eq!(
            HistoryCodec::TopKChain { codec: Codec::Q8, keep_per_mille: 10 }.label(),
            "topk"
        );
    }
}
