//! Dense matrix and flat-vector math kernels for the BaFFLe reproduction.
//!
//! This crate provides the minimal linear-algebra substrate needed to train
//! small neural networks entirely in Rust: a row-major [`Matrix`] of `f32`
//! with the multiply/transpose/broadcast kernels used by backpropagation,
//! plus flat `[f32]` vector helpers ([`ops`]) used by the federated-learning
//! layer to average, scale and mask model parameters.
//!
//! No external BLAS is used; the kernels are simple cache-friendly loops
//! that are plenty fast for the model sizes exercised by the BaFFLe
//! experiments (10²–10⁵ parameters).
//!
//! # Example
//!
//! ```
//! use baffle_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod matrix;
pub mod ops;
pub mod rng;

pub use matrix::Matrix;
