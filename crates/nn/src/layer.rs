//! Fully-connected (dense) layer with manual backpropagation.

use crate::{Activation, Sgd};
use baffle_tensor::{gemm, rng, Matrix, MatrixView, Workspace};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// A dense layer `y = act(x · W + b)` with cached forward state for
/// backpropagation.
///
/// Weights are stored as an `in_dim × out_dim` matrix so a batch
/// (`batch × in_dim`) multiplies on the left.
///
/// The training caches (`cached_input`, `cached_pre`, the gradients and
/// the δ scratch) are **persistent buffers**, not per-call allocations:
/// once the layer has seen a batch shape, every further
/// [`Dense::forward_train`] / [`Dense::backward`] cycle at that shape is
/// allocation-free. Validity is tracked by flags, so the panic behaviour
/// of calling `backward` before `forward_train` is unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    activation: Activation,
    /// Input of the latest `forward_train` call (needed for dW).
    #[serde(skip)]
    cached_input: Matrix,
    /// Pre-activation of the latest `forward_train` call (needed for dact).
    #[serde(skip)]
    cached_pre: Matrix,
    /// Whether the forward caches hold the latest batch.
    #[serde(skip)]
    has_cache: bool,
    /// Weight gradient from the latest `backward` call.
    #[serde(skip)]
    grad_w: Matrix,
    /// Bias gradient from the latest `backward` call.
    #[serde(skip)]
    grad_b: Vec<f32>,
    /// Whether the gradients are fresh (consumed by `apply_grads*`).
    #[serde(skip)]
    has_grads: bool,
    /// δ = grad_out ⊙ act′(pre) scratch for `backward`.
    #[serde(skip)]
    delta: Matrix,
}

thread_local! {
    /// Per-thread buffer pool for [`Dense::forward_multi_shared`]'s
    /// stacked `wide_w` block and wide product. Per-thread so validation
    /// chunks fanned out on the worker pool never contend, and so the
    /// borrow is local to a single call (the `RefCell` is released before
    /// the GEMM runs — nothing inside the kernels re-enters this cache).
    static MULTI_SHARED_SCRATCH: RefCell<Workspace> = RefCell::new(Workspace::new());
}

impl Dense {
    /// Creates a dense layer with He-initialised weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            w: rng::he_init(rng, in_dim, out_dim),
            b: vec![0.0; out_dim],
            activation,
            cached_input: Matrix::default(),
            cached_pre: Matrix::default(),
            has_cache: false,
            grad_w: Matrix::default(),
            grad_b: Vec::new(),
            has_grads: false,
            delta: Matrix::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of scalar parameters (`in_dim * out_dim + out_dim`).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Inference-only forward pass (no state is cached).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let act = self.activation;
        pre.map_assign(|v| act.apply(v));
        pre
    }

    /// Inference forward pass over a borrowed row view of the input (no
    /// copy of the rows is made).
    ///
    /// Bit-identical to [`Dense::forward`] on a matrix holding the same
    /// rows: the view dispatches into the same GEMM kernels.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_view(&self, x: MatrixView<'_>) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let act = self.activation;
        pre.map_assign(|v| act.apply(v));
        pre
    }

    /// Forward pass of several identically-shaped layers over one *shared*
    /// input, fused into a single wide GEMM.
    ///
    /// The weight matrices are horizontally concatenated into an
    /// `in_dim × (nb·out_dim)` block and multiplied once via
    /// [`gemm::concat_nn`]; the wide product is then split back into
    /// per-layer outputs with each layer's own bias and activation
    /// applied. On the default bit-exact kernels every per-layer output
    /// is bit-identical to [`Dense::forward`] on the same input; under
    /// `BAFFLE_FAST_MATH` outputs depend on the concatenated column
    /// position and are only bound-comparable to the standalone pass.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, the layers do not all share one
    /// `(in_dim, out_dim)` shape, or `x.cols() != in_dim`.
    pub fn forward_multi_shared(layers: &[&Dense], x: MatrixView<'_>) -> Vec<Matrix> {
        assert!(!layers.is_empty(), "Dense::forward_multi_shared: no layers");
        let (in_dim, out_dim) = (layers[0].in_dim(), layers[0].out_dim());
        for l in layers {
            assert_eq!(
                (l.in_dim(), l.out_dim()),
                (in_dim, out_dim),
                "Dense::forward_multi_shared: mismatched layer shapes"
            );
        }
        assert_eq!(x.cols(), in_dim, "Dense::forward_multi_shared: input width");
        let nb = layers.len();
        let (m, wide) = (x.rows(), nb * out_dim);
        // The stacked weight block and the wide product are the two big
        // scratch buffers of the fused pass; validation calls this once
        // per chunk, so their allocations are cached per thread (contents
        // are rewritten every call — the weights may have changed — only
        // the backing storage is reused, mirroring the conv im2col cache).
        let (mut wide_w, mut wide_out) = MULTI_SHARED_SCRATCH.with(|ws| {
            let mut ws = ws.borrow_mut();
            (ws.take(in_dim, wide), ws.take_zeroed(m, wide))
        });
        // Row r of the wide weight block is W_0[r] ++ W_1[r] ++ … so each
        // layer owns a contiguous column stripe of the product. Every
        // stripe of every row is overwritten, so `take`'s unspecified
        // contents never leak into the product.
        for (li, l) in layers.iter().enumerate() {
            for r in 0..in_dim {
                wide_w.row_mut(r)[li * out_dim..(li + 1) * out_dim].copy_from_slice(l.w.row(r));
            }
        }
        gemm::concat_nn(m, in_dim, wide, x.as_slice(), wide_w.as_slice(), wide_out.as_mut_slice());
        let outs = (0..nb)
            .map(|li| {
                let l = layers[li];
                let mut data = Vec::with_capacity(m * out_dim);
                for r in 0..m {
                    data.extend_from_slice(&wide_out.row(r)[li * out_dim..(li + 1) * out_dim]);
                }
                let mut out = Matrix::from_vec(m, out_dim, data);
                out.add_row_broadcast(&l.b);
                let act = l.activation;
                out.map_assign(|v| act.apply(v));
                out
            })
            .collect();
        MULTI_SHARED_SCRATCH.with(|ws| {
            let mut ws = ws.borrow_mut();
            ws.recycle(wide_w);
            ws.recycle(wide_out);
        });
        outs
    }

    /// Forward pass of several identically-shaped layers over *per-layer*
    /// inputs, fused into one block-diagonal GEMM.
    ///
    /// Inputs and weights are stacked contiguously and multiplied with
    /// [`gemm::batched_nn`]; block `i` of the product is `xs[i] · W_i`.
    /// Every per-layer output is bit-identical to [`Dense::forward`] on
    /// the same input under *all* kernel tiers, including
    /// `BAFFLE_FAST_MATH`, because each block runs the same-shape kernel
    /// a standalone call would.
    ///
    /// # Panics
    ///
    /// Panics if `layers` and `xs` differ in length or any shape
    /// disagrees with the first layer/input.
    pub fn forward_multi(layers: &[&Dense], xs: &[&Matrix]) -> Vec<Matrix> {
        assert!(!layers.is_empty(), "Dense::forward_multi: no layers");
        assert_eq!(layers.len(), xs.len(), "Dense::forward_multi: layers vs inputs");
        let (in_dim, out_dim) = (layers[0].in_dim(), layers[0].out_dim());
        let m = xs[0].rows();
        let nb = layers.len();
        let mut a = Vec::with_capacity(nb * m * in_dim);
        let mut b = Vec::with_capacity(nb * in_dim * out_dim);
        for (l, x) in layers.iter().zip(xs) {
            assert_eq!(
                (l.in_dim(), l.out_dim()),
                (in_dim, out_dim),
                "Dense::forward_multi: mismatched layer shapes"
            );
            assert_eq!(x.shape(), (m, in_dim), "Dense::forward_multi: mismatched input shapes");
            a.extend_from_slice(x.as_slice());
            b.extend_from_slice(l.w.as_slice());
        }
        if m * out_dim == 0 {
            return layers.iter().map(|_| Matrix::zeros(m, out_dim)).collect();
        }
        let mut out = vec![0.0f32; nb * m * out_dim];
        gemm::batched_nn(nb, m, in_dim, out_dim, &a, &b, &mut out);
        out.chunks(m * out_dim)
            .zip(layers)
            .map(|(blk, l)| {
                let mut o = Matrix::from_vec(m, out_dim, blk.to_vec());
                o.add_row_broadcast(&l.b);
                let act = l.activation;
                o.map_assign(|v| act.apply(v));
                o
            })
            .collect()
    }

    /// Training forward pass; caches the input and pre-activation for a
    /// subsequent [`Dense::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_train_into(x, &mut out);
        out
    }

    /// [`Dense::forward_train`] writing the activation into a caller-owned
    /// buffer. The input and pre-activation are copied into the layer's
    /// persistent caches, so at steady state (shapes unchanged since the
    /// previous batch) the call performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_train_into(&mut self, x: &Matrix, out: &mut Matrix) {
        self.cached_input.copy_from(x);
        x.matmul_into(&self.w, &mut self.cached_pre);
        self.cached_pre.add_row_broadcast(&self.b);
        let act = self.activation;
        self.cached_pre.map_into(|v| act.apply(v), out);
        self.has_cache = true;
    }

    /// Backward pass. `grad_out` is ∂L/∂y for the latest
    /// [`Dense::forward_train`] batch; returns ∂L/∂x and stores the weight
    /// and bias gradients for [`Dense::apply_grads`].
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_train`, or if `grad_out` has the
    /// wrong shape.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(grad_out, &mut dx);
        dx
    }

    /// [`Dense::backward`] writing ∂L/∂x into a caller-owned buffer. The
    /// δ scratch and the weight/bias gradients live in persistent layer
    /// buffers, so at steady state the call performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_train`, or if `grad_out` has the
    /// wrong shape.
    pub fn backward_into(&mut self, grad_out: &Matrix, dx: &mut Matrix) {
        assert!(self.has_cache, "Dense::backward called before forward_train");
        assert_eq!(
            grad_out.shape(),
            self.cached_pre.shape(),
            "Dense::backward: grad shape {:?} != output shape {:?}",
            grad_out.shape(),
            self.cached_pre.shape()
        );
        let act = self.activation;
        let Self { w, cached_input, cached_pre, delta, grad_w, grad_b, .. } = self;

        // δ = grad_out ⊙ act'(pre)
        cached_pre.map_into(|v| act.derivative(v), delta);
        delta.hadamard_assign(grad_out);

        // dW = xᵀ δ, db = column sums of δ, dx = δ Wᵀ.
        cached_input.matmul_tn_into(delta, grad_w);
        delta.sum_rows_into(grad_b);
        delta.matmul_nt_into(w, dx);
        self.has_grads = true;
    }

    /// Applies the stored gradients with the given update rule
    /// (`param -= step(param, grad)` is handled by the caller through the
    /// closure; this method only exposes parameter/gradient pairs).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::backward`].
    pub fn apply_grads(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        assert!(self.has_grads, "Dense::apply_grads called before backward");
        self.has_grads = false;
        let Self { w, b, grad_w, grad_b, .. } = self;
        for (p, &g) in w.as_mut_slice().iter_mut().zip(grad_w.as_slice()) {
            f(p, g);
        }
        for (p, &g) in b.iter_mut().zip(grad_b.iter()) {
            f(p, g);
        }
    }

    /// Applies the stored gradients through [`Sgd::update_chunk`] — the
    /// slice-wise (and allocation-free) form of
    /// `apply_grads(|p, g| opt.update(p, g))`, bit-identical to it because
    /// `update_chunk` is elementwise and walks the same weights-then-bias
    /// order against the same velocity slots.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::backward`].
    pub fn apply_grads_chunked(&mut self, opt: &mut Sgd) {
        assert!(self.has_grads, "Dense::apply_grads called before backward");
        self.has_grads = false;
        opt.update_chunk(self.w.as_mut_slice(), self.grad_w.as_slice());
        opt.update_chunk(&mut self.b, &self.grad_b);
    }

    /// Appends this layer's parameters to `out` (weights row-major, then
    /// bias).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Reads this layer's parameters from the front of `p`, returning the
    /// remainder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is shorter than [`Dense::num_params`].
    pub fn read_params<'a>(&mut self, p: &'a [f32]) -> &'a [f32] {
        let nw = self.w.len();
        let nb = self.b.len();
        assert!(p.len() >= nw + nb, "Dense::read_params: need {} values, got {}", nw + nb, p.len());
        self.w.as_mut_slice().copy_from_slice(&p[..nw]);
        self.b.copy_from_slice(&p[nw..nw + nb]);
        &p[nw + nb..]
    }

    /// Drops cached activations and gradients (e.g. before serialising).
    /// Frees the persistent training buffers, so a model kept only for
    /// inference carries no training footprint.
    pub fn clear_cache(&mut self) {
        self.cached_input = Matrix::default();
        self.cached_pre = Matrix::default();
        self.grad_w = Matrix::default();
        self.grad_b = Vec::new();
        self.delta = Matrix::default();
        self.has_cache = false;
        self.has_grads = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(in_dim: usize, out_dim: usize, act: Activation) -> Dense {
        let mut rng = StdRng::seed_from_u64(11);
        Dense::new(in_dim, out_dim, act, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let l = layer(4, 3, Activation::Relu);
        let x = Matrix::zeros(5, 4);
        assert_eq!(l.forward(&x).shape(), (5, 3));
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut l = layer(4, 3, Activation::Tanh);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
        let a = l.forward(&x);
        let b = l.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn param_roundtrip() {
        let l = layer(3, 2, Activation::Identity);
        let mut p = Vec::new();
        l.write_params(&mut p);
        assert_eq!(p.len(), l.num_params());
        let mut l2 = layer(3, 2, Activation::Identity);
        let rest = l2.read_params(&p);
        assert!(rest.is_empty());
        let mut p2 = Vec::new();
        l2.write_params(&mut p2);
        assert_eq!(p, p2);
    }

    /// Numerical gradient check: perturb each weight and compare the loss
    /// change against the analytic gradient.
    #[test]
    fn gradient_check_identity_activation() {
        gradient_check(Activation::Identity);
    }

    #[test]
    fn gradient_check_tanh_activation() {
        gradient_check(Activation::Tanh);
    }

    fn gradient_check(act: Activation) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Dense::new(3, 2, act, &mut rng);
        let x = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        // Loss = sum of outputs, so grad_out = ones.
        let loss = |l: &Dense| l.forward(&x).as_slice().iter().sum::<f32>();

        l.forward_train(&x);
        let ones = Matrix::filled(4, 2, 1.0);
        let dx = l.backward(&ones);

        // Check weight gradients against finite differences.
        let mut analytic = Vec::new();
        analytic.extend_from_slice(l.grad_w.as_slice());
        analytic.extend_from_slice(&l.grad_b);
        let mut p = Vec::new();
        l.write_params(&mut p);
        let eps = 1e-3;
        for i in 0..p.len() {
            let mut plus = p.clone();
            plus[i] += eps;
            let mut minus = p.clone();
            minus[i] -= eps;
            let mut lp = l.clone();
            lp.read_params(&plus);
            let mut lm = l.clone();
            lm.read_params(&minus);
            let fd = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2,
                "param {i}: finite diff {fd} vs analytic {}",
                analytic[i]
            );
        }

        // Check input gradient for one entry.
        let mut xp = x.clone();
        xp[(0, 0)] += eps;
        let mut xm = x.clone();
        xm[(0, 0)] -= eps;
        let fd = (l.forward(&xp).as_slice().iter().sum::<f32>()
            - l.forward(&xm).as_slice().iter().sum::<f32>())
            / (2.0 * eps);
        assert!((fd - dx[(0, 0)]).abs() < 2e-2, "dx finite diff {fd} vs {}", dx[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "before forward_train")]
    fn backward_without_forward_panics() {
        let mut l = layer(2, 2, Activation::Relu);
        let _ = l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    #[should_panic(expected = "before backward")]
    fn apply_grads_without_backward_panics() {
        let mut l = layer(2, 2, Activation::Relu);
        l.apply_grads(|_, _| {});
    }

    /// The persistent caches must make repeated same-shape train cycles
    /// allocation-free, without changing any numeric result.
    #[test]
    fn train_buffers_are_reused_across_batches() {
        let mut l = layer(4, 3, Activation::Tanh);
        let x = Matrix::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.23).sin());
        let g = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.11).cos());
        let (mut out, mut dx) = (Matrix::default(), Matrix::default());
        l.forward_train_into(&x, &mut out);
        l.backward_into(&g, &mut dx);
        let first = (out.clone(), dx.clone());
        let ptrs = [
            l.cached_input.as_slice().as_ptr(),
            l.cached_pre.as_slice().as_ptr(),
            l.grad_w.as_slice().as_ptr(),
            l.delta.as_slice().as_ptr(),
            out.as_slice().as_ptr(),
            dx.as_slice().as_ptr(),
        ];
        l.has_grads = false; // skip the update so weights stay put
        l.forward_train_into(&x, &mut out);
        l.backward_into(&g, &mut dx);
        assert_eq!((out.clone(), dx.clone()), first, "reuse changed the numbers");
        let again = [
            l.cached_input.as_slice().as_ptr(),
            l.cached_pre.as_slice().as_ptr(),
            l.grad_w.as_slice().as_ptr(),
            l.delta.as_slice().as_ptr(),
            out.as_slice().as_ptr(),
            dx.as_slice().as_ptr(),
        ];
        assert_eq!(ptrs, again, "steady-state train cycle must not reallocate");
    }

    /// `apply_grads_chunked` must walk the exact same (param, grad,
    /// velocity-slot) triplets as the per-scalar closure form.
    #[test]
    fn apply_grads_chunked_is_bit_identical_to_closure_form() {
        let mut a = layer(4, 3, Activation::Relu);
        let mut b = a.clone();
        let x = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f32 * 0.19).sin());
        let g = Matrix::filled(6, 3, 0.5);
        let mut opt_a = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(1e-3);
        let mut opt_b = opt_a.clone();
        for _ in 0..3 {
            a.forward_train(&x);
            a.backward(&g);
            opt_a.begin_step(a.num_params());
            a.apply_grads(|p, grad| opt_a.update(p, grad));

            b.forward_train(&x);
            b.backward(&g);
            opt_b.begin_step(b.num_params());
            b.apply_grads_chunked(&mut opt_b);
        }
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        a.write_params(&mut pa);
        b.write_params(&mut pb);
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn forward_view_matches_forward_rows() {
        let l = layer(4, 3, Activation::Relu);
        let x = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f32 * 0.31).sin());
        let full = l.forward(&x);
        let part = l.forward_view(x.view_rows(2, 5));
        for r in 0..3 {
            assert_eq!(part.row(r), full.row(r + 2));
        }
    }

    #[test]
    fn forward_multi_matches_standalone_forward_exactly() {
        // Block-diagonal products run the same-shape kernel a standalone
        // call would, so this holds bitwise on every tier, including
        // BAFFLE_FAST_MATH.
        let mut rng = StdRng::seed_from_u64(21);
        let layers: Vec<Dense> =
            (0..3).map(|_| Dense::new(5, 4, Activation::Tanh, &mut rng)).collect();
        let xs: Vec<Matrix> = (0..3)
            .map(|i| Matrix::from_fn(7, 5, |r, c| ((i * 35 + r * 5 + c) as f32 * 0.17).cos()))
            .collect();
        let lrefs: Vec<&Dense> = layers.iter().collect();
        let xrefs: Vec<&Matrix> = xs.iter().collect();
        let outs = Dense::forward_multi(&lrefs, &xrefs);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out, &layers[i].forward(&xs[i]), "layer {i}");
        }
    }

    #[test]
    fn forward_multi_shared_matches_standalone_forward() {
        let mut rng = StdRng::seed_from_u64(22);
        let layers: Vec<Dense> =
            (0..4).map(|_| Dense::new(6, 3, Activation::Relu, &mut rng)).collect();
        let x = Matrix::from_fn(9, 6, |r, c| ((r * 6 + c) as f32 * 0.13).sin());
        let lrefs: Vec<&Dense> = layers.iter().collect();
        let outs = Dense::forward_multi_shared(&lrefs, x.view());
        let fast = gemm::fast_math_enabled() && gemm::simd_enabled();
        for (i, out) in outs.iter().enumerate() {
            let seq = layers[i].forward(&x);
            if fast {
                // Wide and narrow fast products chain differently; both
                // sit within error_bound(k) of the exact result, so they
                // are within twice that of each other (ReLU is
                // 1-Lipschitz). Envelope per element: |b_j| + Σ|x||w|.
                let eb = 2.0 * gemm::error_bound(6);
                for r in 0..out.rows() {
                    for j in 0..out.cols() {
                        let env: f64 = (0..6)
                            .map(|k| (x[(r, k)] * layers[i].w[(k, j)]).abs() as f64)
                            .sum::<f64>()
                            + layers[i].b[j].abs() as f64;
                        let d = (out[(r, j)] - seq[(r, j)]).abs() as f64;
                        assert!(d <= eb * env + f32::EPSILON as f64, "layer {i} ({r},{j}): {d}");
                    }
                }
            } else {
                assert_eq!(out, &seq, "layer {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatched layer shapes")]
    fn forward_multi_rejects_mismatched_shapes() {
        let a = layer(3, 2, Activation::Identity);
        let b = layer(2, 2, Activation::Identity);
        let x = Matrix::zeros(1, 3);
        let x2 = Matrix::zeros(1, 2);
        let _ = Dense::forward_multi(&[&a, &b], &[&x, &x2]);
    }
}
