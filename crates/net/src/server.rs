//! The coordinating server actor (Algorithm 1, server side).

use crate::message::{AbstainReason, HistoryEntry, Message, NodeId};
use crate::phase::PhaseLedger;
use crate::transport::Endpoint;
use baffle_attack::voting::Vote;
use baffle_core::{Decision, ModelHistory, QuorumRule, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::{HistorySync, ModelId};
use baffle_fl::{fedavg, sampling, FlConfig, HistoryCodec, WireProfile};
use baffle_nn::{wire, Mlp, Model};
use baffle_tensor::{pool, rng::derive_stream};
use bytes::Bytes;
use crossbeam::channel::RecvTimeoutError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Server-side protocol parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// FL hyperparameters (N, n, λ).
    pub fl: FlConfig,
    /// Validating clients per round.
    pub validators_per_round: usize,
    /// Quorum threshold `q`.
    pub quorum: usize,
    /// How long to wait for updates/votes before proceeding without the
    /// stragglers.
    pub phase_timeout: Duration,
    /// Whether the server casts its own vote (BAFFLE vs BAFFLE-C).
    pub server_votes: bool,
    /// Master seed for client selection. Each round's selection RNG is
    /// derived via [`baffle_tensor::rng::derive_stream`] over
    /// `(seed, round, server-id)` — a pure function, so a server
    /// restored from a checkpoint samples exactly the sets an
    /// uninterrupted run would have.
    pub seed: u64,
    /// Trust-bootstrapping phase (paper §IV-B, "bootstrapping trust
    /// across rounds"): for the first `bootstrap_rounds` rounds,
    /// contributors are sampled only from `bootstrap_trusted` (an
    /// operator-vetted set), so the initial model history is known
    /// clean. Empty = no restriction.
    pub bootstrap_rounds: u64,
    /// The vetted participant set used during bootstrapping.
    pub bootstrap_trusted: Vec<usize>,
    /// Which codec each payload class uses on the wire (models, updates,
    /// history shipping). The trusted state — checkpoints, the in-memory
    /// history — always stays lossless `f32`; the profile only shapes
    /// what crosses the network.
    pub wire: WireProfile,
}

/// What happened in one protocol round, as observed by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerRound {
    /// Round number (1-based).
    pub round: u64,
    /// Whether the aggregated update was integrated.
    pub accepted: bool,
    /// Updates received before the timeout.
    pub updates_received: usize,
    /// Votes received before the timeout (missing votes are implicit
    /// accepts per footnote 1).
    pub votes_received: usize,
    /// Reject votes among them.
    pub reject_votes: usize,
    /// Update submissions discarded at intake because the **sender
    /// misbehaved**: not in this round's sampled contributor set, claimed
    /// id not matching the transport envelope, undecodable-but-intact
    /// payload, or wrong parameter count. (Stale-round stragglers are
    /// silently dropped, not counted — losing a race is not an intake
    /// violation; link-corrupted payloads and repeat deliveries have
    /// their own counters below.)
    pub rejected_submissions: usize,
    /// Vote submissions discarded at intake: sender not in this round's
    /// sampled validator set, or claimed id not matching the envelope.
    pub rejected_votes: usize,
    /// Explicit [`Message::Abstain`] declarations counted this round
    /// (both phases). An abstaining validator is the paper's footnote-1
    /// implicit accept made explicit: it casts no vote, but the phase
    /// ledger stops waiting for it.
    pub abstentions: usize,
    /// Payloads that arrived damaged by the link (wire checksum
    /// mismatch). The *sender* did nothing wrong, so these are counted
    /// apart from `rejected_submissions` — an honest node must never be
    /// booked as misbehaving because the network chewed its message.
    pub corrupted_payloads: usize,
    /// Deliveries that repeated an already-settled ledger slot: a
    /// duplicated message (link-level duplication, or a client sending
    /// twice). First delivery wins; repeats are counted here, not as
    /// rejections, because the server cannot distinguish a duplicating
    /// link from a duplicating sender.
    pub duplicate_deliveries: usize,
    /// Validators whose committed sync point predated the retained
    /// history window this round (unsampled for more than a full window
    /// of accepted models). Each such validator is shipped the full
    /// contiguous window in one go — the sync bookkeeping clamps deltas
    /// to the window, so the absence costs bandwidth, never a
    /// `HistoryTooShort` round-trip. This counter makes those
    /// full-window re-ships observable in chaos runs.
    pub evicted_resyncs: usize,
    /// Whether a collection phase ended because the transport itself went
    /// away (the server's receive channel disconnected) rather than by
    /// timeout or full accounting.
    pub transport_lost: bool,
    /// Whether the effective quorum was silently lowered because fewer
    /// voters exist than the configured `q` — a misconfigured deployment
    /// that experiments should be able to detect.
    pub quorum_clamped: bool,
    /// Wall-clock spent collecting updates. With the phase ledger this
    /// approaches `phase_timeout` only when a sampled contributor is
    /// genuinely silent.
    pub update_phase: Duration,
    /// Wall-clock spent collecting votes (zero for skipped rounds).
    pub vote_phase: Duration,
    /// Bytes of history shipped to validators this round (the §VI-D
    /// overhead, measured).
    pub history_bytes_shipped: usize,
}

/// A malformed or truncated checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    message: String,
}

impl CheckpointError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid checkpoint: {}", self.message)
    }
}

impl std::error::Error for CheckpointError {}

const CHECKPOINT_MAGIC: u32 = 0xBAFF_C4C4;
/// v1 was versioned but unchecksummed: a bit-flipped blob could decode
/// into a plausible-but-wrong state (a damaged float still parses). v2
/// inserts a whole-body FNV-1a checksum after the version word, so any
/// single-bit damage is rejected before structural parsing begins. v1
/// blobs are refused with an error naming the version.
const CHECKPOINT_VERSION: u32 = 2;
/// Bytes before the checksummed body: magic, version, checksum.
const CHECKPOINT_HEADER: usize = 12;

/// One accepted model as it goes out to validators: its dense encoding
/// under the profile's history codec, plus — under a top-k profile — the
/// sparse delta against its predecessor. Cached per accepted model so
/// shipping the same entry to many validators encodes it once.
#[derive(Debug, Clone)]
struct ShipEntry {
    id: ModelId,
    /// Self-contained encoding (chain heads, full re-ships).
    full: Bytes,
    /// Sparse delta against model `id - 1`, when the profile chains and
    /// the delta was encodable.
    delta: Option<Bytes>,
}

/// Builds the wire cache entry for an accepted model. `prev` is the
/// previous global model's parameters (`None` for the very first entry).
fn build_ship_entry(
    wire_profile: &WireProfile,
    id: ModelId,
    prev: Option<&[f32]>,
    params: &[f32],
) -> ShipEntry {
    let codec = match wire_profile.history {
        HistoryCodec::Dense(codec) => codec,
        HistoryCodec::TopKChain { codec, .. } => codec,
    };
    let delta = match (wire_profile.history, prev) {
        (HistoryCodec::TopKChain { .. }, Some(prev)) => {
            let k = wire_profile.history_keep(params.len()).expect("top-k profile keeps some");
            // A non-finite model (a poisoned candidate that slipped
            // through) cannot ride the chain; it ships dense instead.
            wire::encode_topk(prev, params, k).ok()
        }
        _ => None,
    };
    ShipEntry { id, full: codec.encode(params), delta }
}

/// Little-endian cursor over a checkpoint buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CheckpointError::new(format!("truncated reading {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
}

/// The server actor: owns the global model, the trusted history and the
/// per-client history-sync bookkeeping.
#[derive(Debug)]
pub struct Server {
    endpoint: Endpoint,
    config: ServerConfig,
    global: Mlp,
    /// Number of parameters of the global model — the only update length
    /// accepted at intake (anything else would panic `fedavg`).
    param_len: usize,
    history: ModelHistory,
    /// Trusted lossless (`f32`) window — the checkpoint format.
    history_entries: VecDeque<HistoryEntry>,
    /// Wire encodings of the same window under the configured profile,
    /// kept in lockstep with `history_entries`.
    ship_cache: VecDeque<ShipEntry>,
    sync: HistorySync,
    engine: ValidationEngine,
    server_data: Dataset,
    round: u64,
}

impl Server {
    /// Creates the server actor with an initial (warm-started) global
    /// model. `history_window` is `ℓ + 1`.
    pub fn new(
        endpoint: Endpoint,
        config: ServerConfig,
        initial_model: Mlp,
        history_window: usize,
        validator: Validator,
        server_data: Dataset,
    ) -> Self {
        let mut history = ModelHistory::new(history_window);
        let hist_id = history.push(initial_model.clone());
        let mut sync = HistorySync::new(history_window);
        let first_id = sync.push_accepted();
        // The history's cache ids and the sync protocol's wire ids are
        // assigned in lockstep: both count acceptances from zero.
        debug_assert_eq!(hist_id, first_id);
        let initial_params = initial_model.params();
        let history_entries = VecDeque::from(vec![HistoryEntry {
            id: first_id,
            params: wire::encode_f32(&initial_params),
        }]);
        let ship_cache =
            VecDeque::from(vec![build_ship_entry(&config.wire, first_id, None, &initial_params)]);
        Self {
            endpoint,
            config,
            param_len: initial_model.num_params(),
            global: initial_model,
            history,
            history_entries,
            ship_cache,
            sync,
            engine: ValidationEngine::new(validator),
            server_data,
            round: 0,
        }
    }

    /// The current global model.
    pub fn global_model(&self) -> &Mlp {
        &self.global
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Consumes the server and returns its endpoint — the handle a
    /// restored replacement server reuses after a crash.
    pub fn into_endpoint(self) -> Endpoint {
        self.endpoint
    }

    /// The protocol configuration this server runs under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The committed history-sync points, sorted by client — the same
    /// view [`Server::checkpoint`] serializes. The WAL journals each
    /// round's *change* to this map, so the durability layer snapshots
    /// it before and after every round.
    pub fn sync_committed(&self) -> Vec<(usize, ModelId)> {
        self.sync.committed()
    }

    /// Replaces the server's transport endpoint — the standby-promotion
    /// primitive: a warm replica built on a private network takes over
    /// the real `SERVER` route the moment the primary's registration is
    /// gone. The replica's private endpoint is dropped here; nothing was
    /// ever routed to it.
    pub(crate) fn set_endpoint(&mut self, endpoint: Endpoint) {
        self.endpoint = endpoint;
    }

    /// Integrates one journaled round outcome during WAL replay, without
    /// running the protocol: advances the round counter and, for an
    /// accepted round, installs the journaled global model into the
    /// history/ship-cache/sync state exactly as the live integration
    /// step would have; then re-applies the round's sync-map commits and
    /// resets. The replay layer (`net::wal`) validates records before
    /// calling — this method only integrates.
    ///
    /// # Panics
    ///
    /// Panics if `round` is not the next round or if an accepted model's
    /// parameter count mismatches the architecture; both are validated
    /// by the caller, so a violation here is a replay-layer bug.
    pub fn apply_replayed_outcome(
        &mut self,
        round: u64,
        accepted_params: Option<&[f32]>,
        commits: &[(usize, ModelId)],
        resets: &[usize],
    ) {
        assert_eq!(round, self.round + 1, "replayed outcomes must arrive in round order");
        self.round = round;
        if let Some(params) = accepted_params {
            assert_eq!(params.len(), self.param_len, "replayed model must match architecture");
            let prev_params = self.global.params();
            self.global.set_params(params);
            let hist_id = self.history.push(self.global.clone());
            let id = self.sync.push_accepted();
            debug_assert_eq!(hist_id, id, "history and sync ids must stay in lockstep");
            self.history_entries.push_back(HistoryEntry { id, params: wire::encode_f32(params) });
            self.ship_cache.push_back(build_ship_entry(
                &self.config.wire,
                id,
                Some(&prev_params),
                params,
            ));
            if self.history_entries.len() > self.history.capacity() {
                self.history_entries.pop_front();
                self.ship_cache.pop_front();
            }
        }
        // Resets before commits: a round can reset a gapped validator it
        // never re-shipped, but it cannot commit and then reset the same
        // client, so the order only matters for distinct clients anyway.
        for &client in resets {
            self.sync.reset(client);
        }
        for &(client, id) in commits {
            self.sync.commit(client, id);
        }
    }

    /// Serializes everything a replacement server needs to continue the
    /// protocol bit-for-bit: the round counter, the trusted history
    /// window (wire-encoded, newest entry = current global model), and
    /// the **committed** history-sync points. Unacknowledged shipments
    /// are deliberately absent — across a restore they must be treated as
    /// lost, and the acknowledged-sync protocol then re-ships them.
    ///
    /// Selection randomness needs no state: each round's RNG is
    /// re-derived as a pure function of `(seed, round, server-id)`.
    pub fn checkpoint(&self) -> Bytes {
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        // Checksum placeholder — filled in over the body once it exists.
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&self.sync.accepted().to_le_bytes());
        buf.extend_from_slice(&(self.history_entries.len() as u32).to_le_bytes());
        for entry in &self.history_entries {
            buf.extend_from_slice(&entry.id.to_le_bytes());
            buf.extend_from_slice(&(entry.params.len() as u64).to_le_bytes());
            buf.extend_from_slice(&entry.params);
        }
        let committed = self.sync.committed();
        buf.extend_from_slice(&(committed.len() as u32).to_le_bytes());
        for (client, id) in committed {
            buf.extend_from_slice(&(client as u64).to_le_bytes());
            buf.extend_from_slice(&id.to_le_bytes());
        }
        let checksum = wire::fnv1a(&buf[CHECKPOINT_HEADER..]);
        buf[8..CHECKPOINT_HEADER].copy_from_slice(&checksum.to_le_bytes());
        Bytes::from(buf)
    }

    /// Rebuilds a server from a [`Server::checkpoint`] blob. `template`
    /// is any model with the right architecture; the global model is
    /// recovered from the newest checkpointed history entry.
    ///
    /// # Errors
    ///
    /// Returns an error for a truncated or corrupted blob, a version or
    /// architecture mismatch, an empty or gapped history window, or
    /// entries exceeding `history_window`.
    pub fn restore(
        endpoint: Endpoint,
        config: ServerConfig,
        template: Mlp,
        history_window: usize,
        validator: Validator,
        server_data: Dataset,
        checkpoint: &[u8],
    ) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: checkpoint, pos: 0 };
        if r.u32("magic")? != CHECKPOINT_MAGIC {
            return Err(CheckpointError::new("bad magic"));
        }
        let version = r.u32("version")?;
        if version == 1 {
            return Err(CheckpointError::new(
                "unsupported version 1: pre-checksum blobs cannot be integrity-verified, \
                 re-create the checkpoint with the current server",
            ));
        }
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::new(format!("unsupported version {version}")));
        }
        let checksum = r.u32("checksum")?;
        if wire::fnv1a(&checkpoint[CHECKPOINT_HEADER..]) != checksum {
            return Err(CheckpointError::new("body checksum mismatch"));
        }
        let round = r.u64("round")?;
        let accepted = r.u64("accepted count")?;
        let n_entries = r.u32("history length")? as usize;
        if n_entries == 0 || n_entries > history_window {
            return Err(CheckpointError::new(format!(
                "history length {n_entries} outside 1..={history_window}"
            )));
        }
        let param_len = template.num_params();
        // The wire-format walk is inherently serial (each entry's length
        // prefix locates the next), but everything per-entry after it —
        // float decode, `set_params`, ship-entry encode — is independent
        // and fans out across the worker pool. A parse error at entry k
        // is held back until entries `0..k` pass their own checks, so the
        // surfaced error matches the old interleaved loop exactly.
        let mut raw: Vec<(u64, &[u8])> = Vec::with_capacity(n_entries);
        let mut parse_err = None;
        for _ in 0..n_entries {
            let entry = r.u64("entry id").and_then(|id| {
                let len = r.u64("entry length")? as usize;
                Ok((id, r.take(len, "entry params")?))
            });
            match entry {
                Ok(e) => raw.push(e),
                Err(e) => {
                    parse_err = Some(e);
                    break;
                }
            }
        }
        let decoded_results =
            pool::parallel_map(raw.clone(), |_, (_, params)| wire::decode_f32(params));
        let mut decoded = Vec::with_capacity(raw.len());
        for (i, result) in decoded_results.into_iter().enumerate() {
            let d = result.map_err(|e| CheckpointError::new(format!("entry {i}: {e}")))?;
            if d.len() != param_len {
                return Err(CheckpointError::new(format!(
                    "entry {i} has {} params, template has {param_len}",
                    d.len()
                )));
            }
            if i > 0 && raw[i - 1].0 + 1 != raw[i].0 {
                return Err(CheckpointError::new("gapped history ids"));
            }
            decoded.push(d);
        }
        if let Some(e) = parse_err {
            return Err(e);
        }
        // Every entry is now validated: rebuild the per-entry state in
        // one parallel sweep (ship entry i only needs entry i−1's
        // decoded params, which are all in hand).
        let rebuilt = pool::parallel_map((0..raw.len()).collect(), |_, i| {
            let id = raw[i].0;
            let mut model = template.clone();
            model.set_params(&decoded[i]);
            let prev = if i == 0 { None } else { Some(decoded[i - 1].as_slice()) };
            (id, model, build_ship_entry(&config.wire, id, prev, &decoded[i]))
        });
        let mut history_entries = VecDeque::with_capacity(n_entries);
        let mut ship_cache = VecDeque::with_capacity(n_entries);
        let mut models = Vec::with_capacity(n_entries);
        for ((id, model, ship), &(_, params)) in rebuilt.into_iter().zip(&raw) {
            history_entries.push_back(HistoryEntry { id, params: Bytes::copy_from_slice(params) });
            ship_cache.push_back(ship);
            models.push((id, model));
        }
        let newest = models.last().expect("n_entries >= 1").0;
        if newest + 1 != accepted {
            return Err(CheckpointError::new("history newest id inconsistent with accepted count"));
        }
        let n_committed = r.u32("sync map length")? as usize;
        let mut committed = Vec::with_capacity(n_committed);
        for _ in 0..n_committed {
            let client = r.u64("sync client")? as usize;
            let id = r.u64("sync point")?;
            committed.push((client, id));
        }
        if r.pos != checkpoint.len() {
            return Err(CheckpointError::new("trailing bytes"));
        }
        let global = models.last().expect("n_entries >= 1").1.clone();
        Ok(Self {
            endpoint,
            config,
            param_len,
            global,
            history: ModelHistory::from_entries(history_window, models),
            history_entries,
            ship_cache,
            sync: HistorySync::restore(history_window, accepted, committed),
            engine: ValidationEngine::new(validator),
            server_data,
            round,
        })
    }

    /// Runs one full protocol round and returns what happened.
    pub fn run_round(&mut self) -> ServerRound {
        self.round += 1;
        let round = self.round;
        let n = self.config.fl.clients_per_round();
        // Selection randomness is a pure function of (seed, round, id),
        // so a restored server replays the uninterrupted run's samples.
        // The splitmix64 mixer (not `seed ^ round`) keeps adjacent seeds
        // from colliding across rounds.
        let mut rng =
            StdRng::seed_from_u64(derive_stream(self.config.seed, round, NodeId::SERVER.0 as u64));

        // --- Training phase ------------------------------------------------
        let contributors: Vec<usize> = if round <= self.config.bootstrap_rounds
            && !self.config.bootstrap_trusted.is_empty()
        {
            let pool = &self.config.bootstrap_trusted;
            let k = n.min(pool.len());
            sampling::select_clients(&mut rng, pool.len(), k).into_iter().map(|i| pool[i]).collect()
        } else {
            sampling::select_clients(&mut rng, self.config.fl.num_clients(), n)
        };
        let global_bytes = self.config.wire.model.encode(&self.global.params());
        for &c in &contributors {
            self.endpoint.send(
                NodeId(c as u32),
                Message::TrainRequest { round, global: global_bytes.clone() },
            );
        }
        let (updates, update_tally) = self.collect_updates(round, &contributors);
        let updates_received = updates.len();

        // A round with no surviving updates is skipped entirely — and,
        // thanks to the phase ledger, without waiting out the timeout
        // when every contributor was rejected or abstained.
        if updates.is_empty() {
            return ServerRound {
                round,
                accepted: false,
                updates_received: 0,
                votes_received: 0,
                reject_votes: 0,
                rejected_submissions: update_tally.rejected,
                rejected_votes: 0,
                abstentions: update_tally.abstentions,
                corrupted_payloads: update_tally.corrupted,
                duplicate_deliveries: update_tally.duplicates,
                evicted_resyncs: 0,
                transport_lost: update_tally.lost,
                quorum_clamped: false,
                update_phase: update_tally.elapsed,
                vote_phase: Duration::ZERO,
                history_bytes_shipped: 0,
            };
        }

        // --- Aggregation ---------------------------------------------------
        // Sort by client id so float summation order is deterministic.
        let mut sorted: Vec<(NodeId, Vec<f32>)> = updates.into_iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        let update_vecs: Vec<Vec<f32>> = sorted.into_iter().map(|(_, u)| u).collect();
        let candidate_params = fedavg(
            &self.global.params(),
            &update_vecs,
            self.config.fl.global_lr(),
            self.config.fl.num_clients(),
        );
        let mut candidate = self.global.clone();
        candidate.set_params(&candidate_params);

        // --- Validation phase (Algorithm 1) --------------------------------
        let validators = sampling::select_clients(
            &mut rng,
            self.config.fl.num_clients(),
            self.config.validators_per_round,
        );
        let candidate_bytes = self.config.wire.model.encode(&candidate_params);
        let mut history_bytes_shipped = 0usize;
        let mut evicted_resyncs = 0usize;
        for &v in &validators {
            let (delta, resynced) = self.validator_delta(v);
            evicted_resyncs += usize::from(resynced);
            history_bytes_shipped += delta.iter().map(|e| e.params.len()).sum::<usize>();
            // Shipped, not yet committed: the sync point only advances
            // when this validator answers for this round (vote or
            // abstention). If the request vanishes in flight, the same
            // delta goes out again at the next selection.
            self.sync.mark_shipped(v);
            self.endpoint.send(
                NodeId(v as u32),
                Message::ValidateRequest {
                    round,
                    candidate: candidate_bytes.clone(),
                    history_delta: delta,
                },
            );
        }
        let outcome = self.collect_votes(round, &validators);
        let VotePhase { mut votes, tally: vote_tally, heard, gapped } = outcome;
        for &v in &validators {
            let node = NodeId(v as u32);
            if gapped.contains(&node) {
                // The validator declared its cached window unusable
                // (crash/restart or a corruption-induced gap): forget its
                // sync state so the next selection re-ships everything.
                self.sync.reset(v);
            } else if heard.contains(&node) {
                // Any answer proves the ValidateRequest — and therefore
                // the history delta — arrived intact.
                self.sync.ack(v);
            }
            // Silent validators stay unacknowledged: the shipment is
            // treated as lost and re-sent at their next selection.
        }
        if self.config.server_votes {
            let outcome = self.engine.validate_batched(
                &candidate,
                self.history.ids(),
                self.history.models(),
                &self.server_data,
            );
            let own = match outcome {
                Ok(verdict) => verdict.vote(),
                Err(_) => Vote::Accept,
            };
            votes.push(own);
        }
        let reject_votes = votes.iter().filter(|v| matches!(v, Vote::Reject)).count();
        let voters = validators.len() + usize::from(self.config.server_votes);
        let effective_quorum = self.config.quorum.min(voters.max(1));
        let quorum_clamped = effective_quorum != self.config.quorum;
        let rule = QuorumRule::new(voters.max(1), effective_quorum).expect("valid quorum");
        let decision = rule.decide(&votes);

        // --- Integration ----------------------------------------------------
        if decision == Decision::Accepted {
            let prev_params = self.global.params();
            self.global = candidate;
            let hist_id = self.history.push(self.global.clone());
            let id = self.sync.push_accepted();
            debug_assert_eq!(hist_id, id, "history and sync ids must stay in lockstep");
            // Trusted state stays lossless regardless of the wire
            // profile — the checkpoint format never quantises.
            self.history_entries
                .push_back(HistoryEntry { id, params: wire::encode_f32(&candidate_params) });
            self.ship_cache.push_back(build_ship_entry(
                &self.config.wire,
                id,
                Some(&prev_params),
                &candidate_params,
            ));
            if self.history_entries.len() > self.history.capacity() {
                self.history_entries.pop_front();
                self.ship_cache.pop_front();
            }
        }
        for &c in contributors.iter().chain(&validators) {
            self.endpoint.send(
                NodeId(c as u32),
                Message::RoundResult { round, accepted: decision.is_accepted() },
            );
        }

        ServerRound {
            round,
            accepted: decision.is_accepted(),
            updates_received,
            votes_received: votes.len() - usize::from(self.config.server_votes),
            reject_votes,
            rejected_submissions: update_tally.rejected,
            rejected_votes: vote_tally.rejected,
            abstentions: update_tally.abstentions + vote_tally.abstentions,
            corrupted_payloads: update_tally.corrupted + vote_tally.corrupted,
            duplicate_deliveries: update_tally.duplicates + vote_tally.duplicates,
            evicted_resyncs,
            transport_lost: update_tally.lost || vote_tally.lost,
            quorum_clamped,
            update_phase: update_tally.elapsed,
            vote_phase: vote_tally.elapsed,
            history_bytes_shipped,
        }
    }

    /// Builds validator `v`'s outgoing history delta. A committed sync
    /// point that predates the retained window means the validator has
    /// been absent so long that models it never saw were already
    /// evicted; `HistorySync::models_to_send` clamps to the window
    /// start, so such a validator is shipped the full contiguous window
    /// in one go — never a gapped delta. The eviction is detected here
    /// purely for observability ([`ServerRound::evicted_resyncs`]): a
    /// chaos run can assert that long absences cost one full-window
    /// re-ship and zero `HistoryTooShort` round-trips. The stale sync
    /// point needs no repair — the next ack overwrites it.
    ///
    /// Under a top-k profile each shipped entry is the sparse delta
    /// against its predecessor whenever that predecessor is available to
    /// the receiving validator: either confirmed held (the committed
    /// sync point sits exactly at the start of the outgoing range) or
    /// earlier in this same shipment. Anything else — a fresh validator,
    /// a reset one, a range clamped by eviction — starts the chain with
    /// a dense entry, so every shipment is applicable exactly as sent.
    fn validator_delta(&self, v: usize) -> (Vec<HistoryEntry>, bool) {
        let window = self.sync.window_ids();
        let evicted = self.sync.sync_point(v).is_some_and(|p| p < window.start);
        let wanted = self.sync.models_to_send(v);
        let mut on_chain = wanted.start > 0 && self.sync.sync_point(v) == Some(wanted.start);
        let delta: Vec<HistoryEntry> = wanted
            .clone()
            .filter_map(|id| self.ship_cache.iter().find(|e| e.id == id))
            .map(|e| {
                let params = if on_chain {
                    e.delta.clone().unwrap_or_else(|| e.full.clone())
                } else {
                    e.full.clone()
                };
                on_chain = true;
                HistoryEntry { id: e.id, params }
            })
            .collect();
        debug_assert_eq!(
            delta.len(),
            wanted.count(),
            "retained history must cover the whole outgoing delta"
        );
        (delta, evicted)
    }

    /// Tells every client to exit. Notices to crashed, never-restarted
    /// nodes have no route left; the transport books those under
    /// [`crate::transport::Network::messages_unroutable`], not as drops.
    pub fn shutdown(&self) {
        for c in 0..self.config.fl.num_clients() {
            self.endpoint.send(NodeId(c as u32), Message::Shutdown);
        }
    }

    /// Collects update submissions for `round` until every sampled
    /// contributor is **accounted for** in the phase ledger (answered,
    /// rejected at intake, or explicitly abstained) or the phase timeout
    /// expires. Returns the surviving updates plus the phase tally.
    ///
    /// An update survives only if **all** of these hold — the protocol's
    /// random-sampling defense is void without them:
    ///
    /// - the sender is in this round's sampled contributor set (an
    ///   unsolicited update must not reach FedAvg);
    /// - the claimed `from` matches the transport envelope's sender (no
    ///   impersonating a sampled client);
    /// - the sender has not already settled its slot — the **first**
    ///   delivery wins; repeats are counted as duplicate deliveries, not
    ///   rejections, since a duplicating link is indistinguishable from a
    ///   duplicating sender;
    /// - the payload decodes to exactly `param_len` floats (a truncated
    ///   update would panic the aggregation — a remote DoS). A payload
    ///   whose wire **checksum** fails is booked as link corruption, not
    ///   sender misbehaviour — the honest sender encoded it correctly.
    ///
    /// A misbehaving *sampled* sender settles its ledger slot as
    /// `Rejected`: it has been heard from, so the phase no longer waits
    /// on it. Traffic from outside the sampled set never touches the
    /// ledger — rogues cannot drain the phase.
    ///
    /// Payload decoding is deferred out of the receive loop: the loop
    /// only settles ledger slots and stashes the raw bytes in arrival
    /// order, then the decodes fan out across the worker pool and the
    /// verdicts are folded back serially in that same arrival order, so
    /// the tally is identical to the inline-decode path.
    fn collect_updates(
        &self,
        round: u64,
        contributors: &[usize],
    ) -> (HashMap<NodeId, Vec<f32>>, PhaseTally) {
        let mut ledger = PhaseLedger::new(contributors.iter().map(|&c| NodeId(c as u32)));
        let mut submissions: Vec<(NodeId, Bytes)> = Vec::new();
        let mut tally = PhaseTally::default();
        let start = std::time::Instant::now();
        let deadline = start + self.config.phase_timeout;
        while !ledger.all_accounted() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => match env.message {
                    Message::UpdateSubmission { round: r, from, update } => {
                        if r != round {
                            // Stale-round stragglers are dropped silently.
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if !ledger.is_pending(from) {
                            // Repeat delivery to a settled slot: the
                            // first delivery won.
                            tally.duplicates += 1;
                            continue;
                        }
                        // First delivery from a sampled sender: the slot
                        // settles now (the phase stops waiting on it)
                        // and the payload is parsed after the loop. The
                        // ledger is phase-local, so whether a bad decode
                        // books it answered or rejected is unobservable.
                        submissions.push((from, update));
                        ledger.mark_answered(from);
                    }
                    Message::Abstain { round: r, from, reason } => {
                        if r != round || !reason.is_train_phase() {
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if ledger.mark_abstained(from) {
                            tally.abstentions += 1;
                        } else {
                            tally.duplicates += 1;
                        }
                    }
                    _ => {}
                },
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    // Not a straggler problem: the transport itself is
                    // gone. Surface it instead of conflating it with a
                    // timeout.
                    tally.lost = true;
                    break;
                }
            }
        }
        // Each payload decodes independently: fan out on the pool, then
        // fold the verdicts serially in arrival order.
        let decoded = pool::parallel_map(submissions, |_, (from, update)| {
            let result = wire::decode_any(&update);
            (from, result)
        });
        let mut updates = HashMap::new();
        for (from, result) in decoded {
            match result {
                Ok(u) if u.len() == self.param_len => {
                    updates.insert(from, u);
                }
                Err(e) if e.is_corruption() => {
                    // The link damaged an honest payload: the sender is
                    // not blamed (it encoded correctly and will not
                    // resend).
                    tally.corrupted += 1;
                }
                _ => {
                    tally.rejected += 1;
                }
            }
        }
        tally.elapsed = start.elapsed();
        (updates, tally)
    }

    /// Collects vote submissions for `round` until every sampled
    /// validator is accounted for in the phase ledger or the phase
    /// timeout expires. Returns the counted votes plus the phase tally
    /// and the acknowledgement evidence: which validators were **heard
    /// from** (their history shipment arrived) and which of those
    /// declared a too-short window (their sync state must be reset).
    ///
    /// A vote counts only if the sender is in this round's sampled
    /// validator set, the claimed `from` matches the envelope, and the
    /// validator's ledger slot is still pending — otherwise any node
    /// could stuff the quorum. A repeat delivery to a settled slot (a
    /// duplicated vote, or a vote after an abstention) is counted as a
    /// duplicate, not a rejection. An explicit abstention settles the
    /// slot without casting a vote: per footnote 1 it is an implicit
    /// accept, and the phase stops waiting for that validator.
    fn collect_votes(&self, round: u64, validators: &[usize]) -> VotePhase {
        let mut ledger = PhaseLedger::new(validators.iter().map(|&v| NodeId(v as u32)));
        let mut outcome = VotePhase::default();
        let start = std::time::Instant::now();
        let deadline = start + self.config.phase_timeout;
        while !ledger.all_accounted() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => match env.message {
                    Message::VoteSubmission { round: r, from, vote } => {
                        if r != round {
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            outcome.tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if ledger.mark_answered(from) {
                            outcome.votes.push(vote);
                            outcome.heard.push(from);
                        } else {
                            // Duplicate vote, or a vote after abstaining.
                            outcome.tally.duplicates += 1;
                        }
                    }
                    Message::Abstain { round: r, from, reason } => {
                        if r != round || !reason.is_vote_phase() {
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            outcome.tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if ledger.mark_abstained(from) {
                            outcome.tally.abstentions += 1;
                            outcome.heard.push(from);
                            if reason == AbstainReason::HistoryTooShort {
                                outcome.gapped.push(from);
                            }
                        } else {
                            outcome.tally.duplicates += 1;
                        }
                    }
                    _ => {}
                },
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    outcome.tally.lost = true;
                    break;
                }
            }
        }
        outcome.tally.elapsed = start.elapsed();
        outcome
    }
}

/// What one collection phase observed besides its payloads.
#[derive(Debug, Default)]
struct PhaseTally {
    /// Submissions discarded at intake because the sender misbehaved.
    rejected: usize,
    /// Explicit abstentions counted.
    abstentions: usize,
    /// Payloads damaged in flight (wire checksum mismatch).
    corrupted: usize,
    /// Repeat deliveries to already-settled ledger slots.
    duplicates: usize,
    /// Whether the phase ended because the receive channel disconnected.
    lost: bool,
    /// Wall-clock the phase took.
    elapsed: Duration,
}

/// Everything the vote collection phase reports back to the round.
#[derive(Debug, Default)]
struct VotePhase {
    votes: Vec<Vote>,
    tally: PhaseTally,
    /// Validators that answered (vote or abstention) — proof their
    /// ValidateRequest, and therefore their history delta, arrived.
    heard: Vec<NodeId>,
    /// The subset of `heard` that abstained with
    /// [`AbstainReason::HistoryTooShort`].
    gapped: Vec<NodeId>,
}
