#!/bin/sh
# Regenerates every table and figure of the paper (plus the extension
# experiments) into results/. Takes on the order of 1-2 hours at the
# default 5 repetitions; pass --fast through EXP_FLAGS for a smoke run:
#   EXP_FLAGS=--fast ./run_experiments.sh
set -x
cd "$(dirname "$0")"
cargo build --release -p baffle-core -p baffle-baselines --bins
# Paper artifacts.
./target/release/fig2_per_class_error   $EXP_FLAGS --out results/fig2.txt                  > results/fig2.log 2>&1
cargo run --release -p baffle-bench --bin wire_report > results/BENCH_wire.json 2> results/wire_report.log
./target/release/fig4_early_poisoning   $EXP_FLAGS --out results/fig4.txt                  > results/fig4.log 2>&1
./target/release/table2_adaptive        $EXP_FLAGS --out results/table2.txt                > results/table2.log 2>&1
./target/release/fig5_vote_distribution $EXP_FLAGS --out results/fig5.txt                  > results/fig5.log 2>&1
./target/release/table1_lookback        $EXP_FLAGS --out results/table1.txt                > results/table1.log 2>&1
./target/release/fig3_quorum            $EXP_FLAGS --out results/fig3.txt                  > results/fig3.log 2>&1
# Extensions.
./target/release/ext_boost_sweep        $EXP_FLAGS --out results/ext_boost_sweep.txt       > results/ext_boost.log 2>&1
./target/release/ext_writer_partition   $EXP_FLAGS --out results/ext_writer_partition.txt  > results/ext_writer.log 2>&1
./target/release/ext_deferred_validation  $EXP_FLAGS --out results/ext_deferred_validation.txt > results/ext_deferred.log 2>&1
./target/release/ext_cnn_substrate        $EXP_FLAGS --out results/ext_cnn_substrate.txt     > results/ext_cnn.log 2>&1
./target/release/ext_malicious_voters   $EXP_FLAGS --out results/ext_malicious_voters.txt  > results/ext_voters.log 2>&1
./target/release/baseline_comparison    $EXP_FLAGS --out results/baseline_comparison.txt   > results/baseline.log 2>&1
./target/release/ablation_detector      $EXP_FLAGS --out results/ablation_detector.txt     > results/ablation.log 2>&1
echo ALL_EXPERIMENTS_DONE
