//! `baffle_sim` — configurable command-line runner for one BaFFLe
//! experiment. The general-purpose entry point for exploring the system
//! beyond the scripted paper experiments.
//!
//! ```sh
//! cargo run --release -p baffle-core --bin baffle_sim -- \
//!     --dataset cifar --mode both --rounds 40 --lookback 20 --quorum 5 \
//!     --poison 10,20,30 --adaptive --track --seed 7
//! ```
//!
//! Prints a TSV of per-round records followed by the summary.

use baffle_core::{AttackKind, DatasetKind, DefenseMode, Simulation, SimulationConfig};

struct CliConfig {
    config: SimulationConfig,
}

fn usage() -> ! {
    eprintln!(
        "baffle_sim options:\n\
         --dataset cifar|femnist     evaluation setting (default cifar)\n\
         --mode both|clients|server|off   defender configuration (default both)\n\
         --rounds N                  recorded FL rounds (default 30)\n\
         --lookback N                look-back window ℓ (default 20)\n\
         --quorum N                  quorum threshold q (default 5)\n\
         --validators N              validating clients per round (default 10)\n\
         --poison r1,r2,...          injection rounds (default 10,15,20)\n\
         --adaptive                  use the defense-aware attacker\n\
         --small                     miniature scale (seconds instead of minutes)\n\
         --track                     record main/backdoor accuracy per round\n\
         --secagg                    route updates through secure aggregation\n\
         --seed N                    master seed (default 1)"
    );
    std::process::exit(2);
}

fn parse(args: impl Iterator<Item = String>) -> CliConfig {
    let mut dataset = DatasetKind::CifarLike;
    let mut small = false;
    let mut raw: Vec<(String, Option<String>)> = Vec::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dataset" => match args.next().as_deref() {
                Some("cifar") => dataset = DatasetKind::CifarLike,
                Some("femnist") => dataset = DatasetKind::FemnistLike,
                _ => usage(),
            },
            "--small" => small = true,
            "--adaptive" | "--track" | "--secagg" => raw.push((flag, None)),
            "--mode" | "--rounds" | "--lookback" | "--quorum" | "--validators" | "--poison"
            | "--seed" => {
                let value = args.next().unwrap_or_else(|| usage());
                raw.push((flag, Some(value)));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut config = match (dataset, small) {
        (DatasetKind::CifarLike, false) => SimulationConfig::cifar_like(1),
        (DatasetKind::CifarLike, true) => SimulationConfig::cifar_like_small(1),
        (DatasetKind::FemnistLike, false) => SimulationConfig::femnist_like(1),
        (DatasetKind::FemnistLike, true) => SimulationConfig::femnist_like_small(1),
    };
    for (flag, value) in raw {
        let value = value.as_deref();
        match flag.as_str() {
            "--mode" => {
                config.defense = match value {
                    Some("both") => DefenseMode::Both,
                    Some("clients") => DefenseMode::ClientsOnly,
                    Some("server") => DefenseMode::ServerOnly,
                    Some("off") => DefenseMode::Off,
                    _ => usage(),
                }
            }
            "--rounds" => {
                config.rounds = value.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--lookback" => {
                config.lookback = value.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                config.warmup_rounds = config.lookback + 1;
            }
            "--quorum" => {
                config.quorum = value.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--validators" => {
                config.validators_per_round =
                    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--poison" => {
                config.poison_rounds = value
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--seed" => config.seed = value.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--adaptive" => config.attack = AttackKind::Adaptive,
            "--track" => config.track_accuracy = true,
            "--secagg" => config.use_secagg = true,
            _ => unreachable!("raw flags are pre-filtered"),
        }
    }
    CliConfig { config }
}

fn main() {
    let cli = parse(std::env::args().skip(1));
    let mut sim = Simulation::new(cli.config);
    eprintln!(
        "backdoor task: {:?}; stable-model accuracy {:.3}",
        sim.backdoor(),
        sim.main_accuracy()
    );
    let report = sim.run();

    println!("round\tpoisoned\tactive\tdecision\treject_votes\tvotes\tmain_acc\tbackdoor_acc\tself_accepted\tcandidate_bd");
    for r in &report.records {
        println!(
            "{}\t{}\t{}\t{:?}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.round,
            r.poisoned as u8,
            r.defense_active as u8,
            r.decision,
            r.reject_votes,
            r.votes_cast,
            r.main_accuracy.map_or("-".into(), |a| format!("{a:.4}")),
            r.backdoor_accuracy.map_or("-".into(), |a| format!("{a:.4}")),
            r.adaptive_self_accepted.map_or("-".into(), |a| (a as u8).to_string()),
            r.candidate_backdoor_accuracy.map_or("-".into(), |a| format!("{a:.4}")),
        );
    }
    eprintln!(
        "summary: rounds {}  FP {}  FN {}  (FP rate {:.3}, FN rate {:.3})  final backdoor acc {:.3}",
        report.rounds_run,
        report.false_positives(),
        report.false_negatives(),
        report.fp_rate(),
        report.fn_rate(),
        sim.backdoor_accuracy()
    );
}
