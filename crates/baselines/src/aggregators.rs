//! Byzantine-robust aggregation rules from the distributed-learning
//! literature, applied to flat update vectors.
//!
//! All functions take the round's client updates `Uᵢ = Lᵢ − G` and return
//! a single aggregated update (to be applied as `G' = G + λ/N · n·agg` or
//! directly, depending on the caller's convention — the comparison
//! harness applies `G' = G + agg` with the rules acting as drop-in
//! replacements for the plain mean scaled to full replacement).

use crate::{check_updates, BaselineError};
use baffle_tensor::ops;

/// Plain arithmetic mean of the updates — FedAvg's core, the non-robust
/// reference point.
///
/// # Errors
///
/// Returns [`BaselineError`] on empty or ragged input.
pub fn mean(updates: &[Vec<f32>]) -> Result<Vec<f32>, BaselineError> {
    check_updates(updates)?;
    Ok(ops::mean(updates))
}

/// Krum (Blanchard et al., NeurIPS 2017): selects the single update whose
/// squared distance to its `n − f − 2` nearest neighbours is smallest,
/// where `f` is the assumed number of Byzantine clients.
///
/// # Errors
///
/// Returns [`BaselineError::Infeasible`] unless `n ≥ 2f + 3` (Krum's
/// requirement), plus the usual shape errors.
pub fn krum(updates: &[Vec<f32>], f: usize) -> Result<Vec<f32>, BaselineError> {
    let scores = krum_scores(updates, f)?;
    let best = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty scores")
        .0;
    Ok(updates[best].clone())
}

/// Multi-Krum: averages the `m` updates with the best Krum scores,
/// trading some robustness for convergence speed.
///
/// # Errors
///
/// As [`krum`]; additionally `m` must satisfy `1 ≤ m ≤ n`.
pub fn multi_krum(updates: &[Vec<f32>], f: usize, m: usize) -> Result<Vec<f32>, BaselineError> {
    if m == 0 || m > updates.len() {
        return Err(BaselineError::Infeasible { what: "multi-krum needs 1 <= m <= n" });
    }
    let scores = krum_scores(updates, f)?;
    let mut order: Vec<usize> = (0..updates.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    let selected: Vec<Vec<f32>> = order[..m].iter().map(|&i| updates[i].clone()).collect();
    Ok(ops::mean(&selected))
}

fn krum_scores(updates: &[Vec<f32>], f: usize) -> Result<Vec<f64>, BaselineError> {
    check_updates(updates)?;
    let n = updates.len();
    if n < 2 * f + 3 {
        return Err(BaselineError::Infeasible { what: "krum needs n >= 2f + 3" });
    }
    // Pairwise squared distances.
    let mut d2 = vec![vec![0.0_f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = ops::distance(&updates[i], &updates[j]) as f64;
            d2[i][j] = d * d;
            d2[j][i] = d * d;
        }
    }
    // Score: sum over the n − f − 2 closest other updates.
    let keep = n - f - 2;
    Ok((0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| d2[i][j]).collect();
            row.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            row[..keep].iter().sum()
        })
        .collect())
}

/// Coordinate-wise median (Yin et al., ICML 2018).
///
/// # Errors
///
/// Returns [`BaselineError`] on empty or ragged input.
pub fn median(updates: &[Vec<f32>]) -> Result<Vec<f32>, BaselineError> {
    let dim = check_updates(updates)?;
    let n = updates.len();
    let mut out = Vec::with_capacity(dim);
    let mut column = vec![0.0_f32; n];
    for d in 0..dim {
        for (c, u) in column.iter_mut().zip(updates) {
            *c = u[d];
        }
        column.sort_by(f32::total_cmp);
        let m = if n % 2 == 1 { column[n / 2] } else { 0.5 * (column[n / 2 - 1] + column[n / 2]) };
        out.push(m);
    }
    Ok(out)
}

/// Coordinate-wise `β`-trimmed mean (Yin et al., ICML 2018): drops the
/// `β` largest and `β` smallest values per coordinate, then averages.
///
/// # Errors
///
/// Returns [`BaselineError::Infeasible`] when `2β ≥ n`.
pub fn trimmed_mean(updates: &[Vec<f32>], beta: usize) -> Result<Vec<f32>, BaselineError> {
    let dim = check_updates(updates)?;
    let n = updates.len();
    if 2 * beta >= n {
        return Err(BaselineError::Infeasible { what: "trimmed mean needs 2*beta < n" });
    }
    let kept = (n - 2 * beta) as f32;
    let mut out = Vec::with_capacity(dim);
    let mut column = vec![0.0_f32; n];
    for d in 0..dim {
        for (c, u) in column.iter_mut().zip(updates) {
            *c = u[d];
        }
        column.sort_by(f32::total_cmp);
        out.push(column[beta..n - beta].iter().sum::<f32>() / kept);
    }
    Ok(out)
}

/// Robust Federated Aggregation (Pillutla et al.): the geometric median
/// of the updates, computed with the smoothed Weiszfeld algorithm.
///
/// # Errors
///
/// Returns [`BaselineError`] on empty or ragged input.
pub fn geometric_median(
    updates: &[Vec<f32>],
    iterations: usize,
    smoothing: f32,
) -> Result<Vec<f32>, BaselineError> {
    check_updates(updates)?;
    let mut z = ops::mean(updates);
    for _ in 0..iterations {
        let mut weight_sum = 0.0_f32;
        let mut acc = vec![0.0_f32; z.len()];
        for u in updates {
            let dist = ops::distance(u, &z).max(smoothing);
            let w = 1.0 / dist;
            weight_sum += w;
            ops::axpy(w, u, &mut acc);
        }
        for (a, _) in acc.iter_mut().zip(&z) {
            *a /= weight_sum;
        }
        z = acc;
    }
    Ok(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_cluster(n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| vec![0.1 + 0.001 * i as f32, -0.2 + 0.001 * i as f32]).collect()
    }

    #[test]
    fn mean_is_plain_average() {
        let m = mean(&[vec![0.0, 2.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(m, vec![1.0, 1.0]);
    }

    #[test]
    fn krum_drops_a_far_outlier() {
        let mut ups = benign_cluster(8);
        ups.push(vec![100.0, 100.0]);
        let k = krum(&ups, 1).unwrap();
        assert!(k[0] < 1.0, "krum picked the outlier: {k:?}");
    }

    #[test]
    fn krum_requires_enough_clients() {
        let ups = benign_cluster(4);
        assert!(matches!(krum(&ups, 1), Err(BaselineError::Infeasible { .. })));
    }

    #[test]
    fn multi_krum_averages_benign_subset() {
        let mut ups = benign_cluster(8);
        ups.push(vec![50.0, -50.0]);
        let mk = multi_krum(&ups, 1, 4).unwrap();
        assert!(mk[0].abs() < 1.0);
        assert!(multi_krum(&ups, 1, 0).is_err());
        assert!(multi_krum(&ups, 1, 99).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        let odd = median(&[vec![1.0], vec![5.0], vec![3.0]]).unwrap();
        assert_eq!(odd, vec![3.0]);
        let even = median(&[vec![1.0], vec![5.0], vec![3.0], vec![4.0]]).unwrap();
        assert_eq!(even, vec![3.5]);
    }

    #[test]
    fn median_ignores_one_huge_coordinate() {
        let ups = vec![vec![0.1], vec![0.2], vec![0.15], vec![1e9]];
        assert!(median(&ups).unwrap()[0] < 1.0);
    }

    #[test]
    fn trimmed_mean_matches_mean_without_trim() {
        let ups = benign_cluster(5);
        let t = trimmed_mean(&ups, 0).unwrap();
        let m = mean(&ups).unwrap();
        for (a, b) in t.iter().zip(&m) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let ups = vec![vec![-100.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]];
        let t = trimmed_mean(&ups, 1).unwrap();
        assert!((t[0] - 2.0).abs() < 1e-6);
        assert!(trimmed_mean(&ups, 3).is_err());
    }

    #[test]
    fn geometric_median_resists_an_outlier_better_than_mean() {
        let mut ups = benign_cluster(9);
        ups.push(vec![1000.0, 1000.0]);
        let gm = geometric_median(&ups, 50, 1e-6).unwrap();
        let m = mean(&ups).unwrap();
        assert!(gm[0].abs() < 5.0, "geometric median dragged away: {gm:?}");
        assert!(m[0] > 50.0, "mean should be dragged: {m:?}");
    }

    #[test]
    fn geometric_median_of_identical_points_is_the_point() {
        let ups = vec![vec![1.0, 2.0]; 5];
        let gm = geometric_median(&ups, 20, 1e-6).unwrap();
        assert!((gm[0] - 1.0).abs() < 1e-4 && (gm[1] - 2.0).abs() < 1e-4);
    }
}
