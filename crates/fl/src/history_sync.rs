//! Incremental history shipping (paper §VI-D).
//!
//! The feedback loop requires each validating client to hold the last
//! `ℓ+1` accepted global models. Shipping the full history every time a
//! client is selected costs `(ℓ+1) · |model|` bytes; but a client that
//! was selected recently already holds most of the window, so the server
//! only needs to send the models **accepted since the client's last
//! sync**. The paper estimates this caps steady-state traffic at about
//! two model-equivalents per selection; [`HistorySync`] implements the
//! bookkeeping and makes the estimate measurable.

use std::collections::HashMap;

/// Monotone identifier of an accepted global model.
pub type ModelId = u64;

/// Server-side bookkeeping for incremental history shipping.
///
/// # Example
///
/// ```
/// use baffle_fl::history_sync::HistorySync;
///
/// let mut sync = HistorySync::new(3); // history window ℓ+1 = 3
/// for _ in 0..5 {
///     sync.push_accepted();
/// }
/// // A fresh client needs the whole window …
/// assert_eq!(sync.models_to_send(7).count(), 3);
/// sync.mark_synced(7);
/// // … but after one more accepted round, only the newest model.
/// sync.push_accepted();
/// assert_eq!(sync.models_to_send(7).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistorySync {
    window: usize,
    next_id: ModelId,
    synced_up_to: HashMap<usize, ModelId>,
}

impl HistorySync {
    /// Creates the bookkeeping for a history window of `window = ℓ+1`
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "HistorySync: window must be positive");
        Self { window, next_id: 0, synced_up_to: HashMap::new() }
    }

    /// Records that a new global model was accepted, returning its id.
    pub fn push_accepted(&mut self) -> ModelId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Number of models accepted so far.
    pub fn accepted(&self) -> u64 {
        self.next_id
    }

    /// The current history window as model ids (oldest first).
    pub fn window_ids(&self) -> std::ops::Range<ModelId> {
        let lo = self.next_id.saturating_sub(self.window as u64);
        lo..self.next_id
    }

    /// The model ids that must be sent to `client` so it holds the full
    /// current window: the part of the window it has not seen since its
    /// last sync.
    pub fn models_to_send(&self, client: usize) -> std::ops::Range<ModelId> {
        let window = self.window_ids();
        let seen = self.synced_up_to.get(&client).copied().unwrap_or(0);
        seen.max(window.start)..window.end
    }

    /// Marks `client` as holding the entire current window.
    pub fn mark_synced(&mut self, client: usize) {
        self.synced_up_to.insert(client, self.next_id);
    }

    /// Bytes needed to bring `client` up to date, given a serialized
    /// model size.
    pub fn bytes_to_send(&self, client: usize, model_bytes: usize) -> usize {
        self.models_to_send(client).count() * model_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_client_needs_full_window() {
        let mut sync = HistorySync::new(21);
        for _ in 0..100 {
            sync.push_accepted();
        }
        assert_eq!(sync.models_to_send(3).count(), 21);
    }

    #[test]
    fn early_history_smaller_than_window() {
        let mut sync = HistorySync::new(21);
        for _ in 0..5 {
            sync.push_accepted();
        }
        assert_eq!(sync.models_to_send(0).count(), 5);
    }

    #[test]
    fn recently_synced_client_gets_only_the_delta() {
        let mut sync = HistorySync::new(21);
        for _ in 0..50 {
            sync.push_accepted();
        }
        sync.mark_synced(9);
        for _ in 0..2 {
            sync.push_accepted();
        }
        assert_eq!(sync.models_to_send(9).count(), 2);
    }

    #[test]
    fn long_absent_client_is_capped_at_the_window() {
        let mut sync = HistorySync::new(10);
        sync.push_accepted();
        sync.mark_synced(1);
        for _ in 0..500 {
            sync.push_accepted();
        }
        // 500 models passed, but only the current window matters.
        assert_eq!(sync.models_to_send(1).count(), 10);
    }

    #[test]
    fn bytes_accounting_multiplies_by_model_size() {
        let mut sync = HistorySync::new(4);
        for _ in 0..4 {
            sync.push_accepted();
        }
        assert_eq!(sync.bytes_to_send(0, 1000), 4000);
        sync.mark_synced(0);
        sync.push_accepted();
        assert_eq!(sync.bytes_to_send(0, 1000), 1000);
    }

    #[test]
    fn steady_state_cost_matches_paper_estimate() {
        // Paper §VI-D: with 1/10 selection probability per round and a
        // 20-round window, a client re-selected within the window only
        // downloads the models accepted since — on average ≈ 10 models
        // per selection (selection gap is geometric with mean 10).
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut sync = HistorySync::new(21);
        let clients = 100;
        let mut sent = 0usize;
        let mut selections = 0usize;
        for _ in 0..2_000 {
            sync.push_accepted();
            for c in 0..clients {
                if rng.gen_bool(0.1) {
                    sent += sync.models_to_send(c).count();
                    sync.mark_synced(c);
                    selections += 1;
                }
            }
        }
        let avg = sent as f64 / selections as f64;
        assert!(
            (6.0..14.0).contains(&avg),
            "steady-state models per selection = {avg} (expected ≈ 10, well below the 21 full window)"
        );
    }
}
