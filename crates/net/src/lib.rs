//! Message-passing deployment of the BaFFLe protocol.
//!
//! The [`baffle_core::Simulation`] driver executes the protocol as a
//! single-process loop — ideal for experiments, but it hides the
//! distributed-systems concerns a real deployment faces. This crate runs
//! **Algorithm 1 as an actual protocol** between actors:
//!
//! - a [`server::Server`] actor orchestrating rounds: broadcasting the
//!   wire-encoded global model, collecting updates **with timeouts**,
//!   aggregating, requesting validation, applying the quorum rule with
//!   the paper's footnote-1 semantics (non-responding validators count
//!   as implicit accepts), and shipping **incremental history** (§VI-D,
//!   via [`baffle_fl::history_sync::HistorySync`]);
//! - [`client::Client`] state machines that train on their local shard,
//!   maintain a local cache of the accepted-model history, run the
//!   VALIDATE function (Algorithm 2) and vote — or, if malicious,
//!   inject model-replacement updates and lie in votes. By default all
//!   clients are multiplexed on the event-driven [`scheduler`] (one
//!   thread + the shared worker pool, so 10k+ registered clients are
//!   cheap); a thread-per-client path is retained and bit-identical;
//! - a per-phase [`phase::PhaseLedger`] tracking every sampled responder
//!   as pending / answered / rejected / abstained, so a collection phase
//!   ends as soon as everyone is **accounted for** — a malformed update
//!   or an explicit [`message::Message::Abstain`] never burns the full
//!   phase timeout; only genuinely silent nodes do;
//! - an in-process [`transport`] layer driven by a seeded [`fault`] plan
//!   — per-link drops, delay/jitter, reordering, duplication, payload
//!   corruption, plus round-scoped partitions and crash/restart scripts
//!   — so dropout *and recovery* handling are exercised for real. The
//!   server checkpoints its trusted state ([`server::Server::checkpoint`])
//!   and history shipping is acknowledged
//!   ([`baffle_fl::history_sync::HistorySync`]), so a lost delta is
//!   re-sent instead of leaving a validator with a gapped window.
//!
//! Models and updates travel as [`bytes::Bytes`] in the
//! [`baffle_nn::wire`] format — nothing crosses an actor boundary except
//! serialized messages.
//!
//! Durability lives in [`wal`]: a [`wal::DurableServer`] journals every
//! round outcome to a checksummed write-ahead log and compacts it into
//! atomic checkpoints, a [`wal::Standby`] tails the log as a warm
//! replica, and [`wal::recover`] rebuilds a crashed server —
//! bit-identically — from `checkpoint + log tail`, re-running any round
//! the crash tore mid-flight.
//!
//! # Example
//!
//! ```
//! use baffle_net::deployment::{Deployment, DeploymentConfig};
//!
//! let config = DeploymentConfig::small(3);
//! let outcome = Deployment::run(config);
//! assert_eq!(outcome.rounds.len(), 6);
//! // The scripted injection was rejected by the quorum.
//! assert!(outcome.rounds.iter().any(|r| !r.accepted));
//! ```

pub mod client;
pub mod deployment;
pub mod fault;
pub mod frame;
pub mod message;
pub mod phase;
pub mod scheduler;
pub mod server;
pub mod socket;
pub mod transport;
pub mod wal;
