//! Quickstart: run a miniature BaFFLe-defended federated-learning
//! experiment and inspect the outcome.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use baffle::core::{Simulation, SimulationConfig};

fn main() {
    // A laptop-sized CIFAR-like scenario: 20 clients, one scripted
    // model-replacement injection, BaFFLe (clients + server) defending.
    let mut config = SimulationConfig::cifar_like_small(42);
    config.track_accuracy = true;
    let mut sim = Simulation::new(config);

    println!("backdoor task: {:?}", sim.backdoor());
    println!("stable model accuracy before the run: {:.3}", sim.main_accuracy());
    println!();

    let report = sim.run();
    println!("round  poisoned  decision    rejects  main-acc  backdoor-acc");
    for r in &report.records {
        println!(
            "{:>5}  {:>8}  {:<10}  {:>2}/{:<4}  {:>8.3}  {:>12.3}",
            r.round,
            if r.poisoned { "YES" } else { "-" },
            format!("{:?}", r.decision),
            r.reject_votes,
            r.votes_cast,
            r.main_accuracy.unwrap_or(f32::NAN),
            r.backdoor_accuracy.unwrap_or(f32::NAN),
        );
    }
    println!();
    println!(
        "false positives: {}   false negatives: {}   (FP rate {:.3}, FN rate {:.3})",
        report.false_positives(),
        report.false_negatives(),
        report.fp_rate(),
        report.fn_rate()
    );
    println!("final backdoor accuracy: {:.3}", sim.backdoor_accuracy());
}
