//! Umbrella crate for the BaFFLe reproduction.
//!
//! Re-exports the whole workspace API so downstream users (and the
//! `examples/` and `tests/` in this repository) can depend on a single
//! crate:
//!
//! - [`tensor`] — dense matrix / flat-vector math kernels;
//! - [`nn`] — the neural-network training substrate;
//! - [`data`] — synthetic federated datasets and non-IID partitioning;
//! - [`lof`] — Local Outlier Factor;
//! - [`fl`] — the federated-learning loop and secure aggregation;
//! - [`attack`] — model-replacement, label-flip and adaptive backdoors;
//! - [`core`] — the BaFFLe defense: error-variation validation
//!   (Algorithm 2), the feedback loop with quorum voting (Algorithm 1),
//!   and the full experiment driver;
//! - [`baselines`] — the robust-aggregation and update-inspection
//!   defenses the paper argues against (Krum, median, trimmed mean, RFA,
//!   clipping, FoolsGold, FLGuard) plus detector ablations;
//! - [`net`] — a threaded message-passing deployment of the protocol
//!   (server/client actors, timeouts, dropouts, incremental history
//!   shipping).
//!
//! # Quickstart
//!
//! ```
//! use baffle::core::{Simulation, SimulationConfig};
//!
//! let config = SimulationConfig::cifar_like_small(7);
//! let mut sim = Simulation::new(config);
//! let report = sim.run();
//! assert!(report.rounds_run > 0);
//! ```

pub use baffle_attack as attack;
pub use baffle_baselines as baselines;
pub use baffle_core as core;
pub use baffle_data as data;
pub use baffle_fl as fl;
pub use baffle_lof as lof;
pub use baffle_net as net;
pub use baffle_nn as nn;
pub use baffle_tensor as tensor;
