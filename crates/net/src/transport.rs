//! In-process transport with per-link loss simulation.
//!
//! Each node owns an unbounded receiving channel; a shared [`Network`]
//! handle routes [`Envelope`]s to their destination. A configurable drop
//! probability (driven by a seeded RNG, so runs are reproducible)
//! simulates clients that lose connectivity — the condition the paper's
//! footnote 1 addresses by counting silent validators as implicit
//! accepts.

use crate::message::{Message, NodeId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A routed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub message: Message,
}

struct NetworkInner {
    routes: Mutex<HashMap<NodeId, Sender<Envelope>>>,
    drop_prob: f64,
    rng: Mutex<StdRng>,
    sent: Mutex<u64>,
    dropped: Mutex<u64>,
}

/// Shared handle to the in-process network.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.inner.routes.lock().len())
            .field("drop_prob", &self.inner.drop_prob)
            .finish()
    }
}

impl Network {
    /// Creates a lossless network.
    pub fn new() -> Self {
        Self::with_loss(0.0, 0)
    }

    /// Creates a network that drops each message with probability
    /// `drop_prob`, using `seed` for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is not in `[0, 1)`.
    pub fn with_loss(drop_prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop_prob must be in [0, 1), got {drop_prob}");
        Self {
            inner: Arc::new(NetworkInner {
                routes: Mutex::new(HashMap::new()),
                drop_prob,
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                sent: Mutex::new(0),
                dropped: Mutex::new(0),
            }),
        }
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the node id is already registered.
    pub fn register(&self, id: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        let previous = self.inner.routes.lock().insert(id, tx);
        assert!(previous.is_none(), "node {id} registered twice");
        Endpoint { id, network: self.clone(), receiver: rx }
    }

    /// Sends a message; silently drops it with the configured loss
    /// probability or when the destination is unknown/disconnected
    /// (matching UDP-like fire-and-forget semantics).
    pub fn send(&self, from: NodeId, to: NodeId, message: Message) {
        *self.inner.sent.lock() += 1;
        if self.inner.drop_prob > 0.0 {
            let drop: bool = self.inner.rng.lock().gen_bool(self.inner.drop_prob);
            // Shutdown is a control message delivered out of band (a real
            // deployment would retry it); dropping it would leak threads.
            if drop && !matches!(message, Message::Shutdown) {
                *self.inner.dropped.lock() += 1;
                return;
            }
        }
        let routes = self.inner.routes.lock();
        if let Some(tx) = routes.get(&to) {
            let _ = tx.send(Envelope { from, to, message });
        }
    }

    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        *self.inner.sent.lock()
    }

    /// Messages lost to the simulated link.
    pub fn messages_dropped(&self) -> u64 {
        *self.inner.dropped.lock()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

/// A node's connection: its inbox plus a sending handle.
#[derive(Debug)]
pub struct Endpoint {
    id: NodeId,
    network: Network,
    receiver: Receiver<Envelope>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `message` to `to`.
    pub fn send(&self, to: NodeId, message: Message) {
        self.network.send(self.id, to, message);
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns an error when the network shut down (all senders gone).
    pub fn recv(&self) -> Result<Envelope, crossbeam::channel::RecvError> {
        self.receiver.recv()
    }

    /// Waits up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// Returns an error on timeout or disconnection.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Envelope, crossbeam::channel::RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        a.send(NodeId(1), Message::Shutdown);
        let env = b.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.message, Message::Shutdown);
    }

    #[test]
    fn unknown_destination_is_dropped_silently() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        a.send(NodeId(99), Message::Shutdown); // must not panic
        assert_eq!(net.messages_sent(), 1);
    }

    #[test]
    fn lossy_network_drops_roughly_the_configured_fraction() {
        let net = Network::with_loss(0.3, 42);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let n = 2000;
        for round in 0..n {
            a.send(NodeId(1), Message::RoundResult { round, accepted: true });
        }
        let mut received = 0;
        while b.recv_timeout(Duration::from_millis(1)).is_ok() {
            received += 1;
        }
        let drop_rate = 1.0 - received as f64 / n as f64;
        assert!((0.25..0.35).contains(&drop_rate), "drop rate {drop_rate}");
        assert_eq!(net.messages_dropped() + received, n);
    }

    #[test]
    fn shutdown_is_never_dropped() {
        let net = Network::with_loss(0.99, 7);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for _ in 0..50 {
            a.send(NodeId(1), Message::Shutdown);
        }
        let mut got = 0;
        while b.recv_timeout(Duration::from_millis(1)).is_ok() {
            got += 1;
        }
        assert_eq!(got, 50);
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        assert!(a.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let net = Network::new();
        let _a = net.register(NodeId(0));
        let _b = net.register(NodeId(0));
    }
}
