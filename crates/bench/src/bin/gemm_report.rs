//! Emits a machine-readable GEMM perf summary (`BENCH_gemm.json` on CI):
//! median ns/op for the serial-naive reference, the serial blocked
//! kernel, the 8-wide SIMD micro-kernel, and the auto-dispatched
//! (pool-parallel above threshold) path at the trainer shapes, so the
//! perf trajectory is tracked per commit. A `dispatch` summary records
//! which kernel paths the auto entry points actually took.
//!
//! Uses plain `std::time` rather than Criterion so it runs as a normal
//! release binary: `cargo run --release -p baffle-bench --bin gemm_report`.

use baffle_tensor::{gemm, pool, rng as trng};
use std::hint::black_box;
use std::time::Instant;

/// (m, k, n): one Dense forward over a training batch, the full-set
/// forward of confusion evaluation, and the square trajectory point.
const SHAPES: &[(usize, usize, usize)] = &[(32, 32, 64), (2000, 32, 64), (256, 256, 256)];

/// Median wall-clock of `reps` single runs of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Picks a repetition count that keeps each variant near ~0.3 s total.
fn reps_for<F: FnMut()>(f: &mut F) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_nanos().max(1) as usize;
    (300_000_000 / once).clamp(5, 200)
}

fn main() {
    println!("{{");
    println!("  \"bench\": \"gemm\",");
    println!("  \"threads\": {},", pool::threads());
    println!("  \"unit\": \"ns_per_op_median\",");
    println!("  \"shapes\": [");
    for (idx, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = trng::uniform_matrix(&mut rand_rng(idx), m, k, -1.0, 1.0);
        let b = trng::uniform_matrix(&mut rand_rng(idx + 100), k, n, -1.0, 1.0);

        let mut naive = || {
            let mut out = vec![0.0f32; m * n];
            gemm::naive_nn(m, k, n, black_box(a.as_slice()), black_box(b.as_slice()), &mut out);
            black_box(out);
        };
        let mut blocked = || {
            let mut out = vec![0.0f32; m * n];
            gemm::blocked_nn(m, k, n, black_box(a.as_slice()), black_box(b.as_slice()), &mut out);
            black_box(out);
        };
        let mut simd = || {
            let mut out = vec![0.0f32; m * n];
            gemm::simd_nn(m, k, n, black_box(a.as_slice()), black_box(b.as_slice()), &mut out);
            black_box(out);
        };
        let mut auto = || {
            black_box(black_box(&a).matmul(black_box(&b)));
        };

        let serial_ns = median_ns(reps_for(&mut naive), naive);
        let blocked_ns = median_ns(reps_for(&mut blocked), blocked);
        let simd_ns = median_ns(reps_for(&mut simd), simd);
        let parallel_ns = median_ns(reps_for(&mut auto), auto);
        let comma = if idx + 1 < SHAPES.len() { "," } else { "" };
        println!(
            "    {{\"shape\": \"{m}x{k}x{n}\", \"serial_ns\": {serial_ns:.0}, \
             \"blocked_ns\": {blocked_ns:.0}, \"simd_ns\": {simd_ns:.0}, \
             \"parallel_ns\": {parallel_ns:.0}, \
             \"speedup_blocked\": {:.2}, \"speedup_simd\": {:.2}, \
             \"speedup_parallel\": {:.2}}}{comma}",
            serial_ns / blocked_ns,
            serial_ns / simd_ns,
            serial_ns / parallel_ns,
        );
    }
    println!("  ],");
    let d = gemm::dispatch_counts();
    println!(
        "  \"dispatch\": {{\"blocked\": {}, \"simd\": {}, \"banded\": {}, \
         \"batched\": {}, \"fma\": {}, \"simd_enabled\": {}, \"fast_math\": {}}}",
        d.blocked,
        d.simd,
        d.banded,
        d.batched,
        d.fma,
        gemm::simd_enabled(),
        gemm::fast_math_enabled()
    );
    println!("}}");
}

fn rand_rng(seed: usize) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(42 + seed as u64)
}
