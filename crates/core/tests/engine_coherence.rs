//! Cache-coherence property: the incremental [`ValidationEngine`] —
//! through BOTH its sequential cold path and the fused
//! `validate_batched_detailed` cold path — and the plain [`Validator`]
//! must return **bit-identical** results — vote, outlier factor φ,
//! threshold τ, diagnostics, and errors — across arbitrary sequences of
//! accepted rounds, rejected rounds and deferred-validation rollbacks.
//! All paths share the same decision code
//! (`Validator::validate_confusions`), so any divergence means the
//! cache served a wrong or stale confusion matrix, or the batched
//! fan-out evaluated a model on the wrong rows.

use baffle_core::{ValidationConfig, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_nn::Model;
use baffle_tensor::Matrix;
use proptest::prelude::*;

/// A scripted model with fixed predictions (no parameters), mirroring
/// the unit-test substrate of `validate.rs`.
#[derive(Clone, Debug)]
struct Scripted {
    preds: Vec<usize>,
    classes: usize,
}

impl Model for Scripted {
    fn num_params(&self) -> usize {
        0
    }
    fn params(&self) -> Vec<f32> {
        Vec::new()
    }
    fn set_params(&mut self, _: &[f32]) {}
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn predict_batch(&self, _: &Matrix) -> Vec<usize> {
        self.preds.clone()
    }
}

fn dataset(n: usize, c: usize) -> Dataset {
    let x = Matrix::zeros(n, 1);
    let y = (0..n).map(|i| i % c).collect();
    Dataset::new(x, y, c)
}

fn model_with_errors(data: &Dataset, wrong: &[usize]) -> Scripted {
    let c = data.num_classes();
    let preds = data
        .labels()
        .iter()
        .enumerate()
        .map(|(i, &y)| if wrong.contains(&i) { (y + 1) % c } else { y })
        .collect();
    Scripted { preds, classes: c }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ops: 0 = round accepted (validate, then push the candidate),
    /// 1 = round rejected (validate, window unchanged),
    /// 2 = deferred-validation rollback (pop + invalidate).
    /// The second byte seeds the candidate's error pattern.
    #[test]
    fn cached_and_uncached_validators_agree(
        ops in prop::collection::vec((0u8..3, 0u8..=255u8), 1..40),
    ) {
        let data = dataset(30, 3);
        let validator = Validator::new(ValidationConfig::new(6));
        let mut engine = ValidationEngine::new(validator);
        let mut fused = ValidationEngine::new(validator);

        let mut next_id: ModelId = 0;
        let mut window: Vec<(ModelId, Scripted)> = Vec::new();
        for t in 0..4 {
            window.push((next_id, model_with_errors(&data, &[t % 30, (t + 1) % 30])));
            next_id += 1;
        }
        let cap = validator.config().history_size();

        for (op, x) in ops {
            let x = x as usize;
            match op {
                0 | 1 => {
                    let candidate = model_with_errors(&data, &[x % 30, (x / 7) % 30]);
                    let ids: Vec<ModelId> = window.iter().map(|(id, _)| *id).collect();
                    let models: Vec<Scripted> =
                        window.iter().map(|(_, m)| m.clone()).collect();
                    let cached = engine.validate_detailed(&candidate, &ids, &models, &data);
                    let batched =
                        fused.validate_batched_detailed(&candidate, &ids, &models, &data);
                    let plain = validator.validate_detailed(&candidate, &models, &data);
                    prop_assert_eq!(&cached, &plain, "cached and plain paths diverged");
                    prop_assert_eq!(&batched, &plain, "batched and plain paths diverged");
                    if op == 0 {
                        window.push((next_id, candidate));
                        next_id += 1;
                        while window.len() > cap {
                            window.remove(0);
                        }
                    }
                }
                _ => {
                    // Rollback, keeping enough history for MIN_HISTORY.
                    if window.len() > 4 {
                        let (retired, _) = window.pop().unwrap();
                        engine.invalidate(retired);
                        fused.invalidate(retired);
                    }
                }
            }
        }
    }
}
