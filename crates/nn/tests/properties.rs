//! Property-based tests for the NN substrate.

use baffle_nn::conv::Conv1d;
use baffle_nn::{
    softmax, softmax_cross_entropy, Activation, Cnn, CnnSpec, ConfusionMatrix, Mlp, MlpSpec, Model,
    Sgd,
};
use baffle_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn logits_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-20.0_f32..20.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// Softmax outputs are a probability distribution per row.
    #[test]
    fn softmax_rows_are_distributions(logits in logits_strategy(4, 5)) {
        let p = softmax(&logits);
        for r in 0..p.rows() {
            let row = p.row(r);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to 0.
    #[test]
    fn cross_entropy_invariants(logits in logits_strategy(3, 4), labels in prop::collection::vec(0usize..4, 3)) {
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= -1e-6);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    /// params/set_params round-trips exactly for arbitrary architectures.
    #[test]
    fn param_roundtrip(hidden in prop::collection::vec(1usize..8, 0..3), seed in 0u64..1000) {
        let spec = MlpSpec::new(3, &hidden, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mlp::new(&spec, &mut rng);
        let mut b = Mlp::new(&spec, &mut rng);
        b.set_params(&a.params());
        prop_assert_eq!(a.params(), b.params());
    }

    /// Spec::num_params always matches the materialised model.
    #[test]
    fn spec_param_count(hidden in prop::collection::vec(1usize..10, 0..4), classes in 2usize..6, input in 1usize..9) {
        let spec = MlpSpec::new(input, &hidden, classes);
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&spec, &mut rng);
        prop_assert_eq!(m.params().len(), spec.num_params());
    }

    /// Confusion-matrix identities: total preserved, accuracy + error = 1,
    /// source and target errors each sum to the total error.
    #[test]
    fn confusion_identities(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..60)) {
        let mut cm = ConfusionMatrix::new(4);
        for &(t, p) in &pairs {
            cm.record(t, p);
        }
        prop_assert_eq!(cm.total(), pairs.len() as u64);
        prop_assert!((cm.accuracy() + cm.error() - 1.0).abs() < 1e-5);
        let s: f32 = cm.source_errors().iter().sum();
        let t: f32 = cm.target_errors().iter().sum();
        prop_assert!((s - cm.error()).abs() < 1e-5);
        prop_assert!((t - cm.error()).abs() < 1e-5);
    }

    /// Predictions are always valid class indices.
    #[test]
    fn predictions_in_range(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mlp::new(&MlpSpec::new(5, &[7], 3), &mut rng);
        let x = baffle_tensor::rng::normal_matrix(&mut rng, 10, 5, 1.0);
        let preds = m.predict_batch(&x);
        prop_assert_eq!(preds.len(), 10);
        prop_assert!(preds.iter().all(|&p| p < 3));
    }

    /// Wire codecs: f32 is lossless; q8 error bounded by its step size.
    #[test]
    fn wire_roundtrip(p in prop::collection::vec(-5.0_f32..5.0, 0..200)) {
        let exact = baffle_nn::wire::decode_f32(&baffle_nn::wire::encode_f32(&p)).unwrap();
        prop_assert_eq!(&exact, &p);
        let q = baffle_nn::wire::decode_q8(&baffle_nn::wire::encode_q8(&p).unwrap()).unwrap();
        prop_assert_eq!(q.len(), p.len());
        if !p.is_empty() {
            let lo = p.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let step = ((hi - lo) / 254.0).max(1e-12);
            for (a, b) in p.iter().zip(&q) {
                prop_assert!((a - b).abs() <= step + 1e-6);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// im2col convolution vs the retained naive reference: like the GEMM
// dispatch, the packed path must be BIT-identical (`to_bits` equality) —
// forward, input delta and both gradients — for any odd kernel, channel
// mix and batch size. Exact zeros are seeded into the signals because
// the padded im2col margins add `±0.0` products the naive loops never
// form (see `conv.rs` module docs for why those are bitwise harmless).
//
// The naive loops are the DEFAULT-tier oracle only: under the opt-in
// `BAFFLE_FAST_MATH=1` re-run the packed path routes to FMA-contracted
// kernels and is no longer bitwise against them, so those properties
// skip (the fast tier is pinned by the tensor-level error-bound
// properties instead). Multi-model fusion properties at the bottom
// compare dispatched-vs-dispatched and hold on every tier.
// ---------------------------------------------------------------------------

use baffle_tensor::gemm;

/// Whether the dispatchers currently route to the fast kernels, voiding
/// bitwise packed-vs-naive oracles (the CI `BAFFLE_FAST_MATH=1` re-run).
fn fast_dispatch() -> bool {
    gemm::fast_math_enabled() && gemm::simd_enabled()
}

/// Conv shape: channels 1–3, odd kernel 1/3/5/7 (also wider than the
/// signal), short signals straddling the pad width, batch 1/7/64.
fn conv_problem() -> impl Strategy<Value = (usize, usize, usize, usize, usize, Vec<f32>, Vec<f32>)>
{
    (
        1usize..=3,
        1usize..=3,
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
        1usize..=12,
        prop_oneof![Just(1usize), Just(7), Just(64)],
    )
        .prop_flat_map(|(ic, oc, k, len, batch)| {
            (
                Just(ic),
                Just(oc),
                Just(k),
                Just(len),
                Just(batch),
                signal_data(batch * ic * len),
                signal_data(batch * oc * len),
            )
        })
}

/// Signal data with ~10 % exact zeros (normalised to `+0.0`).
fn signal_data(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0_f32..3.0, len)
        .prop_map(|v| v.into_iter().map(|x| if x.abs() < 0.3 { 0.0 } else { x }).collect())
}

proptest! {
    /// Packed forward ≡ naive forward, bitwise, across activations.
    #[test]
    fn conv_forward_is_bit_identical_to_naive((ic, oc, k, len, batch, x, _g) in conv_problem()) {
        if fast_dispatch() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(k as u64 * 31 + len as u64);
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh] {
            let conv = Conv1d::new(ic, oc, k, len, act, &mut rng);
            let input = Matrix::from_vec(batch, ic * len, x.clone());
            let fast = conv.forward(&input);
            let slow = conv.naive_forward(&input);
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Packed train pass ≡ naive train pass, bitwise: forward_train,
    /// input delta, and both gradients (read back through apply_grads).
    #[test]
    fn conv_backward_is_bit_identical_to_naive((ic, oc, k, len, batch, x, g) in conv_problem()) {
        if fast_dispatch() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(k as u64 * 17 + batch as u64);
        let mut fast = Conv1d::new(ic, oc, k, len, Activation::Tanh, &mut rng);
        let mut slow = fast.clone();
        slow.force_naive(true);
        let input = Matrix::from_vec(batch, ic * len, x);
        let grad = Matrix::from_vec(batch, oc * len, g);
        let of = fast.forward_train(&input);
        let os = slow.forward_train(&input);
        for (a, b) in of.as_slice().iter().zip(os.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let df = fast.backward(&grad);
        let ds = slow.backward(&grad);
        for (a, b) in df.as_slice().iter().zip(ds.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut gf = Vec::new();
        fast.apply_grads(|_, gr| gf.push(gr.to_bits()));
        let mut gs = Vec::new();
        slow.apply_grads(|_, gr| gs.push(gr.to_bits()));
        prop_assert_eq!(gf, gs);
    }
}

// ---------------------------------------------------------------------------
// Batched multi-model evaluation vs the sequential path. Dispatched
// against dispatched, so the CNN property (vertical weight stacking +
// block-diagonal heads) holds bitwise on EVERY tier; the MLP property
// (horizontal concat, whose fast chains depend on column position)
// holds bitwise on the default tier only and skips under fast dispatch
// — there the engine-level error-bound test takes over.
// ---------------------------------------------------------------------------

proptest! {
    /// `Cnn::predict_multi` ≡ per-model sequential prediction, any tier.
    #[test]
    fn cnn_predict_multi_matches_sequential(
        nb in 1usize..=4,
        rows in 1usize..=8,
        seed in 0u64..1000,
        residual in any::<bool>(),
    ) {
        let mut spec = CnnSpec::new(8, &[3], 3, 3);
        if residual {
            spec = spec.with_residual();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<Cnn> = (0..nb).map(|_| Cnn::new(&spec, &mut rng)).collect();
        let refs: Vec<&Cnn> = models.iter().collect();
        let x = baffle_tensor::rng::normal_matrix(&mut rng, rows, 8, 1.0);
        let (r0, r1) = (rows / 3, rows);
        let fused = Cnn::predict_multi(&refs, &x, r0, r1);
        for (m, preds) in models.iter().zip(&fused) {
            prop_assert_eq!(preds, &m.predict_rows(&x, r0, r1));
        }
    }

    /// `Mlp::predict_multi` ≡ per-model sequential prediction on the
    /// default (bit-exact) tier.
    #[test]
    fn mlp_predict_multi_matches_sequential(
        nb in 1usize..=5,
        rows in 1usize..=10,
        hidden in prop::collection::vec(1usize..7, 0..3),
        seed in 0u64..1000,
    ) {
        if fast_dispatch() {
            return Ok(());
        }
        let spec = MlpSpec::new(4, &hidden, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<Mlp> = (0..nb).map(|_| Mlp::new(&spec, &mut rng)).collect();
        let refs: Vec<&Mlp> = models.iter().collect();
        let x = baffle_tensor::rng::normal_matrix(&mut rng, rows, 4, 1.0);
        let (r0, r1) = (rows / 4, rows);
        let fused = Mlp::predict_multi(&refs, &x, r0, r1);
        for (m, preds) in models.iter().zip(&fused) {
            prop_assert_eq!(preds, &m.predict_rows(&x, r0, r1));
        }
    }

    /// Batched confusion matrices ≡ per-model `from_model`, entry for
    /// entry. CNN models keep this tier-independent (see module note).
    #[test]
    fn from_models_matches_from_model(
        nb in 1usize..=3,
        rows in 1usize..=12,
        seed in 0u64..500,
    ) {
        let spec = CnnSpec::new(6, &[2], 3, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<Cnn> = (0..nb).map(|_| Cnn::new(&spec, &mut rng)).collect();
        let refs: Vec<&Cnn> = models.iter().collect();
        let x = baffle_tensor::rng::normal_matrix(&mut rng, rows, 6, 1.0);
        let y: Vec<usize> = (0..rows).map(|i| i % 3).collect();
        let batched = ConfusionMatrix::from_models(&refs, &x, &y);
        prop_assert_eq!(batched.len(), nb);
        for (m, cm) in models.iter().zip(&batched) {
            let solo = ConfusionMatrix::from_model(m, &x, &y);
            prop_assert_eq!(cm.num_classes(), solo.num_classes());
            for t in 0..3 {
                for p in 0..3 {
                    prop_assert_eq!(cm.count(t, p), solo.count(t, p));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace-reuse training vs the retained allocating reference. Both
// paths call the same dispatched kernels in the same order, and every
// reused buffer is fully overwritten (or zero-filled) before it is
// read, so the twins must agree BITWISE — losses and every parameter —
// on every tier, including the `BAFFLE_THREADS=1`, `BAFFLE_NO_SIMD=1`
// and `BAFFLE_FAST_MATH=1` CI re-runs (both twins dispatch identically
// whatever the tier).
// ---------------------------------------------------------------------------

proptest! {
    /// `Mlp::train_epoch` (workspace) ≡ `Mlp::train_epoch_ref`
    /// (allocating), bitwise, across architectures and batch sizes —
    /// 19 samples leave ragged final minibatches of 3 and 1 for batch
    /// sizes 4 and 9, so the reused scratch sees shape changes.
    #[test]
    fn mlp_workspace_training_is_bit_identical_to_reference(
        hidden in prop::collection::vec(1usize..10, 1..3),
        batch in prop_oneof![Just(1usize), Just(4), Just(9)],
        seed in 0u64..500,
    ) {
        let spec = MlpSpec::new(6, &hidden, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = Mlp::new(&spec, &mut rng);
        let mut reference = ws.clone();
        let n = 19;
        let x = baffle_tensor::rng::normal_matrix(&mut StdRng::seed_from_u64(seed ^ 0xABCD), n, 6, 1.0);
        let y: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let mut opt_w = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-3);
        let mut opt_r = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-3);
        let mut rng_w = StdRng::seed_from_u64(seed + 1);
        let mut rng_r = StdRng::seed_from_u64(seed + 1);
        for epoch in 0..2 {
            let lw = ws.train_epoch(&x, &y, batch, &mut opt_w, &mut rng_w);
            let lr = reference.train_epoch_ref(&x, &y, batch, &mut opt_r, &mut rng_r);
            prop_assert_eq!(lw.to_bits(), lr.to_bits(), "loss diverged at epoch {}: {} vs {}", epoch, lw, lr);
        }
        let pw = ws.params();
        let pr = reference.params();
        prop_assert_eq!(pw.len(), pr.len());
        for (i, (a, b)) in pw.iter().zip(&pr).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "param {} diverged: {} vs {}", i, a, b);
        }
    }
}

/// The CNN twins (workspace vs allocating reference), over both the
/// plain and residual architectures, batch sizes 1 and 8 (26 samples →
/// ragged final batch of 2), several epochs of real momentum SGD.
#[test]
fn cnn_workspace_training_is_bit_identical_to_reference() {
    for residual in [false, true] {
        let mut spec = CnnSpec::new(12, &[4, 4], 3, 3);
        if residual {
            spec = spec.with_residual();
        }
        for batch in [1usize, 8] {
            let mut rng = StdRng::seed_from_u64(21);
            let mut ws = Cnn::new(&spec, &mut rng);
            let mut reference = ws.clone();
            let n = 26;
            let x = baffle_tensor::rng::normal_matrix(&mut StdRng::seed_from_u64(3), n, 12, 1.0);
            let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
            let mut opt_w = Sgd::new(0.05).with_momentum(0.9);
            let mut opt_r = Sgd::new(0.05).with_momentum(0.9);
            let mut rng_w = StdRng::seed_from_u64(99);
            let mut rng_r = StdRng::seed_from_u64(99);
            for epoch in 0..3 {
                let lw = ws.train_epoch(&x, &y, batch, &mut opt_w, &mut rng_w);
                let lr = reference.train_epoch_ref(&x, &y, batch, &mut opt_r, &mut rng_r);
                assert_eq!(
                    lw.to_bits(),
                    lr.to_bits(),
                    "loss diverged (residual={residual}, batch={batch}, epoch={epoch}): {lw} vs {lr}"
                );
            }
            let pw = ws.params();
            let pr = reference.params();
            assert_eq!(pw.len(), pr.len());
            for (i, (a, b)) in pw.iter().zip(&pr).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "param {i} diverged (residual={residual}, batch={batch})"
                );
            }
        }
    }
}

/// Two seed-identical CNNs — one forced onto the naive conv loops — must
/// produce bit-identical losses and parameters over several epochs of
/// real SGD, including the residual architecture and a cache-straddling
/// final partial batch.
#[test]
fn cnn_training_is_bit_identical_with_and_without_im2col() {
    if fast_dispatch() {
        return;
    }
    for residual in [false, true] {
        let mut spec = CnnSpec::new(12, &[4, 4], 3, 3);
        if residual {
            spec = spec.with_residual();
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut fast = Cnn::new(&spec, &mut rng);
        let mut slow = fast.clone();
        slow.force_naive_conv(true);

        let n = 26; // batch 8 → final partial batch of 2
        let x = baffle_tensor::rng::normal_matrix(&mut StdRng::seed_from_u64(7), n, 12, 1.0);
        let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut opt_f = Sgd::new(0.05);
        let mut opt_s = Sgd::new(0.05);
        let mut rng_f = StdRng::seed_from_u64(99);
        let mut rng_s = StdRng::seed_from_u64(99);
        for epoch in 0..3 {
            let lf = fast.train_epoch(&x, &y, 8, &mut opt_f, &mut rng_f);
            let ls = slow.train_epoch(&x, &y, 8, &mut opt_s, &mut rng_s);
            assert_eq!(
                lf.to_bits(),
                ls.to_bits(),
                "loss diverged (residual={residual}, epoch={epoch}): {lf} vs {ls}"
            );
        }
        let pf = fast.params();
        let ps = slow.params();
        assert_eq!(pf.len(), ps.len());
        for (i, (a, b)) in pf.iter().zip(&ps).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "param {i} diverged (residual={residual})");
        }
    }
}
