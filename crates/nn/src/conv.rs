//! 1-D convolution with manual backpropagation.
//!
//! The synthetic substrate represents samples as feature vectors; the
//! convolutional model family treats them as 1-D signals (one input
//! channel), the closest analogue of the paper's ResNet18 this crate
//! supports. Shapes follow a channels-major layout: a batch row of a
//! `c`-channel, length-`L` signal is the concatenation
//! `[ch 0 | ch 1 | … | ch c−1]`, each of length `L`.
//!
//! # im2col
//!
//! All three convolution passes (forward, weight gradient, input delta)
//! run as single matrix products on [`baffle_tensor::gemm`] via a packed
//! im2col buffer: `col[(i·K + k)][bi·L + p] = x[bi][i·L + p + k − pad]`,
//! with zeros where the tap falls in the same-padding margin. The buffer
//! is cached on the layer and reused across batches of the same size
//! (only the valid spans are rewritten; the margin zeros persist). The
//! original scalar loops are retained as [`Conv1d::naive_forward`] /
//! `naive_backward` references, and every GEMM path is **bit-identical**
//! to them: per output element the products are accumulated in the same
//! strictly ascending order (`(i, k)` for the forward pass, `(bi, p)`
//! for the weight gradient, `(o, p)` for the input delta — the delta
//! pass convolves with the kernel-flipped weights so GEMM's ascending
//! k-order reproduces the scalar loop's order exactly), and the extra
//! zero-tap products the naive loops skip only ever add `±0.0` to an
//! accumulator that is never `-0.0` (accumulators start at `+0.0` or at
//! a bias that SGD from zero init can never drive to `-0.0`, and IEEE
//! addition cannot produce `-0.0` from such a start).

use crate::{Activation, Sgd};
use baffle_tensor::{gemm, rng as trng, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A cached im2col scratch buffer: the packed matrix plus the batch size
/// it was sized for. Reusing it across same-size batches skips the
/// allocation *and* the margin re-zeroing — packing only rewrites the
/// valid spans.
#[derive(Debug, Clone, Default)]
struct Im2col {
    batch: usize,
    data: Vec<f32>,
}

/// Packs `x` (`batch × channels·len`, channels-major) into `col` in the
/// im2col layout: `col[(c·kernel + k)][bi·len + p] = x[bi][c·len + p + k
/// − pad]`, leaving zeros where `p + k − pad` falls outside `[0, len)`.
/// The valid `p` span per `(c, k)` row is hoisted so the copy is one
/// `copy_from_slice` per batch row.
fn im2col_into(x: &Matrix, channels: usize, kernel: usize, len: usize, col: &mut [f32]) {
    let pad = kernel / 2;
    let batch = x.rows();
    let cl = batch * len;
    debug_assert_eq!(col.len(), channels * kernel * cl);
    for c in 0..channels {
        for k in 0..kernel {
            let p_lo = pad.saturating_sub(k);
            let p_hi = (len + pad).saturating_sub(k).min(len);
            if p_lo >= p_hi {
                continue;
            }
            let col_row = &mut col[(c * kernel + k) * cl..(c * kernel + k + 1) * cl];
            let src_lo = c * len + p_lo + k - pad;
            let width = p_hi - p_lo;
            for bi in 0..batch {
                let src = &x.row(bi)[src_lo..src_lo + width];
                col_row[bi * len + p_lo..bi * len + p_hi].copy_from_slice(src);
            }
        }
    }
}

/// Packs `x` into `cache`, reusing the buffer when the batch size (and
/// hence every margin position) is unchanged, and returns the packed
/// slice (`channels·kernel` rows of `batch·len` columns).
fn im2col_cached<'a>(
    cache: &'a mut Option<Im2col>,
    x: &Matrix,
    channels: usize,
    kernel: usize,
    len: usize,
) -> &'a [f32] {
    let batch = x.rows();
    let need = channels * kernel * batch * len;
    let fresh = !matches!(cache, Some(c) if c.batch == batch && c.data.len() == need);
    if fresh {
        *cache = Some(Im2col { batch, data: vec![0.0; need] });
    }
    let buf = cache.as_mut().expect("im2col cache just ensured");
    im2col_into(x, channels, kernel, len, &mut buf.data);
    &buf.data
}

/// A same-padded, stride-1 1-D convolution layer with a pointwise
/// activation: `y[o][p] = act(Σᵢ Σₖ w[o][i][k] · x[i][p+k−⌊K/2⌋] + b[o])`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    length: usize,
    /// Weights, `out_channels × (in_channels · kernel)` row-major.
    w: Matrix,
    b: Vec<f32>,
    activation: Activation,
    /// Input of the latest `forward_train` call. Persistent buffer gated
    /// by `has_cache`, like every training scratch below: reused across
    /// batches so the steady-state train cycle is allocation-free.
    #[serde(skip)]
    cached_input: Matrix,
    #[serde(skip)]
    cached_pre: Matrix,
    #[serde(skip)]
    has_cache: bool,
    #[serde(skip)]
    grad_w: Matrix,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    has_grads: bool,
    /// δ = grad_out ⊙ act′(pre) scratch for `backward`.
    #[serde(skip)]
    delta: Matrix,
    /// Transposed (`oc × batch·len`) GEMM output scratch for the forward
    /// pass.
    #[serde(skip)]
    out_t: Vec<f32>,
    /// Transposed delta scratch for the weight/bias-gradient pass.
    #[serde(skip)]
    dt: Vec<f32>,
    /// Kernel-flipped weight scratch for the input-delta pass.
    #[serde(skip)]
    wflip: Vec<f32>,
    /// Transposed input-delta scratch for the input-delta pass.
    #[serde(skip)]
    dxt: Vec<f32>,
    /// im2col scratch for the forward / weight-gradient passes.
    #[serde(skip)]
    col_cache: Option<Im2col>,
    /// im2col scratch for the input-delta pass (packs `delta`, so it is
    /// sized by `out_channels`, not `in_channels`).
    #[serde(skip)]
    dcol_cache: Option<Im2col>,
    /// Route every pass through the retained scalar loops instead of
    /// GEMM (test support; see [`Conv1d::force_naive`]).
    #[serde(skip)]
    force_naive: bool,
}

impl Conv1d {
    /// Creates a conv layer for signals of length `length`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel is even (same
    /// padding needs an odd kernel).
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        length: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "Conv1d: channels must be positive");
        assert!(length > 0, "Conv1d: length must be positive");
        assert!(kernel % 2 == 1, "Conv1d: kernel must be odd for same padding, got {kernel}");
        let fan_in = in_channels * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            length,
            w: trng::he_init_transposed(rng, fan_in, out_channels),
            b: vec![0.0; out_channels],
            activation,
            cached_input: Matrix::default(),
            cached_pre: Matrix::default(),
            has_cache: false,
            grad_w: Matrix::default(),
            grad_b: Vec::new(),
            has_grads: false,
            delta: Matrix::default(),
            out_t: Vec::new(),
            dt: Vec::new(),
            wflip: Vec::new(),
            dxt: Vec::new(),
            col_cache: None,
            dcol_cache: None,
            force_naive: false,
        }
    }

    /// Input width this layer expects (`in_channels · length`).
    pub fn in_dim(&self) -> usize {
        self.in_channels * self.length
    }

    /// Output width (`out_channels · length`).
    pub fn out_dim(&self) -> usize {
        self.out_channels * self.length
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Signal length.
    pub fn length(&self) -> usize {
        self.length
    }

    #[inline]
    fn weight(&self, o: usize, i: usize, k: usize) -> f32 {
        self.w[(o, i * self.kernel + k)]
    }

    fn check_input(&self, x: &Matrix) {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "Conv1d: input width {} != expected {}",
            x.cols(),
            self.in_dim()
        );
    }

    /// The retained scalar reference convolution, with the valid tap
    /// range `k ∈ [pad−p, len+pad−p)` hoisted out of the inner loop so
    /// the margin test is not re-evaluated per element.
    fn naive_convolve(&self, x: &Matrix) -> Matrix {
        self.check_input(x);
        let pad = self.kernel / 2;
        let len = self.length;
        let mut out = Matrix::zeros(x.rows(), self.out_dim());
        for bi in 0..x.rows() {
            let row = x.row(bi);
            let out_row = out.row_mut(bi);
            for o in 0..self.out_channels {
                for p in 0..len {
                    let k_lo = pad.saturating_sub(p);
                    let k_hi = self.kernel.min(len + pad - p);
                    let mut acc = self.b[o];
                    for i in 0..self.in_channels {
                        let base = i * len + p - pad;
                        for k in k_lo..k_hi {
                            acc += self.weight(o, i, k) * row[base + k];
                        }
                    }
                    out_row[o * len + p] = acc;
                }
            }
        }
        out
    }

    /// The GEMM convolution over an already-packed im2col buffer: one
    /// `oc × (ic·K) × (batch·len)` product into a bias-prefilled
    /// transposed output, then an unpack back to batch-major rows.
    fn convolve_packed(&self, batch: usize, col: &[f32]) -> Matrix {
        let len = self.length;
        let cl = batch * len;
        let ick = self.in_channels * self.kernel;
        let mut out_t = vec![0.0f32; self.out_channels * cl];
        for (chunk, &bo) in out_t.chunks_mut(cl.max(1)).zip(&self.b) {
            chunk.fill(bo);
        }
        gemm::nn(self.out_channels, ick, cl, self.w.as_slice(), col, &mut out_t);
        let mut out = Matrix::zeros(batch, self.out_dim());
        for bi in 0..batch {
            let row = out.row_mut(bi);
            for o in 0..self.out_channels {
                row[o * len..(o + 1) * len]
                    .copy_from_slice(&out_t[o * cl + bi * len..o * cl + (bi + 1) * len]);
            }
        }
        out
    }

    fn convolve(&self, x: &Matrix) -> Matrix {
        self.check_input(x);
        if self.force_naive {
            return self.naive_convolve(x);
        }
        let mut col = vec![0.0f32; self.in_channels * self.kernel * x.rows() * self.length];
        im2col_into(x, self.in_channels, self.kernel, self.length, &mut col);
        self.convolve_packed(x.rows(), &col)
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let act = self.activation;
        self.convolve(x).map(|v| act.apply(v))
    }

    /// Unpacks a transposed `oc × (batch·len)` GEMM output block back to
    /// batch-major rows, applying the activation.
    fn unpack_transposed(&self, batch: usize, out_t: &[f32]) -> Matrix {
        let len = self.length;
        let cl = batch * len;
        let mut out = Matrix::zeros(batch, self.out_dim());
        for bi in 0..batch {
            let row = out.row_mut(bi);
            for o in 0..self.out_channels {
                row[o * len..(o + 1) * len]
                    .copy_from_slice(&out_t[o * cl + bi * len..o * cl + (bi + 1) * len]);
            }
        }
        let act = self.activation;
        out.map_assign(|v| act.apply(v));
        out
    }

    fn check_same_arch(convs: &[&Conv1d]) -> (usize, usize, usize, usize) {
        assert!(!convs.is_empty(), "Conv1d::forward_multi*: no layers");
        let arch = (convs[0].in_channels, convs[0].out_channels, convs[0].kernel, convs[0].length);
        for c in convs {
            assert_eq!(
                (c.in_channels, c.out_channels, c.kernel, c.length),
                arch,
                "Conv1d::forward_multi*: mismatched layer architectures"
            );
        }
        arch
    }

    /// Forward pass of several identically-shaped conv layers over one
    /// *shared* input: the input is packed once (a single im2col) and
    /// the weight matrices are stacked row-wise into an
    /// `(nb·oc) × (ic·K)` block for one fused GEMM.
    ///
    /// Because every output row of the product depends only on its own
    /// weight row and the shared im2col buffer, each per-layer row block
    /// is bit-identical to [`Conv1d::forward`] on the same input under
    /// *all* kernel tiers, including `BAFFLE_FAST_MATH`.
    ///
    /// # Panics
    ///
    /// Panics if `convs` is empty, architectures differ, or the input
    /// width mismatches.
    pub fn forward_multi_shared(convs: &[&Conv1d], x: &Matrix) -> Vec<Matrix> {
        let (ic, oc, kernel, len) = Self::check_same_arch(convs);
        convs[0].check_input(x);
        let nb = convs.len();
        let batch = x.rows();
        let cl = batch * len;
        let ick = ic * kernel;
        let mut col = vec![0.0f32; ick * cl];
        im2col_into(x, ic, kernel, len, &mut col);
        let mut w = Vec::with_capacity(nb * oc * ick);
        let mut out_t = vec![0.0f32; nb * oc * cl];
        for (li, c) in convs.iter().enumerate() {
            w.extend_from_slice(c.w.as_slice());
            let block = &mut out_t[li * oc * cl..(li + 1) * oc * cl];
            for (chunk, &bo) in block.chunks_mut(cl.max(1)).zip(&c.b) {
                chunk.fill(bo);
            }
        }
        gemm::concat_nn(nb * oc, ick, cl, &w, &col, &mut out_t);
        convs
            .iter()
            .enumerate()
            .map(|(li, c)| c.unpack_transposed(batch, &out_t[li * oc * cl..(li + 1) * oc * cl]))
            .collect()
    }

    /// Forward pass of several identically-shaped conv layers over
    /// *per-layer* inputs: each input is packed into its slot of one
    /// contiguous im2col buffer and all products run as a single
    /// block-diagonal [`gemm::batched_nn`] call.
    ///
    /// Each block runs the same-shape kernel a standalone call would, so
    /// every per-layer output is bit-identical to [`Conv1d::forward`]
    /// under *all* kernel tiers, including `BAFFLE_FAST_MATH`.
    ///
    /// # Panics
    ///
    /// Panics if lengths or shapes mismatch.
    pub fn forward_multi(convs: &[&Conv1d], xs: &[&Matrix]) -> Vec<Matrix> {
        let (ic, oc, kernel, len) = Self::check_same_arch(convs);
        assert_eq!(convs.len(), xs.len(), "Conv1d::forward_multi: layers vs inputs");
        let nb = convs.len();
        let batch = xs[0].rows();
        let cl = batch * len;
        let ick = ic * kernel;
        let mut col = vec![0.0f32; nb * ick * cl];
        let mut w = Vec::with_capacity(nb * oc * ick);
        let mut out_t = vec![0.0f32; nb * oc * cl];
        for (li, (c, x)) in convs.iter().zip(xs).enumerate() {
            assert_eq!(x.rows(), batch, "Conv1d::forward_multi: mismatched batch sizes");
            c.check_input(x);
            im2col_into(x, ic, kernel, len, &mut col[li * ick * cl..(li + 1) * ick * cl]);
            w.extend_from_slice(c.w.as_slice());
            let block = &mut out_t[li * oc * cl..(li + 1) * oc * cl];
            for (chunk, &bo) in block.chunks_mut(cl.max(1)).zip(&c.b) {
                chunk.fill(bo);
            }
        }
        gemm::batched_nn(nb, oc, ick, cl, &w, &col, &mut out_t);
        convs
            .iter()
            .enumerate()
            .map(|(li, c)| c.unpack_transposed(batch, &out_t[li * oc * cl..(li + 1) * oc * cl]))
            .collect()
    }

    /// Forward pass through the retained scalar loops, regardless of
    /// [`Conv1d::force_naive`]. The bit-exactness reference for the
    /// GEMM path (see the module docs).
    pub fn naive_forward(&self, x: &Matrix) -> Matrix {
        let act = self.activation;
        self.naive_convolve(x).map(|v| act.apply(v))
    }

    /// Routes every subsequent pass through the retained scalar loops
    /// (`true`) or the im2col GEMM path (`false`, the default). The two
    /// are bit-identical; this exists so tests and benchmarks can pin a
    /// side.
    pub fn force_naive(&mut self, on: bool) {
        self.force_naive = on;
    }

    /// Drops every cached activation, gradient and im2col scratch
    /// buffer (e.g. before serialising or measuring memory). Frees the
    /// persistent training buffers.
    pub fn clear_cache(&mut self) {
        self.cached_input = Matrix::default();
        self.cached_pre = Matrix::default();
        self.grad_w = Matrix::default();
        self.grad_b = Vec::new();
        self.delta = Matrix::default();
        self.out_t = Vec::new();
        self.dt = Vec::new();
        self.wflip = Vec::new();
        self.dxt = Vec::new();
        self.col_cache = None;
        self.dcol_cache = None;
        self.has_cache = false;
        self.has_grads = false;
    }

    /// Training forward pass (caches state for [`Conv1d::backward`]).
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_train_into(x, &mut out);
        out
    }

    /// [`Conv1d::forward_train`] writing the activation into a
    /// caller-owned buffer. On the GEMM path every intermediate (im2col
    /// pack, transposed product, pre-activation, input copy) lives in a
    /// persistent layer buffer, so the steady-state call performs no
    /// allocation. The naive path is a test/reference path and still
    /// allocates its scalar-loop intermediate.
    pub fn forward_train_into(&mut self, x: &Matrix, out: &mut Matrix) {
        self.check_input(x);
        if self.force_naive {
            self.cached_pre = self.naive_convolve(x);
        } else {
            let (oc, ick) = (self.out_channels, self.in_channels * self.kernel);
            let cl = x.rows() * self.length;
            im2col_cached(&mut self.col_cache, x, self.in_channels, self.kernel, self.length);
            self.out_t.resize(oc * cl, 0.0);
            {
                let Self { w, b, out_t, col_cache, .. } = self;
                // Bias-prefill covers the whole transposed buffer, so the
                // resize's stale prefix never reaches the product.
                for (chunk, &bo) in out_t.chunks_mut(cl.max(1)).zip(b.iter()) {
                    chunk.fill(bo);
                }
                let col = &col_cache.as_ref().expect("col cache just packed").data;
                gemm::nn(oc, ick, cl, w.as_slice(), col, out_t);
            }
            // Unpack `oc × (batch·len)` back to batch-major rows; every
            // element of `cached_pre` is overwritten.
            let len = self.length;
            self.cached_pre.resize_for_overwrite(x.rows(), self.out_dim());
            let Self { cached_pre, out_t, .. } = self;
            for bi in 0..x.rows() {
                let row = cached_pre.row_mut(bi);
                for o in 0..oc {
                    row[o * len..(o + 1) * len]
                        .copy_from_slice(&out_t[o * cl + bi * len..o * cl + (bi + 1) * len]);
                }
            }
        }
        self.cached_input.copy_from(x);
        let act = self.activation;
        self.cached_pre.map_into(|v| act.apply(v), out);
        self.has_cache = true;
    }

    /// Backward pass: returns ∂L/∂x and stores parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_train` or with a wrong-shaped
    /// gradient.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(grad_out, &mut dx);
        dx
    }

    /// [`Conv1d::backward`] writing ∂L/∂x into a caller-owned buffer;
    /// the δ, transposed-delta, flipped-weight and gradient buffers are
    /// all persistent, so the steady-state GEMM-path call performs no
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_train` or with a wrong-shaped
    /// gradient.
    pub fn backward_into(&mut self, grad_out: &Matrix, dx: &mut Matrix) {
        assert!(self.has_cache, "Conv1d::backward before forward_train");
        assert_eq!(
            grad_out.shape(),
            self.cached_pre.shape(),
            "Conv1d::backward: gradient shape mismatch"
        );
        let act = self.activation;
        // Take δ out of `self` so the backward kernels can borrow the
        // rest of the layer mutably; restored below.
        let mut delta = std::mem::take(&mut self.delta);
        self.cached_pre.map_into(|v| act.derivative(v), &mut delta);
        delta.hadamard_assign(grad_out);
        if self.force_naive {
            self.naive_backward_into(&delta, dx);
        } else {
            self.gemm_backward_into(&delta, dx);
        }
        self.delta = delta;
        self.has_grads = true;
    }

    /// The retained scalar backward loops (valid tap range hoisted like
    /// [`Conv1d::naive_convolve`]); the reference for [`gemm_backward_into`].
    ///
    /// [`gemm_backward_into`]: Conv1d::gemm_backward_into
    fn naive_backward_into(&mut self, delta: &Matrix, dx: &mut Matrix) {
        let (oc, ic, kernel, len) = (self.out_channels, self.in_channels, self.kernel, self.length);
        let pad = kernel / 2;
        let batch = self.cached_input.rows();
        // The scalar loops accumulate sparsely (zero deltas are skipped),
        // so every target must start from explicit zeros.
        self.grad_w.resize_for_overwrite(oc, ic * kernel);
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.clear();
        self.grad_b.resize(oc, 0.0);
        dx.resize_for_overwrite(batch, ic * len);
        dx.as_mut_slice().fill(0.0);
        let Self { w, cached_input, grad_w, grad_b, .. } = self;

        for bi in 0..batch {
            let x_row = cached_input.row(bi);
            let d_row = delta.row(bi);
            let dx_row = dx.row_mut(bi);
            for o in 0..oc {
                for p in 0..len {
                    let d = d_row[o * len + p];
                    if d == 0.0 {
                        continue;
                    }
                    grad_b[o] += d;
                    let k_lo = pad.saturating_sub(p);
                    let k_hi = kernel.min(len + pad - p);
                    for i in 0..ic {
                        let base = i * len + p - pad;
                        for k in k_lo..k_hi {
                            grad_w[(o, i * kernel + k)] += d * x_row[base + k];
                            dx_row[base + k] += d * w[(o, i * kernel + k)];
                        }
                    }
                }
            }
        }
    }

    /// GEMM backward: the weight gradient is one `nt` product of the
    /// transposed delta against the forward im2col buffer (`k`-dimension
    /// `(bi, p)` ascending, exactly the scalar loop's order), the bias
    /// gradient a row sum of the transposed delta, and the input delta a
    /// convolution of `delta` with the kernel-flipped weights — im2col
    /// over `delta`, then one `nn` product whose ascending `(o, kf)`
    /// order reproduces the scalar loop's `(o, p)` order per element.
    fn gemm_backward_into(&mut self, delta: &Matrix, dx: &mut Matrix) {
        let (oc, ic, kernel, len) = (self.out_channels, self.in_channels, self.kernel, self.length);
        let batch = self.cached_input.rows();
        let cl = batch * len;
        let ick = ic * kernel;

        // Transpose delta to `oc × (batch·len)` once; both the weight
        // and bias gradients consume it row-major. Fully overwritten.
        self.dt.resize(oc * cl, 0.0);
        for bi in 0..batch {
            let d_row = delta.row(bi);
            for o in 0..oc {
                self.dt[o * cl + bi * len..o * cl + (bi + 1) * len]
                    .copy_from_slice(&d_row[o * len..(o + 1) * len]);
            }
        }
        self.grad_b.clear();
        if cl == 0 {
            self.grad_b.resize(oc, 0.0);
        } else {
            let Self { grad_b, dt, .. } = self;
            grad_b.extend(dt.chunks(cl).map(|r| r.iter().sum::<f32>()));
        }

        // Repack the cached input (reusing the forward buffer when the
        // batch size matches) and take the weight gradient in one shot.
        // GEMM accumulates, so the gradient buffer is re-zeroed first.
        {
            let Self { cached_input, col_cache, .. } = self;
            im2col_cached(col_cache, cached_input, ic, kernel, len);
        }
        self.grad_w.resize_for_overwrite(oc, ick);
        self.grad_w.as_mut_slice().fill(0.0);
        {
            let Self { grad_w, dt, col_cache, .. } = self;
            let col = &col_cache.as_ref().expect("col cache just packed").data;
            gemm::nt(oc, cl, ick, dt, col, grad_w.as_mut_slice());
        }

        // Input delta: convolve `delta` with the kernel-flipped weights.
        // Every flipped entry is rewritten, so no zeroing is needed.
        self.wflip.resize(ic * oc * kernel, 0.0);
        for i in 0..ic {
            for o in 0..oc {
                for kf in 0..kernel {
                    self.wflip[i * (oc * kernel) + o * kernel + kf] =
                        self.w[(o, i * kernel + (kernel - 1 - kf))];
                }
            }
        }
        im2col_cached(&mut self.dcol_cache, delta, oc, kernel, len);
        self.dxt.resize(ic * cl, 0.0);
        self.dxt.fill(0.0); // GEMM accumulates
        {
            let Self { dxt, wflip, dcol_cache, .. } = self;
            let dcol = &dcol_cache.as_ref().expect("dcol cache just packed").data;
            gemm::nn(ic, oc * kernel, cl, wflip, dcol, dxt);
        }
        dx.resize_for_overwrite(batch, ic * len);
        for bi in 0..batch {
            let dx_row = dx.row_mut(bi);
            for i in 0..ic {
                dx_row[i * len..(i + 1) * len]
                    .copy_from_slice(&self.dxt[i * cl + bi * len..i * cl + (bi + 1) * len]);
            }
        }
    }

    /// Applies the stored gradients through the caller's update rule.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv1d::backward`].
    pub fn apply_grads(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        assert!(self.has_grads, "Conv1d::apply_grads before backward");
        self.has_grads = false;
        let Self { w, b, grad_w, grad_b, .. } = self;
        for (p, &g) in w.as_mut_slice().iter_mut().zip(grad_w.as_slice()) {
            f(p, g);
        }
        for (p, &g) in b.iter_mut().zip(grad_b.iter()) {
            f(p, g);
        }
    }

    /// Applies the stored gradients through [`Sgd::update_chunk`] — the
    /// slice-wise, allocation-free form of
    /// `apply_grads(|p, g| opt.update(p, g))`, bit-identical to it (same
    /// weights-then-bias order against the same velocity slots).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv1d::backward`].
    pub fn apply_grads_chunked(&mut self, opt: &mut Sgd) {
        assert!(self.has_grads, "Conv1d::apply_grads before backward");
        self.has_grads = false;
        opt.update_chunk(self.w.as_mut_slice(), self.grad_w.as_slice());
        opt.update_chunk(&mut self.b, &self.grad_b);
    }

    /// Appends parameters (weights row-major, then bias).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Reads parameters from the front of `p`, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is too short.
    pub fn read_params<'a>(&mut self, p: &'a [f32]) -> &'a [f32] {
        let nw = self.w.len();
        let nb = self.b.len();
        assert!(p.len() >= nw + nb, "Conv1d::read_params: need {} values", nw + nb);
        self.w.as_mut_slice().copy_from_slice(&p[..nw]);
        self.b.copy_from_slice(&p[nw..nw + nb]);
        &p[nw + nb..]
    }
}

/// Global average pooling over the signal axis: collapses
/// `channels × length` to `channels` by averaging each channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalAvgPool1d {
    channels: usize,
    length: usize,
}

impl GlobalAvgPool1d {
    /// Creates the pool for `channels` channels of `length` samples.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(channels: usize, length: usize) -> Self {
        assert!(channels > 0 && length > 0, "GlobalAvgPool1d: dimensions must be positive");
        Self { channels, length }
    }

    /// Forward pass: `batch × (channels·length)` → `batch × channels`.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(x, &mut out);
        out
    }

    /// [`GlobalAvgPool1d::forward`] into a caller-owned buffer (every
    /// element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.channels * self.length, "GlobalAvgPool1d: width mismatch");
        out.resize_for_overwrite(x.rows(), self.channels);
        for bi in 0..x.rows() {
            let row = x.row(bi);
            let out_row = out.row_mut(bi);
            for (c, o) in out_row.iter_mut().enumerate() {
                let seg = &row[c * self.length..(c + 1) * self.length];
                *o = seg.iter().sum::<f32>() / self.length as f32;
            }
        }
    }

    /// Backward pass: spreads each channel gradient uniformly over the
    /// signal positions.
    pub fn backward(&self, grad_out: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(grad_out, &mut dx);
        dx
    }

    /// [`GlobalAvgPool1d::backward`] into a caller-owned buffer (every
    /// element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on a gradient width mismatch.
    pub fn backward_into(&self, grad_out: &Matrix, dx: &mut Matrix) {
        assert_eq!(grad_out.cols(), self.channels, "GlobalAvgPool1d: gradient width mismatch");
        dx.resize_for_overwrite(grad_out.rows(), self.channels * self.length);
        let inv = 1.0 / self.length as f32;
        for bi in 0..grad_out.rows() {
            let g = grad_out.row(bi);
            let dx_row = dx.row_mut(bi);
            for c in 0..self.channels {
                for p in 0..self.length {
                    dx_row[c * self.length + p] = g[c] * inv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv(ci: usize, co: usize, k: usize, len: usize, act: Activation) -> Conv1d {
        let mut rng = StdRng::seed_from_u64(5);
        Conv1d::new(ci, co, k, len, act, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let c = conv(2, 3, 3, 7, Activation::Identity);
        let x = Matrix::zeros(4, 14);
        assert_eq!(c.forward(&x).shape(), (4, 21));
        assert_eq!(c.num_params(), 3 * 2 * 3 + 3);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1→1 conv, kernel 3, weights [0,1,0], bias 0 = identity.
        let mut c = conv(1, 1, 3, 5, Activation::Identity);
        c.read_params(&[0.0, 1.0, 0.0, 0.0]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0]]);
        assert_eq!(c.forward(&x), x);
    }

    #[test]
    fn shift_kernel_pads_with_zero() {
        // Kernel [1,0,0] shifts the signal right by one (same padding).
        let mut c = conv(1, 1, 3, 4, Activation::Identity);
        c.read_params(&[1.0, 0.0, 0.0, 0.0]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let y = c.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 1.0, 2.0, 3.0]]));
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut c = conv(2, 2, 3, 5, Activation::Tanh);
        let x = Matrix::from_fn(3, 10, |r, j| ((r * 10 + j) as f32 * 0.23).sin() * 0.5);
        let loss = |c: &Conv1d, x: &Matrix| c.forward(x).as_slice().iter().sum::<f32>();

        c.forward_train(&x);
        let ones = Matrix::filled(3, 10, 1.0);
        let dx = c.backward(&ones);
        let mut analytic = Vec::new();
        analytic.extend_from_slice(c.grad_w.as_slice());
        analytic.extend_from_slice(&c.grad_b);

        let mut params = Vec::new();
        c.write_params(&mut params);
        let eps = 1e-3;
        for i in 0..params.len() {
            let mut plus = params.clone();
            plus[i] += eps;
            let mut minus = params.clone();
            minus[i] -= eps;
            let mut cp = c.clone();
            cp.read_params(&plus);
            let mut cm = c.clone();
            cm.read_params(&minus);
            let fd = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 3e-2,
                "param {i}: fd {fd} vs analytic {}",
                analytic[i]
            );
        }
        // Input gradient, one entry.
        let mut xp = x.clone();
        xp[(1, 3)] += eps;
        let mut xm = x.clone();
        xm[(1, 3)] -= eps;
        let fd = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
        assert!((fd - dx[(1, 3)]).abs() < 3e-2, "dx fd {fd} vs {}", dx[(1, 3)]);
    }

    #[test]
    fn param_roundtrip() {
        let c1 = conv(2, 3, 3, 4, Activation::Relu);
        let mut c2 = conv(2, 3, 3, 4, Activation::Relu);
        let mut p = Vec::new();
        c1.write_params(&mut p);
        assert_eq!(p.len(), c1.num_params());
        let rest = c2.read_params(&p);
        assert!(rest.is_empty());
        let x = Matrix::from_fn(2, 8, |r, j| (r + j) as f32 * 0.1);
        assert_eq!(c1.forward(&x), c2.forward(&x));
    }

    #[test]
    fn pool_averages_channels() {
        let pool = GlobalAvgPool1d::new(2, 3);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 10.0, 20.0, 30.0]]);
        let y = pool.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[2.0, 20.0]]));
    }

    #[test]
    fn pool_gradient_matches_finite_difference() {
        let pool = GlobalAvgPool1d::new(2, 4);
        let x = Matrix::from_fn(2, 8, |r, j| (r * 8 + j) as f32 * 0.3);
        // Loss = sum of pooled outputs; gradient w.r.t. each input is 1/len.
        let dx = pool.backward(&Matrix::filled(2, 2, 1.0));
        assert!(dx.as_slice().iter().all(|&g| (g - 0.25).abs() < 1e-6));
        let _ = x;
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn even_kernel_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Conv1d::new(1, 1, 2, 4, Activation::Relu, &mut rng);
    }

    #[test]
    fn forward_multi_shared_matches_forward_exactly() {
        // Row-stacked weights: every per-layer row block runs the same
        // per-row computation a standalone call would, so this holds
        // bitwise on every kernel tier, including BAFFLE_FAST_MATH.
        let mut rng = StdRng::seed_from_u64(9);
        let convs: Vec<Conv1d> =
            (0..3).map(|_| Conv1d::new(2, 3, 3, 6, Activation::Relu, &mut rng)).collect();
        let x = Matrix::from_fn(4, 12, |r, j| ((r * 12 + j) as f32 * 0.29).sin());
        let refs: Vec<&Conv1d> = convs.iter().collect();
        let outs = Conv1d::forward_multi_shared(&refs, &x);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out, &convs[i].forward(&x), "conv {i}");
        }
    }

    #[test]
    fn forward_multi_matches_forward_exactly() {
        let mut rng = StdRng::seed_from_u64(10);
        let convs: Vec<Conv1d> =
            (0..4).map(|_| Conv1d::new(3, 3, 5, 7, Activation::Tanh, &mut rng)).collect();
        let xs: Vec<Matrix> = (0..4)
            .map(|i| Matrix::from_fn(3, 21, |r, j| ((i * 63 + r * 21 + j) as f32 * 0.11).cos()))
            .collect();
        let crefs: Vec<&Conv1d> = convs.iter().collect();
        let xrefs: Vec<&Matrix> = xs.iter().collect();
        let outs = Conv1d::forward_multi(&crefs, &xrefs);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out, &convs[i].forward(&xs[i]), "conv {i}");
        }
    }

    /// The persistent caches must make repeated same-shape GEMM-path
    /// train cycles allocation-free without changing any numeric result.
    #[test]
    fn train_buffers_are_reused_across_batches() {
        let mut c = conv(2, 3, 3, 6, Activation::Tanh);
        let x = Matrix::from_fn(4, 12, |r, j| ((r * 12 + j) as f32 * 0.21).sin());
        let g = Matrix::from_fn(4, 18, |r, j| ((r * 18 + j) as f32 * 0.07).cos());
        let (mut out, mut dx) = (Matrix::default(), Matrix::default());
        c.forward_train_into(&x, &mut out);
        c.backward_into(&g, &mut dx);
        let first = (out.clone(), dx.clone(), c.grad_w.clone(), c.grad_b.clone());
        let ptrs = [
            c.cached_pre.as_slice().as_ptr(),
            c.grad_w.as_slice().as_ptr(),
            c.delta.as_slice().as_ptr(),
            c.out_t.as_ptr(),
            c.dxt.as_ptr(),
        ];
        c.has_grads = false; // skip the update so weights stay put
        c.forward_train_into(&x, &mut out);
        c.backward_into(&g, &mut dx);
        assert_eq!(
            (out.clone(), dx.clone(), c.grad_w.clone(), c.grad_b.clone()),
            first,
            "reuse changed the numbers"
        );
        let again = [
            c.cached_pre.as_slice().as_ptr(),
            c.grad_w.as_slice().as_ptr(),
            c.delta.as_slice().as_ptr(),
            c.out_t.as_ptr(),
            c.dxt.as_ptr(),
        ];
        assert_eq!(ptrs, again, "steady-state conv train cycle must not reallocate");
    }

    #[test]
    #[should_panic(expected = "mismatched layer architectures")]
    fn forward_multi_rejects_mismatched_architectures() {
        let a = conv(1, 2, 3, 5, Activation::Relu);
        let b = conv(1, 2, 5, 5, Activation::Relu);
        let x = Matrix::zeros(1, 5);
        let _ = Conv1d::forward_multi_shared(&[&a, &b], &x);
    }
}
