//! Cache-blocked GEMM kernels with pool-parallel dispatch.
//!
//! All three matmul orientations used by backpropagation live here:
//!
//! - [`nn`]  — `C += A·B` (forward pass),
//! - [`tn`]  — `C += Aᵀ·B` (weight gradients),
//! - [`nt`]  — `C += A·Bᵀ` (input deltas),
//!
//! each as a *dispatcher* that picks, by problem size, between a serial
//! cache-blocked kernel and a row-banded parallel run on the shared
//! worker pool ([`crate::pool`]). The naive reference kernels
//! ([`naive_nn`], [`naive_tn`], [`naive_nt`]) are retained as the
//! ground truth for property tests and benchmarks.
//!
//! # Bit-exactness
//!
//! Every path — naive, blocked, banded-parallel at any thread count —
//! produces **bit-identical** output: for each output element the
//! products are accumulated in strictly increasing `k` order, starting
//! from the element's prior value. Blocking only reorders work *between*
//! elements (which f32 addition cannot observe), never within one, and
//! row bands touch disjoint outputs. This is what lets seeded
//! experiments reproduce exactly regardless of `BAFFLE_THREADS`.
//!
//! # Tiling
//!
//! Tiles are `MB×KB = 32×32` panels of `A` against `KB×NB = 32×256`
//! panels of `B`: one `B` panel (32 KiB) plus one `A` panel (4 KiB) sit
//! comfortably in L1/L2 while the inner loop streams `NB`-wide rows the
//! compiler autovectorizes. The inner micro-kernel unrolls `k` by 4,
//! keeping each output element in a register across four updates —
//! sequential adds, so the per-element order is unchanged.

use crate::pool;

/// Row-tile height over `C`/`A` (fits an f32 `MB×KB` A-panel in 4 KiB).
const MB: usize = 32;
/// Depth-tile size over `k`.
const KB: usize = 32;
/// Column-tile width over `C`/`B` (a `KB×NB` B-panel is 32 KiB).
const NB: usize = 256;

/// Minimum `m·k·n` before a product is row-banded across the pool;
/// below this, thread hand-off costs more than the multiply.
const PAR_MIN_WORK: usize = 1 << 20;

/// Minimum `m·k·n` before [`nt`] packs `Bᵀ` to reach the blocked
/// kernel; tiny products just run the direct dot-product loop.
const NT_PACK_MIN_WORK: usize = 1 << 16;

#[inline]
fn work(m: usize, k: usize, n: usize) -> usize {
    m.saturating_mul(k).saturating_mul(n)
}

#[inline]
fn check(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &[f32], what: &str) {
    assert_eq!(a.len(), m * k, "gemm::{what}: A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm::{what}: B is not {k}x{n}");
    assert_eq!(out.len(), m * n, "gemm::{what}: C is not {m}x{n}");
}

/// Reference kernel `C += A·B` (`A` is `m×k`, `B` is `k×n`, row-major).
///
/// Branch-free i-k-j triple loop; the correctness oracle for the
/// blocked and parallel paths.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "naive_nn");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference kernel `C += Aᵀ·B` (`A` is `ra×ca`, `B` is `ra×n`, `C` is
/// `ca×n`), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::naive_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::naive_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::naive_tn: C is not {ca}x{n}");
    for kk in 0..ra {
        let a_row = &a[kk * ca..(kk + 1) * ca];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference kernel `C += A·Bᵀ` (`A` is `m×k`, `B` is `n×k`, `C` is
/// `m×n`), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm::naive_nt: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm::naive_nt: B is not {n}x{k}");
    assert_eq!(out.len(), m * n, "gemm::naive_nt: C is not {m}x{n}");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = out[i * n + j];
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Serial cache-blocked `C += A·B` with a k-unrolled-by-4 micro-kernel.
/// Bit-identical to [`naive_nn`] for every shape.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn blocked_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "blocked_nn");
    for jb in (0..n).step_by(NB) {
        let jw = (jb + NB).min(n) - jb;
        for ib in (0..m).step_by(MB) {
            let iend = (ib + MB).min(m);
            for kb in (0..k).step_by(KB) {
                let kend = (kb + KB).min(k);
                for i in ib..iend {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n + jb..i * n + jb + jw];
                    let mut kk = kb;
                    while kk + 4 <= kend {
                        let (a0, a1, a2, a3) =
                            (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                        let b0 = &b[kk * n + jb..kk * n + jb + jw];
                        let b1 = &b[(kk + 1) * n + jb..(kk + 1) * n + jb + jw];
                        let b2 = &b[(kk + 2) * n + jb..(kk + 2) * n + jb + jw];
                        let b3 = &b[(kk + 3) * n + jb..(kk + 3) * n + jb + jw];
                        // Sequential adds keep each element's k order.
                        for j in 0..jw {
                            let mut acc = out_row[j];
                            acc += a0 * b0[j];
                            acc += a1 * b1[j];
                            acc += a2 * b2[j];
                            acc += a3 * b3[j];
                            out_row[j] = acc;
                        }
                        kk += 4;
                    }
                    while kk < kend {
                        let av = a_row[kk];
                        let b_row = &b[kk * n + jb..kk * n + jb + jw];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                        kk += 1;
                    }
                }
            }
        }
    }
}

/// Serial cache-blocked `C += Aᵀ·B`. Bit-identical to [`naive_tn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn blocked_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::blocked_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::blocked_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::blocked_tn: C is not {ca}x{n}");
    blocked_tn_cols(ra, ca, n, a, b, 0, ca, out);
}

/// The `tn` tile loop over output rows (= `A` columns) `i0..i1` only,
/// writing into the `(i1-i0)×n` band `out`. Per-element accumulation
/// order depends only on `kb`/`kk`, so banding cannot change results.
fn blocked_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    for jb in (0..n).step_by(NB) {
        let jend = (jb + NB).min(n);
        for ib in (i0..i1).step_by(MB) {
            let iend = (ib + MB).min(i1);
            for kb in (0..ra).step_by(KB) {
                let kend = (kb + KB).min(ra);
                for kk in kb..kend {
                    let a_row = &a[kk * ca..(kk + 1) * ca];
                    let b_row = &b[kk * n + jb..kk * n + jend];
                    for i in ib..iend {
                        let av = a_row[i];
                        let out_row = &mut out[(i - i0) * n + jb..(i - i0) * n + jend];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Transposes the row-major `rows×cols` slice `src` into `dst`
/// (`cols×rows`). Used by [`nt`] to reach the blocked `nn` kernel.
fn transpose_into(rows: usize, cols: usize, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            dst[j * rows + i] = src[i * cols + j];
        }
    }
}

/// `C += A·B` dispatcher: serial blocked kernel for small products,
/// row-banded across the worker pool once `m·k·n` reaches the parallel
/// threshold. Always bit-identical to [`naive_nn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "nn");
    let t = pool::threads();
    if t > 1 && m >= 2 && work(m, k, n) >= PAR_MIN_WORK {
        let band_rows = m.div_ceil(t.min(m));
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(band_rows * n)
            .enumerate()
            .map(|(band, chunk)| {
                let i0 = band * band_rows;
                let rows = chunk.len() / n;
                let a_band = &a[i0 * k..(i0 + rows) * k];
                Box::new(move || blocked_nn(rows, k, n, a_band, b, chunk)) as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        blocked_nn(m, k, n, a, b, out);
    }
}

/// `C += Aᵀ·B` dispatcher: serial blocked kernel for small products,
/// output-row-banded across the worker pool for large ones. Always
/// bit-identical to [`naive_tn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::tn: C is not {ca}x{n}");
    let t = pool::threads();
    if t > 1 && ca >= 2 && work(ra, ca, n) >= PAR_MIN_WORK {
        let band_rows = ca.div_ceil(t.min(ca));
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(band_rows * n)
            .enumerate()
            .map(|(band, chunk)| {
                let i0 = band * band_rows;
                let i1 = i0 + chunk.len() / n;
                Box::new(move || blocked_tn_cols(ra, ca, n, a, b, i0, i1, chunk))
                    as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        blocked_tn(ra, ca, n, a, b, out);
    }
}

/// `C += A·Bᵀ` dispatcher (`B` is `n×k`): tiny products run the direct
/// dot-product loop; larger ones pack `Bᵀ` once and go through [`nn`]
/// (and so inherit its blocking and banding). Always bit-identical to
/// [`naive_nt`] — the packed path performs the same per-element adds in
/// the same k order.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm::nt: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm::nt: B is not {n}x{k}");
    assert_eq!(out.len(), m * n, "gemm::nt: C is not {m}x{n}");
    if work(m, k, n) < NT_PACK_MIN_WORK {
        naive_nt(m, k, n, a, b, out);
    } else {
        let mut bt = vec![0.0f32; k * n];
        transpose_into(n, k, b, &mut bt);
        nn(m, k, n, a, &bt, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill with a sprinkling of exact zeros
    /// (the seed kernel's zero-skip made zeros a historical edge case).
    fn fill(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 33) as i32 % 1000) as f32 / 250.0;
                if v.abs() < 0.01 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn assert_bits_eq(x: &[f32], y: &[f32], what: &str) {
        assert_eq!(x.len(), y.len());
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
        }
    }

    /// Shapes covering 1×N / N×1 degeneracies, non-multiple-of-tile
    /// edges, and one product large enough to band across the pool.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 40, 1),
        (1, 7, 300),
        (300, 7, 1),
        (3, 5, 2),
        (33, 65, 17),
        (100, 130, 70),
        (31, 257, 129),
        (150, 70, 130),
    ];

    #[test]
    fn blocked_and_dispatched_nn_match_naive_exactly() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut want = vec![0.0f32; m * n];
            naive_nn(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            blocked_nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("blocked_nn {m}x{k}x{n}"));
            let mut got = vec![0.0f32; m * n];
            nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_and_dispatched_tn_match_naive_exactly() {
        for &(ra, ca, n) in SHAPES {
            let a = fill(ra * ca, 3);
            let b = fill(ra * n, 4);
            let mut want = vec![0.0f32; ca * n];
            naive_tn(ra, ca, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; ca * n];
            blocked_tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("blocked_tn {ra}x{ca}x{n}"));
            let mut got = vec![0.0f32; ca * n];
            tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("tn {ra}x{ca}x{n}"));
        }
    }

    #[test]
    fn dispatched_nt_matches_naive_exactly() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 5);
            let b = fill(n * k, 6);
            let mut want = vec![0.0f32; m * n];
            naive_nt(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            nt(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("nt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn kernels_accumulate_into_existing_output() {
        let (m, k, n) = (5, 9, 11);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let mut want = fill(m * n, 9);
        let mut got = want.clone();
        naive_nn(m, k, n, &a, &b, &mut want);
        blocked_nn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got, "accumulate");
    }

    #[test]
    fn parallel_band_boundaries_are_exact() {
        // Wide enough that every band split the pool can pick still has
        // non-multiple-of-tile rows at its edges.
        let (m, k, n) = (151, 71, 131);
        let a = fill(m * k, 10);
        let b = fill(k * n, 11);
        let mut want = vec![0.0f32; m * n];
        naive_nn(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got, "banded nn 151x71x131");
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut out = vec![0.0f32; 0];
        nn(0, 3, 0, &[], &fill(0, 1), &mut out);
        let mut out = vec![1.5f32; 4];
        nn(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![1.5; 4], "k = 0 leaves C untouched");
        let mut out = vec![2.5f32; 4];
        nt(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![2.5; 4], "nt with k = 0 leaves C untouched");
    }
}
