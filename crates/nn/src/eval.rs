//! Model evaluation: confusion matrices and per-class error rates.
//!
//! BaFFLe's validation function (Algorithm 2) is built entirely on
//! *per-class* error rates of the global model over a validation set:
//!
//! - the **source-focused error** `err_D(f)^{y→✱}` — the fraction of
//!   samples in `D` that belong to class `y` and are misclassified, and
//! - the **target-focused error** `err_D(f)^{✱→y}` — the fraction of
//!   samples in `D` that `f` wrongly assigns to class `y`.
//!
//! Both are derived from a [`ConfusionMatrix`].

use crate::Model;
use baffle_tensor::{pool, Matrix};
use serde::{Deserialize, Serialize};

/// Rows per evaluation chunk when a dataset is split across the worker
/// pool; datasets shorter than twice this evaluate in a single call, so
/// the small validation sets of unit tests never change behaviour.
const EVAL_CHUNK_ROWS: usize = 512;

/// A `num_classes × num_classes` confusion matrix; entry `(t, p)` counts
/// samples with true class `t` predicted as class `p`.
///
/// # Example
///
/// ```
/// use baffle_nn::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// assert!((cm.source_error(0) - 1.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<u64>,
    total: u64,
}

impl ConfusionMatrix {
    /// An empty confusion matrix over `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "ConfusionMatrix: need at least one class");
        Self { num_classes, counts: vec![0; num_classes * num_classes], total: 0 }
    }

    /// Builds a confusion matrix by running `model` over a labelled set.
    ///
    /// Large sets (≥ `2 * EVAL_CHUNK_ROWS` rows, pool wider than one
    /// thread) are split into row chunks evaluated on the shared worker
    /// pool via [`Model::predict_rows`] and merged in chunk order;
    /// because predictions are row-wise and [`ConfusionMatrix::merge`]
    /// is plain integer addition, the result is identical to the
    /// single-call path.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or a label is out of range.
    pub fn from_model<M: Model + Sync + ?Sized>(model: &M, x: &Matrix, y: &[usize]) -> Self {
        assert_eq!(
            x.rows(),
            y.len(),
            "ConfusionMatrix::from_model: {} rows vs {} labels",
            x.rows(),
            y.len()
        );
        if x.rows() >= 2 * EVAL_CHUNK_ROWS && pool::threads() > 1 {
            let chunk = x.rows().div_ceil(pool::threads()).max(EVAL_CHUNK_ROWS);
            return Self::from_model_chunked(model, x, y, chunk);
        }
        let mut cm = Self::new(model.num_classes());
        let preds = model.predict_batch(x);
        for (&t, &p) in y.iter().zip(&preds) {
            cm.record(t, p);
        }
        cm
    }

    /// The chunked path of [`ConfusionMatrix::from_model`]: evaluates
    /// `chunk_rows`-row slices on the worker pool via
    /// [`Model::predict_rows`] (which borrows the rows — no per-chunk
    /// copy of the data) and merges the partial matrices in chunk order.
    fn from_model_chunked<M: Model + Sync + ?Sized>(
        model: &M,
        x: &Matrix,
        y: &[usize],
        chunk_rows: usize,
    ) -> Self {
        let rows = x.rows();
        let ranges: Vec<(usize, usize)> =
            (0..rows).step_by(chunk_rows.max(1)).map(|s| (s, (s + chunk_rows).min(rows))).collect();
        let parts = pool::parallel_map(ranges, |_, (s, e)| {
            let preds = model.predict_rows(x, s, e);
            let mut part = Self::new(model.num_classes());
            for (&t, &p) in y[s..e].iter().zip(&preds) {
                part.record(t, p);
            }
            part
        });
        let mut cm = Self::new(model.num_classes());
        for part in &parts {
            cm.merge(part);
        }
        cm
    }

    /// Builds one confusion matrix per model in a single fused pass over
    /// the labelled set — the batched form of
    /// [`ConfusionMatrix::from_model`] used by the validation engine's
    /// cold path, where every history model must be scored on the same
    /// shard.
    ///
    /// Rows are chunked across the worker pool exactly as in
    /// `from_model`; each chunk evaluates all models at once through
    /// [`Model::predict_multi`], which architectures like
    /// [`crate::Mlp`] and [`crate::Cnn`] implement as wide/stacked GEMM
    /// passes. On the default bit-exact kernels every returned matrix is
    /// bit-identical to `from_model` on the corresponding model.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`, the models disagree on the class
    /// count, or a label is out of range.
    pub fn from_models<M: Model + Sync>(models: &[&M], x: &Matrix, y: &[usize]) -> Vec<Self> {
        assert_eq!(
            x.rows(),
            y.len(),
            "ConfusionMatrix::from_models: {} rows vs {} labels",
            x.rows(),
            y.len()
        );
        if models.is_empty() {
            return Vec::new();
        }
        let nc = models[0].num_classes();
        for m in models {
            assert_eq!(m.num_classes(), nc, "ConfusionMatrix::from_models: class count mismatch");
        }
        let rows = x.rows();
        let chunk = if rows >= 2 * EVAL_CHUNK_ROWS && pool::threads() > 1 {
            rows.div_ceil(pool::threads()).max(EVAL_CHUNK_ROWS)
        } else {
            rows.max(1)
        };
        let ranges: Vec<(usize, usize)> =
            (0..rows).step_by(chunk).map(|s| (s, (s + chunk).min(rows))).collect();
        let parts = pool::parallel_map(ranges, |_, (s, e)| {
            M::predict_multi(models, x, s, e)
                .into_iter()
                .map(|preds| {
                    let mut part = Self::new(nc);
                    for (&t, &p) in y[s..e].iter().zip(&preds) {
                        part.record(t, p);
                    }
                    part
                })
                .collect::<Vec<_>>()
        });
        let mut cms = vec![Self::new(nc); models.len()];
        for part in &parts {
            for (cm, p) in cms.iter_mut().zip(part) {
                cm.merge(p);
            }
        }
        cms
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn record(&mut self, true_class: usize, predicted: usize) {
        assert!(
            true_class < self.num_classes && predicted < self.num_classes,
            "ConfusionMatrix::record: ({true_class}, {predicted}) out of range for {} classes",
            self.num_classes
        );
        self.counts[true_class * self.num_classes + predicted] += 1;
        self.total += 1;
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        self.counts[t * self.num_classes + p]
    }

    /// Overall empirical accuracy `acc_D(f)`; 0 if no observations.
    pub fn accuracy(&self) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes).map(|c| self.count(c, c)).sum();
        correct as f32 / self.total as f32
    }

    /// Overall empirical error `err_D(f) = 1 − acc_D(f)`.
    pub fn error(&self) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.accuracy()
    }

    /// Source-focused error `err_D(f)^{y→✱}`: fraction of **all** samples
    /// in `D` that belong to class `y` and are misclassified (paper §V).
    ///
    /// Note the denominator is `|D|`, not the class size — this matches the
    /// paper's definition ("the fraction of samples in `D` which belong to
    /// class `y` and are misclassified by `f`").
    pub fn source_error(&self, y: usize) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let wrong: u64 = (0..self.num_classes).filter(|&p| p != y).map(|p| self.count(y, p)).sum();
        wrong as f32 / self.total as f32
    }

    /// Target-focused error `err_D(f)^{✱→y}`: fraction of all samples in
    /// `D` that `f` wrongly assigns to class `y` (paper §V).
    pub fn target_error(&self, y: usize) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let wrong: u64 = (0..self.num_classes).filter(|&t| t != y).map(|t| self.count(t, y)).sum();
        wrong as f32 / self.total as f32
    }

    /// Per-class recall (within-class accuracy) for class `y`; 0 when the
    /// class has no samples.
    pub fn recall(&self, y: usize) -> f32 {
        let class_total: u64 = (0..self.num_classes).map(|p| self.count(y, p)).sum();
        if class_total == 0 {
            return 0.0;
        }
        self.count(y, y) as f32 / class_total as f32
    }

    /// All source-focused errors, indexed by class.
    pub fn source_errors(&self) -> Vec<f32> {
        (0..self.num_classes).map(|y| self.source_error(y)).collect()
    }

    /// All target-focused errors, indexed by class.
    pub fn target_errors(&self) -> Vec<f32> {
        (0..self.num_classes).map(|y| self.target_error(y)).collect()
    }

    /// Merges another confusion matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(
            self.num_classes, other.num_classes,
            "ConfusionMatrix::merge: class count mismatch {} vs {}",
            self.num_classes, other.num_classes
        );
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Backdoor accuracy (eq. 1 of the paper): the fraction of backdoor
/// instances `x` that the model assigns to the attacker's target label.
///
/// # Panics
///
/// Panics if `backdoor_x` is empty.
pub fn backdoor_accuracy<M: Model + ?Sized>(model: &M, backdoor_x: &Matrix, target: usize) -> f32 {
    assert!(backdoor_x.rows() > 0, "backdoor_accuracy: empty backdoor set");
    let preds = model.predict_batch(backdoor_x);
    preds.iter().filter(|&&p| p == target).count() as f32 / preds.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mlp, MlpSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cm_3x3() -> ConfusionMatrix {
        // true 0: 3 correct, 1 -> class 1
        // true 1: 2 correct, 2 -> class 2
        // true 2: 2 correct
        let mut cm = ConfusionMatrix::new(3);
        for _ in 0..3 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        for _ in 0..2 {
            cm.record(1, 1);
        }
        cm.record(1, 2);
        cm.record(1, 2);
        cm.record(2, 2);
        cm.record(2, 2);
        cm
    }

    #[test]
    fn accuracy_and_error_sum_to_one() {
        let cm = cm_3x3();
        assert_eq!(cm.total(), 10);
        assert!((cm.accuracy() + cm.error() - 1.0).abs() < 1e-6);
        assert!((cm.accuracy() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn source_error_uses_dataset_denominator() {
        let cm = cm_3x3();
        // Class 0 has 1 misclassified of 10 total samples.
        assert!((cm.source_error(0) - 0.1).abs() < 1e-6);
        // Class 1 has 2 misclassified.
        assert!((cm.source_error(1) - 0.2).abs() < 1e-6);
        assert_eq!(cm.source_error(2), 0.0);
    }

    #[test]
    fn target_error_counts_wrong_arrivals() {
        let cm = cm_3x3();
        // One sample wrongly arrives at class 1, two at class 2.
        assert!((cm.target_error(1) - 0.1).abs() < 1e-6);
        assert!((cm.target_error(2) - 0.2).abs() < 1e-6);
        assert_eq!(cm.target_error(0), 0.0);
    }

    #[test]
    fn source_and_target_errors_both_sum_to_total_error() {
        let cm = cm_3x3();
        let s: f32 = cm.source_errors().iter().sum();
        let t: f32 = cm.target_errors().iter().sum();
        assert!((s - cm.error()).abs() < 1e-6);
        assert!((t - cm.error()).abs() < 1e-6);
    }

    #[test]
    fn recall_per_class() {
        let cm = cm_3x3();
        assert!((cm.recall(0) - 0.75).abs() < 1e-6);
        assert!((cm.recall(1) - 0.5).abs() < 1e-6);
        assert!((cm.recall(2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn recall_of_absent_class_is_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.recall(3), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = cm_3x3();
        let b = cm_3x3();
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.count(1, 2), 4);
    }

    #[test]
    fn empty_matrix_rates_are_zero() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.error(), 0.0);
        assert_eq!(cm.source_error(0), 0.0);
        assert_eq!(cm.target_error(0), 0.0);
    }

    #[test]
    fn from_model_counts_every_row() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Mlp::new(&MlpSpec::new(2, &[], 3), &mut rng);
        let x = Matrix::from_fn(7, 2, |r, c| (r + c) as f32);
        let y = vec![0, 1, 2, 0, 1, 2, 0];
        let cm = ConfusionMatrix::from_model(&model, &x, &y);
        assert_eq!(cm.total(), 7);
    }

    #[test]
    fn chunked_evaluation_matches_single_call_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Mlp::new(&MlpSpec::new(6, &[8], 4), &mut rng);
        let rows = 1500;
        let x = Matrix::from_fn(rows, 6, |r, c| ((r * 13 + c * 7) % 23) as f32 / 23.0 - 0.5);
        let y: Vec<usize> = (0..rows).map(|r| r % 4).collect();

        let mut serial = ConfusionMatrix::new(model.num_classes());
        for (&t, &p) in y.iter().zip(&model.predict_batch(&x)) {
            serial.record(t, p);
        }
        // Exercise the chunk/merge machinery directly (odd chunk size,
        // ragged tail) so the test is meaningful at any pool width.
        let chunked = ConfusionMatrix::from_model_chunked(&model, &x, &y, 377);
        assert_eq!(serial, chunked);
        // And the public entry point, whatever path it picks.
        assert_eq!(serial, ConfusionMatrix::from_model(&model, &x, &y));
    }

    #[test]
    fn backdoor_accuracy_counts_target_hits() {
        struct Fixed(Vec<usize>);
        impl Model for Fixed {
            fn num_params(&self) -> usize {
                0
            }
            fn params(&self) -> Vec<f32> {
                Vec::new()
            }
            fn set_params(&mut self, _: &[f32]) {}
            fn num_classes(&self) -> usize {
                3
            }
            fn predict_batch(&self, _: &Matrix) -> Vec<usize> {
                self.0.clone()
            }
        }
        let m = Fixed(vec![2, 2, 0, 2]);
        let x = Matrix::zeros(4, 1);
        assert!((backdoor_accuracy(&m, &x, 2) - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 2);
    }

    #[test]
    fn from_models_matches_from_model_on_default_kernels() {
        use baffle_tensor::gemm;
        if gemm::fast_math_enabled() && gemm::simd_enabled() {
            // Mlp::predict_multi is only bound-comparable to the
            // sequential path under fast math; see the Cnn test for the
            // tier-independent bitwise check.
            return;
        }
        let mut rng = StdRng::seed_from_u64(5);
        let spec = MlpSpec::new(4, &[6], 3);
        let models: Vec<Mlp> = (0..5).map(|_| Mlp::new(&spec, &mut rng)).collect();
        let x = Matrix::from_fn(40, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let y: Vec<usize> = (0..40).map(|r| r % 3).collect();
        let refs: Vec<&Mlp> = models.iter().collect();
        let cms = ConfusionMatrix::from_models(&refs, &x, &y);
        assert_eq!(cms.len(), models.len());
        for (i, cm) in cms.iter().enumerate() {
            assert_eq!(cm, &ConfusionMatrix::from_model(&models[i], &x, &y), "model {i}");
        }
    }

    #[test]
    fn from_models_on_empty_model_list_is_empty() {
        let x = Matrix::zeros(3, 2);
        let cms = ConfusionMatrix::from_models::<Mlp>(&[], &x, &[0, 1, 0]);
        assert!(cms.is_empty());
    }
}
