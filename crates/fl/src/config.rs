//! Federated-learning hyperparameters.

use serde::{Deserialize, Serialize};

/// Hyperparameters of the FL process (paper §II-B and §VI-A).
///
/// Defaults follow the paper: 10 contributing clients per round, 2 local
/// epochs with learning rate 0.1, and global learning rate `λ = N/n`
/// (full model replacement by the mean local model).
///
/// # Example
///
/// ```
/// use baffle_fl::FlConfig;
///
/// let c = FlConfig::new(100, 10);
/// assert_eq!(c.global_lr(), 10.0); // λ = N/n by default
/// let c = c.with_global_lr(1.0);
/// assert_eq!(c.global_lr(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    num_clients: usize,
    clients_per_round: usize,
    global_lr: f32,
    local_epochs: usize,
    local_lr: f32,
    batch_size: usize,
}

impl FlConfig {
    /// Creates a config for `num_clients` total clients with
    /// `clients_per_round` sampled per round and paper-default local
    /// training parameters.
    ///
    /// # Panics
    ///
    /// Panics if `clients_per_round` is zero or exceeds `num_clients`.
    pub fn new(num_clients: usize, clients_per_round: usize) -> Self {
        assert!(clients_per_round > 0, "FlConfig: need at least one client per round");
        assert!(
            clients_per_round <= num_clients,
            "FlConfig: cannot select {clients_per_round} of {num_clients} clients"
        );
        Self {
            num_clients,
            clients_per_round,
            global_lr: num_clients as f32 / clients_per_round as f32,
            local_epochs: 2,
            local_lr: 0.1,
            batch_size: 32,
        }
    }

    /// Overrides the global learning rate `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn with_global_lr(mut self, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "global_lr must be positive, got {lr}");
        self.global_lr = lr;
        self
    }

    /// Overrides the number of local epochs.
    pub fn with_local_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "local_epochs must be positive");
        self.local_epochs = epochs;
        self
    }

    /// Overrides the local learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn with_local_lr(mut self, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "local_lr must be positive, got {lr}");
        self.local_lr = lr;
        self
    }

    /// Overrides the local mini-batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Total number of participating clients (`N`).
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Clients selected per round (`n`).
    pub fn clients_per_round(&self) -> usize {
        self.clients_per_round
    }

    /// Global learning rate (`λ`).
    pub fn global_lr(&self) -> f32 {
        self.global_lr
    }

    /// Local training epochs per selected client.
    pub fn local_epochs(&self) -> usize {
        self.local_epochs
    }

    /// Local SGD learning rate.
    pub fn local_lr(&self) -> f32 {
        self.local_lr
    }

    /// Local mini-batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The boost factor `γ = N / λ` with which a model-replacement
    /// attacker scales its poisoned update so that, under the aggregation
    /// rule `G' = G + (λ/N)·ΣᵢUᵢ`, its single update fully replaces the
    /// global model with its backdoored one (Bagdasaryan et al.; paper
    /// §III-B). With the default `λ = N/n` this reduces to `γ = n`.
    pub fn replacement_boost(&self) -> f32 {
        self.num_clients as f32 / self.global_lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lambda_boost_is_n() {
        let c = FlConfig::new(100, 10);
        assert_eq!(c.global_lr(), 10.0);
        // γ = N/λ = 100/10 = n = 10.
        assert_eq!(c.replacement_boost(), 10.0);
    }

    #[test]
    fn conservative_lambda_needs_bigger_boost() {
        let c = FlConfig::new(100, 10).with_global_lr(1.0);
        assert_eq!(c.replacement_boost(), 100.0);
    }

    #[test]
    fn builders_override_fields() {
        let c = FlConfig::new(50, 5).with_local_epochs(3).with_local_lr(0.05).with_batch_size(16);
        assert_eq!(c.local_epochs(), 3);
        assert_eq!(c.local_lr(), 0.05);
        assert_eq!(c.batch_size(), 16);
        assert_eq!(c.num_clients(), 50);
        assert_eq!(c.clients_per_round(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversampling_panics() {
        let _ = FlConfig::new(5, 10);
    }
}
