//! Local training of client models.

use crate::FlConfig;
use baffle_data::Dataset;
use baffle_nn::{Mlp, Model, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains local models from a shared global model — the client-side step
/// of each FL round.
///
/// # Example
///
/// ```
/// use baffle_fl::{FlConfig, LocalTrainer};
/// let trainer = LocalTrainer::from_config(&FlConfig::new(10, 2));
/// assert_eq!(trainer.epochs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LocalTrainer {
    epochs: usize,
    lr: f32,
    batch_size: usize,
    momentum: f32,
}

impl LocalTrainer {
    /// Creates a trainer with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` or `batch_size` is zero, or `lr` is not
    /// positive.
    pub fn new(epochs: usize, lr: f32, batch_size: usize) -> Self {
        assert!(epochs > 0, "LocalTrainer: epochs must be positive");
        assert!(lr.is_finite() && lr > 0.0, "LocalTrainer: lr must be positive");
        assert!(batch_size > 0, "LocalTrainer: batch_size must be positive");
        Self { epochs, lr, batch_size, momentum: 0.9 }
    }

    /// Creates a trainer from the local-training fields of an
    /// [`FlConfig`].
    pub fn from_config(config: &FlConfig) -> Self {
        Self::new(config.local_epochs(), config.local_lr(), config.batch_size())
    }

    /// Sets the SGD momentum (default 0.9).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Local epochs per round.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Local learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Trains a copy of `global` on `data`, returning the local model.
    /// An empty shard returns the global model unchanged (the client has
    /// nothing to contribute).
    pub fn train(&self, global: &Mlp, data: &Dataset, rng: &mut StdRng) -> Mlp {
        let mut local = global.clone();
        if data.is_empty() {
            return local;
        }
        let mut opt = Sgd::new(self.lr).with_momentum(self.momentum);
        for _ in 0..self.epochs {
            local.train_epoch(data.features(), data.labels(), self.batch_size, &mut opt, rng);
        }
        local
    }

    /// Trains and returns the *update* `U = L − G` as a flat vector.
    pub fn train_update(&self, global: &Mlp, data: &Dataset, rng: &mut StdRng) -> Vec<f32> {
        let local = self.train(global, data, rng);
        baffle_tensor::ops::sub(&local.params(), &global.params())
    }
}

/// Trains several clients in parallel on the process-wide worker pool
/// ([`baffle_tensor::pool`]), returning one update per shard (in shard
/// order).
///
/// Each client gets a deterministic RNG derived from `seed` and its
/// position, so results are bit-identical to training the shards
/// sequentially, regardless of scheduling or `BAFFLE_THREADS`.
pub fn train_clients_parallel(
    global: &Mlp,
    shards: &[&Dataset],
    trainer: &LocalTrainer,
    seed: u64,
) -> Vec<Vec<f32>> {
    baffle_tensor::pool::parallel_map(shards.to_vec(), |i, shard| {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        trainer.train_update(global, shard, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_data::{SyntheticVision, VisionSpec};
    use baffle_nn::MlpSpec;

    fn setup() -> (Mlp, Dataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = SyntheticVision::new(&VisionSpec::new(3, 8, 2), &mut rng);
        let data = gen.generate(&mut rng, 120);
        let model = Mlp::new(&MlpSpec::new(8, &[16], 3), &mut rng);
        (model, data, rng)
    }

    #[test]
    fn training_improves_local_accuracy() {
        let (global, data, mut rng) = setup();
        let trainer = LocalTrainer::new(3, 0.1, 16);
        let local = trainer.train(&global, &data, &mut rng);
        let before = global.accuracy(data.features(), data.labels());
        let after = local.accuracy(data.features(), data.labels());
        assert!(after > before, "accuracy {before} -> {after}");
    }

    #[test]
    fn empty_shard_returns_zero_update() {
        let (global, _, mut rng) = setup();
        let trainer = LocalTrainer::new(2, 0.1, 16);
        let empty = Dataset::empty(8, 3);
        let update = trainer.train_update(&global, &empty, &mut rng);
        assert!(update.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn update_is_local_minus_global() {
        let (global, data, _) = setup();
        let trainer = LocalTrainer::new(1, 0.05, 16);
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let local = trainer.train(&global, &data, &mut rng1);
        let update = trainer.train_update(&global, &data, &mut rng2);
        let expected = baffle_tensor::ops::sub(&local.params(), &global.params());
        assert_eq!(update, expected);
    }

    #[test]
    fn parallel_training_matches_sequential() {
        let (global, data, mut rng) = setup();
        let shards: Vec<Dataset> = (0..4).map(|_| data.split_random(&mut rng, 30).0).collect();
        let shard_refs: Vec<&Dataset> = shards.iter().collect();
        let trainer = LocalTrainer::new(1, 0.1, 16);

        let parallel = train_clients_parallel(&global, &shard_refs, &trainer, 77);
        let sequential: Vec<Vec<f32>> = shard_refs
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let mut rng = StdRng::seed_from_u64(77 + i as u64);
                trainer.train_update(&global, shard, &mut rng)
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn from_config_copies_fields() {
        let config = FlConfig::new(10, 2).with_local_epochs(5).with_local_lr(0.3);
        let t = LocalTrainer::from_config(&config);
        assert_eq!(t.epochs(), 5);
        assert_eq!(t.learning_rate(), 0.3);
    }
}
