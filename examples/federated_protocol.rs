//! Runs BaFFLe as an actual message-passing protocol: one server thread
//! and a fleet of client threads exchanging wire-encoded models over a
//! (lossy) in-process network — the deployment view of the system, with
//! timeouts, dropouts and incremental history shipping.
//!
//! ```sh
//! cargo run --release --example federated_protocol
//! ```

use baffle::net::deployment::{Deployment, DeploymentConfig};
use std::time::Duration;

fn main() {
    let mut config = DeploymentConfig::small(11);
    config.num_clients = 16;
    config.clients_per_round = 6;
    config.validators_per_round = 6;
    config.quorum = 3;
    config.lookback = 8;
    config.rounds = 16;
    config.total_train = 3_000;
    config.warmup_central_epochs = 14;
    config.drop_prob = 0.05; // 5% message loss
    config.phase_timeout = Duration::from_secs(5);

    println!(
        "deploying: {} clients ({} malicious), {} rounds, 5% message loss\n",
        config.num_clients, config.malicious_clients, config.rounds
    );
    let outcome = Deployment::run(config);

    println!(
        "round  accepted  updates  votes  rejects  abstain  upd-phase  vote-phase  history shipped"
    );
    for r in &outcome.rounds {
        println!(
            "{:>5}  {:>8}  {:>7}  {:>5}  {:>7}  {:>7}  {:>7.0?}  {:>8.0?}  {:>12} B{}",
            r.round,
            if r.accepted { "yes" } else { "NO" },
            r.updates_received,
            r.votes_received,
            r.reject_votes,
            r.abstentions,
            r.update_phase,
            r.vote_phase,
            r.history_bytes_shipped,
            if r.quorum_clamped { "  (quorum clamped!)" } else { "" },
        );
    }
    println!(
        "\nmessages: {} sent, {} dropped by the network",
        outcome.messages_sent, outcome.messages_dropped
    );
    println!(
        "final model: main accuracy {:.3}, backdoor accuracy {:.3}",
        outcome.final_main_accuracy, outcome.final_backdoor_accuracy
    );
}
