//! Error-variation vectors (paper §V, eqs. 2–3).
//!
//! For two models `f` (previous) and `f'` (current) evaluated on the same
//! dataset `D`, and each label `y`, the paper defines
//!
//! ```text
//! vˢ(f, f', D, y) = err_D(f)^{y→✱} − err_D(f')^{y→✱}    (source-focused)
//! vᵗ(f, f', D, y) = err_D(f)^{✱→y} − err_D(f')^{✱→y}    (target-focused)
//! ```
//!
//! and the **error-variation point** `v(f, f', D) = [vˢ, vᵗ] ∈ ℝ^{2|Y|}`.
//! Under benign training these points cluster round to round; a freshly
//! injected backdoor boosts the error of one or a few classes and moves
//! the point out of the cluster — which Algorithm 2 detects with LOF.

use baffle_data::Dataset;
use baffle_nn::{ConfusionMatrix, Model};

/// Computes the error-variation vector from two precomputed confusion
/// matrices over the same dataset.
///
/// The result has length `2 · num_classes`: source-focused variations
/// first, then target-focused ones. Every entry lies in `[-1, 1]`.
///
/// # Panics
///
/// Panics if the matrices have different class counts.
///
/// # Example
///
/// ```
/// use baffle_core::variation::variation_from_confusions;
/// use baffle_nn::ConfusionMatrix;
///
/// let mut prev = ConfusionMatrix::new(2);
/// prev.record(0, 1); // one class-0 sample misclassified
/// prev.record(1, 1);
/// let mut curr = ConfusionMatrix::new(2);
/// curr.record(0, 0); // now classified correctly
/// curr.record(1, 1);
/// let v = variation_from_confusions(&prev, &curr);
/// assert_eq!(v.len(), 4);
/// assert!((v[0] - 0.5).abs() < 1e-6); // source error of class 0 dropped by 0.5
/// ```
pub fn variation_from_confusions(prev: &ConfusionMatrix, curr: &ConfusionMatrix) -> Vec<f32> {
    assert_eq!(
        prev.num_classes(),
        curr.num_classes(),
        "variation_from_confusions: class count mismatch {} vs {}",
        prev.num_classes(),
        curr.num_classes()
    );
    let c = prev.num_classes();
    let mut v = Vec::with_capacity(2 * c);
    for y in 0..c {
        v.push(prev.source_error(y) - curr.source_error(y));
    }
    for y in 0..c {
        v.push(prev.target_error(y) - curr.target_error(y));
    }
    v
}

/// Computes `v(prev, curr, data)` by evaluating both models on `data`.
///
/// # Panics
///
/// Panics if the models disagree on the number of classes or the data has
/// mismatched labels.
pub fn variation<M: Model + Sync + ?Sized>(prev: &M, curr: &M, data: &Dataset) -> Vec<f32> {
    let cm_prev = ConfusionMatrix::from_model(prev, data.features(), data.labels());
    let cm_curr = ConfusionMatrix::from_model(curr, data.features(), data.labels());
    variation_from_confusions(&cm_prev, &cm_curr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_data::{SyntheticVision, VisionSpec};
    use baffle_nn::{Mlp, MlpSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_models_have_zero_variation() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = SyntheticVision::new(&VisionSpec::new(3, 6, 2), &mut rng);
        let data = gen.generate(&mut rng, 100);
        let model = Mlp::new(&MlpSpec::new(6, &[8], 3), &mut rng);
        let v = variation(&model, &model, &data);
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn variation_is_antisymmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = SyntheticVision::new(&VisionSpec::new(3, 6, 2), &mut rng);
        let data = gen.generate(&mut rng, 200);
        let a = Mlp::new(&MlpSpec::new(6, &[8], 3), &mut rng);
        let b = Mlp::new(&MlpSpec::new(6, &[8], 3), &mut rng);
        let ab = variation(&a, &b, &data);
        let ba = variation(&b, &a, &data);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x + y).abs() < 1e-6);
        }
    }

    #[test]
    fn entries_are_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = SyntheticVision::new(&VisionSpec::new(4, 6, 2), &mut rng);
        let data = gen.generate(&mut rng, 150);
        let a = Mlp::new(&MlpSpec::new(6, &[4], 4), &mut rng);
        let b = Mlp::new(&MlpSpec::new(6, &[4], 4), &mut rng);
        for x in variation(&a, &b, &data) {
            assert!((-1.0..=1.0).contains(&x), "entry {x} out of bounds");
        }
    }

    #[test]
    fn known_confusion_shift_shows_in_the_right_slot() {
        // 4 samples, 2 classes. prev: class 1 all wrong -> class 0.
        let mut prev = ConfusionMatrix::new(2);
        prev.record(0, 0);
        prev.record(0, 0);
        prev.record(1, 0);
        prev.record(1, 0);
        // curr: everything right.
        let mut curr = ConfusionMatrix::new(2);
        curr.record(0, 0);
        curr.record(0, 0);
        curr.record(1, 1);
        curr.record(1, 1);
        let v = variation_from_confusions(&prev, &curr);
        // Source error of class 1 dropped from 0.5 to 0 → v[1] = 0.5.
        assert!((v[1] - 0.5).abs() < 1e-6, "v = {v:?}");
        // Target error of class 0 dropped from 0.5 to 0 → v[2] = 0.5.
        assert!((v[2] - 0.5).abs() < 1e-6, "v = {v:?}");
        // Class 0 source and class 1 target unchanged.
        assert_eq!(v[0], 0.0);
        assert_eq!(v[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn mismatched_classes_panic() {
        let a = ConfusionMatrix::new(2);
        let b = ConfusionMatrix::new(3);
        let _ = variation_from_confusions(&a, &b);
    }
}
