//! Softmax and cross-entropy loss.

use baffle_tensor::Matrix;

/// Row-wise numerically-stable softmax.
///
/// # Example
///
/// ```
/// use baffle_tensor::Matrix;
/// let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
/// let p = baffle_nn::softmax(&logits);
/// assert!((p[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean softmax cross-entropy loss and its gradient with respect to the
/// logits.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax(logits) − one_hot(y)) / batch`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    let mut grad = Matrix::default();
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] writing the gradient into a caller-owned
/// buffer — the allocation-free form the training hot path uses. The
/// buffer is overwritten entirely (softmax of the logits, then the
/// one-hot subtraction and batch scaling in place), so the result is
/// bit-identical to the allocating form.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of
/// range.
pub fn softmax_cross_entropy_into(logits: &Matrix, labels: &[usize], grad: &mut Matrix) -> f32 {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "softmax_cross_entropy: {} labels for {} rows",
        labels.len(),
        logits.rows()
    );
    let batch = logits.rows().max(1) as f32;
    // Row-wise softmax into `grad`, the same arithmetic as [`softmax`].
    grad.copy_from(logits);
    for r in 0..grad.rows() {
        let row = grad.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    let mut loss = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        assert!(
            y < logits.cols(),
            "softmax_cross_entropy: label {y} out of range for {} classes",
            logits.cols()
        );
        let p = grad[(r, y)].max(1e-12);
        loss -= p.ln();
        grad[(r, y)] -= 1.0;
    }
    grad.scale_assign(1.0 / batch);
    loss / batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax(&logits);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[101.0, 102.0, 103.0]]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits_without_overflow() {
        let logits = Matrix::from_rows(&[&[1000.0, 0.0]]);
        let p = softmax(&logits);
        assert!(p.is_finite());
        assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0], &[0.0, 20.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6, "loss = {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_prediction_is_log_k() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0_f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[0.0, 0.5, -0.2]]);
        let labels = [2, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for r in 0..logits.rows() {
            for c in 0..logits.cols() {
                let mut plus = logits.clone();
                plus[(r, c)] += eps;
                let mut minus = logits.clone();
                minus[(r, c)] -= eps;
                let (lp, _) = softmax_cross_entropy(&plus, &labels);
                let (lm, _) = softmax_cross_entropy(&minus, &labels);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad[(r, c)]).abs() < 1e-3,
                    "({r},{c}): fd {fd} vs analytic {}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        let logits = Matrix::zeros(1, 3);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }

    #[test]
    fn into_form_is_bit_identical_and_reuses_the_buffer() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[0.0, 0.5, -0.2]]);
        let labels = [2, 0];
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        let mut reused = Matrix::zeros(5, 5); // stale, wrong-shaped contents
        let loss2 = softmax_cross_entropy_into(&logits, &labels, &mut reused);
        assert_eq!(loss.to_bits(), loss2.to_bits());
        assert_eq!(grad, reused);
        let ptr = reused.as_slice().as_ptr();
        softmax_cross_entropy_into(&logits, &labels, &mut reused);
        assert_eq!(reused.as_slice().as_ptr(), ptr, "steady-state call must not reallocate");
    }
}
