//! FedAvg and secure-aggregation throughput at realistic update sizes.

use baffle_bench::params;
use baffle_fl::{fedavg, secagg::SecAggSession};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_fedavg(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedavg");
    for &len in &[2_762usize, 10_718, 100_000] {
        group.throughput(Throughput::Elements(len as u64 * 10));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let global = params(len, 1);
            let updates: Vec<Vec<f32>> = (0..10).map(|i| params(len, 2 + i)).collect();
            b.iter(|| fedavg(black_box(&global), black_box(&updates), 10.0, 100));
        });
    }
    group.finish();
}

fn bench_secagg_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("secagg_mask");
    for &len in &[2_762usize, 10_718] {
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let session = SecAggSession::new(7, 10, len);
            let update = params(len, 3);
            b.iter(|| session.mask(black_box(4), black_box(&update)));
        });
    }
    group.finish();
}

fn bench_secagg_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("secagg_full_round");
    group.sample_size(20);
    for &len in &[2_762usize, 10_718] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let session = SecAggSession::new(7, 10, len);
            let updates: Vec<Vec<f32>> = (0..10).map(|i| params(len, 10 + i)).collect();
            b.iter(|| {
                let masked: Vec<Vec<f32>> =
                    updates.iter().enumerate().map(|(i, u)| session.mask(i, u)).collect();
                session.aggregate(black_box(&masked))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fedavg, bench_secagg_mask, bench_secagg_round);
criterion_main!(benches);
