//! Extension experiment: attack strength (boost γ) vs detectability and
//! backdoor take-up.
//!
//! The model-replacement boost trades stealth for effect: γ = N/λ fully
//! replaces the global model (maximum backdoor accuracy, maximum
//! per-class error shift), while small γ dilutes the backdoor under
//! averaging. This sweep shows BaFFLe's detection rate together with the
//! candidate's actual backdoor accuracy per γ — the attacker has no
//! operating point that both takes effect and goes unnoticed.
//!
//! Run with `cargo run --release -p baffle-core --bin ext_boost_sweep`.

use baffle_core::exp::{cell, ExpArgs, Table};
use baffle_core::{Simulation, SimulationConfig};

fn main() {
    let args = ExpArgs::from_env();
    let boosts: &[f32] = if args.fast { &[1.0, 10.0] } else { &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0] };

    let mut table = Table::new(
        "Extension: boost γ vs backdoor take-up and detection (CifarLike, γ=N/λ is full replacement = 10)",
        &["boost γ", "candidate backdoor acc", "detected", "injections", "post-round backdoor acc"],
    );
    for &boost in boosts {
        let mut cand_bd = Vec::new();
        let mut post_bd = Vec::new();
        let mut detected = 0usize;
        let mut injections = 0usize;
        for rep in 0..args.reps() {
            let mut config = SimulationConfig::cifar_like(args.seed + 1000 * rep as u64);
            config.boost = Some(boost);
            config.track_accuracy = true;
            if args.fast {
                config.rounds = 20;
                config.poison_rounds = vec![10, 15];
            }
            let report = Simulation::new(config).run();
            for r in &report.records {
                if r.poisoned && r.defense_active {
                    injections += 1;
                    if !r.decision.is_accepted() {
                        detected += 1;
                    }
                    cand_bd.push(r.candidate_backdoor_accuracy.unwrap_or(0.0) as f64);
                    post_bd.push(r.backdoor_accuracy.unwrap_or(0.0) as f64);
                }
            }
        }
        table.row(vec![
            format!("{boost:.1}"),
            cell(&cand_bd),
            format!("{detected}/{injections}"),
            injections.to_string(),
            cell(&post_bd),
        ]);
    }
    table.emit(&args);
}
