//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the per-round cost of each BaFFLe building block
//! at the scales used by the experiment harness, so regressions in the
//! substrates show up before they distort experiment runtimes.

use baffle_data::{Dataset, SyntheticVision, VisionSpec};
use baffle_nn::{Mlp, MlpSpec, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic problem + model fixture shared by the benches.
pub struct Fixture {
    /// The synthetic problem instance.
    pub generator: SyntheticVision,
    /// A labelled dataset drawn from it.
    pub data: Dataset,
    /// A model trained for a few epochs on `data`.
    pub model: Mlp,
    /// A short trajectory of model snapshots (for history-based benches).
    pub history: Vec<Mlp>,
}

/// Builds the standard CIFAR-like bench fixture: 32-d inputs, 10 classes,
/// `samples` data points and a history of `history_len` model snapshots.
pub fn cifar_fixture(samples: usize, history_len: usize, seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = VisionSpec::cifar_like();
    let generator = SyntheticVision::new(&spec, &mut rng);
    let data = generator.generate(&mut rng, samples);
    let mut model = Mlp::new(&MlpSpec::new(spec.input_dim(), &[64], spec.num_classes()), &mut rng);
    let mut opt = Sgd::new(0.1).with_momentum(0.9);
    let mut history = Vec::with_capacity(history_len);
    for _ in 0..history_len {
        model.train_epoch(data.features(), data.labels(), 32, &mut opt, &mut rng);
        history.push(model.clone());
    }
    Fixture { generator, data, model, history }
}

/// Deterministic pseudo-random parameter vector of the given length.
pub fn params(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    baffle_tensor::rng::normal_vec(&mut rng, len, 0.0, 0.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_nn::Model;

    #[test]
    fn fixture_is_deterministic() {
        let a = cifar_fixture(100, 3, 9);
        let b = cifar_fixture(100, 3, 9);
        assert_eq!(a.model.params(), b.model.params());
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn fixture_history_has_requested_length() {
        let f = cifar_fixture(50, 5, 1);
        assert_eq!(f.history.len(), 5);
        assert_eq!(f.data.len(), 50);
    }

    #[test]
    fn params_are_reproducible() {
        assert_eq!(params(16, 3), params(16, 3));
        assert_eq!(params(16, 3).len(), 16);
    }
}
