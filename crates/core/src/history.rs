//! Sliding history of accepted global models.

use baffle_fl::history_sync::ModelId;
use baffle_nn::Mlp;
use std::collections::VecDeque;

/// The last `ℓ + 1` **accepted** global models, oldest first — the
/// `history` input of Algorithms 1 and 2.
///
/// Rejected updates are never pushed: the feedback loop discards them and
/// the history keeps describing the trusted lineage (the paper's
/// "bootstrapping trust across rounds").
///
/// Every accepted model is assigned a monotonically increasing
/// [`ModelId`] on push. Ids are **never reused** — not even after a
/// deferred-validation rollback ([`ModelHistory::pop`]) — which is what
/// makes them safe cache keys for
/// [`crate::engine::ValidationEngine`]. The id sequence matches
/// [`baffle_fl::history_sync::HistorySync`] when both see the same
/// acceptances in the same order.
///
/// # Example
///
/// ```
/// use baffle_core::ModelHistory;
/// use baffle_nn::{Mlp, MlpSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let spec = MlpSpec::new(2, &[], 2);
/// let mut history = ModelHistory::new(3); // ℓ = 2 → capacity 3
/// for _ in 0..5 {
///     history.push(Mlp::new(&spec, &mut rng));
/// }
/// assert_eq!(history.len(), 3);
/// assert!(history.is_full());
/// assert_eq!(history.ids(), &[2, 3, 4]); // oldest two evicted
/// ```
#[derive(Debug, Clone)]
pub struct ModelHistory {
    models: VecDeque<Mlp>,
    ids: VecDeque<ModelId>,
    next_id: ModelId,
    capacity: usize,
}

impl ModelHistory {
    /// Creates an empty history holding at most `capacity = ℓ + 1`
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (Algorithm 2 needs at least two history
    /// models to form one variation vector).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "ModelHistory: capacity must be at least 2, got {capacity}");
        Self {
            models: VecDeque::with_capacity(capacity),
            ids: VecDeque::with_capacity(capacity),
            next_id: 0,
            capacity,
        }
    }

    /// Appends an accepted model, evicting the oldest when full, and
    /// returns the model's freshly assigned id.
    pub fn push(&mut self, model: Mlp) -> ModelId {
        if self.models.len() == self.capacity {
            self.models.pop_front();
            self.ids.pop_front();
        }
        let id = self.next_id;
        self.next_id += 1;
        self.models.push_back(model);
        self.ids.push_back(id);
        // Keep both deques contiguous so `models()`/`ids()` can hand out
        // plain slices. Amortised O(1): a wrap-around only happens after
        // an eviction, which moves at most one element's worth of slack.
        self.models.make_contiguous();
        self.ids.make_contiguous();
        id
    }

    /// The stored models, oldest first.
    pub fn models(&self) -> &[Mlp] {
        self.models.as_slices().0
    }

    /// The stored models' ids, oldest first — parallel to
    /// [`ModelHistory::models`].
    pub fn ids(&self) -> &[ModelId] {
        self.ids.as_slices().0
    }

    /// The most recently accepted model, if any.
    pub fn latest(&self) -> Option<&Mlp> {
        self.models.back()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no models have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Whether the history holds its full `ℓ + 1` models.
    pub fn is_full(&self) -> bool {
        self.models.len() == self.capacity
    }

    /// Maximum number of models retained (`ℓ + 1`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes and returns the most recently accepted model and its id —
    /// the rollback primitive of the deferred-validation mode (§VI-D),
    /// where round `r`'s contributors vote on `G^{r−1}` and a rejection
    /// undoes the previous acceptance.
    ///
    /// The popped id is retired, not recycled: the next
    /// [`ModelHistory::push`] still gets a fresh id, so stale cache
    /// entries keyed by the popped id can never alias a future model.
    pub fn pop(&mut self) -> Option<(ModelId, Mlp)> {
        let model = self.models.pop_back()?;
        let id = self.ids.pop_back().expect("ids parallel to models");
        Some((id, model))
    }

    /// Rebuilds a history from checkpointed `(id, model)` entries,
    /// oldest first, preserving the original ids. The id counter resumes
    /// after the newest entry, so post-restore pushes mint exactly the
    /// ids an uninterrupted run would have.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`, if more than `capacity` entries are
    /// given, or if the ids are not consecutive ascending (a gapped
    /// window is never a valid trusted lineage).
    pub fn from_entries(
        capacity: usize,
        entries: impl IntoIterator<Item = (ModelId, Mlp)>,
    ) -> Self {
        let mut history = Self::new(capacity);
        for (id, model) in entries {
            assert!(
                history.models.len() < capacity,
                "ModelHistory::from_entries: more entries than capacity {capacity}"
            );
            assert!(
                history.ids.back().is_none_or(|&last| last + 1 == id),
                "ModelHistory::from_entries: ids must be consecutive ascending"
            );
            history.models.push_back(model);
            history.ids.push_back(id);
            history.next_id = id + 1;
        }
        history.models.make_contiguous();
        history.ids.make_contiguous();
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_nn::{MlpSpec, Model};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
    }

    #[test]
    fn push_evicts_oldest_beyond_capacity() {
        let mut h = ModelHistory::new(2);
        let (a, b, c) = (model(1), model(2), model(3));
        let a_params = a.params();
        h.push(a);
        h.push(b);
        assert!(h.is_full());
        h.push(c);
        assert_eq!(h.len(), 2);
        // `a` was evicted.
        assert!(h.models().iter().all(|m| m.params() != a_params));
        assert_eq!(h.ids(), &[1, 2]);
    }

    #[test]
    fn latest_is_the_most_recent_push() {
        let mut h = ModelHistory::new(3);
        assert!(h.latest().is_none());
        let b = model(2);
        let b_params = b.params();
        h.push(model(1));
        h.push(b);
        assert_eq!(h.latest().unwrap().params(), b_params);
    }

    #[test]
    fn order_is_oldest_first() {
        let mut h = ModelHistory::new(3);
        let params: Vec<Vec<f32>> = (0..3).map(|i| model(i).params()).collect();
        for i in 0..3 {
            h.push(model(i));
        }
        for (m, p) in h.models().iter().zip(&params) {
            assert_eq!(&m.params(), p);
        }
        assert_eq!(h.ids(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_capacity_panics() {
        let _ = ModelHistory::new(1);
    }

    #[test]
    fn from_entries_resumes_the_id_sequence() {
        let mut h = ModelHistory::new(3);
        for i in 0..5 {
            h.push(model(i));
        }
        let entries: Vec<(ModelId, Mlp)> =
            h.ids().iter().copied().zip(h.models().iter().cloned()).collect();
        let mut restored = ModelHistory::from_entries(3, entries);
        assert_eq!(restored.ids(), h.ids());
        assert_eq!(restored.len(), 3);
        // The next push mints exactly the id the original would have.
        assert_eq!(restored.push(model(9)), h.push(model(9)));
    }

    #[test]
    #[should_panic(expected = "consecutive ascending")]
    fn from_entries_rejects_gapped_ids() {
        let _ = ModelHistory::from_entries(4, [(0, model(0)), (2, model(2))]);
    }

    #[test]
    fn from_entries_with_no_entries_is_a_fresh_history() {
        // Empty window: a server checkpointed before any acceptance.
        let mut restored = ModelHistory::from_entries(3, std::iter::empty());
        assert!(restored.is_empty());
        assert_eq!(restored.ids(), &[] as &[ModelId]);
        // The id counter starts at zero, exactly like `new`.
        assert_eq!(restored.push(model(1)), 0);
    }

    #[test]
    fn from_entries_with_a_single_entry_window() {
        // Single-entry window: one accepted model so far, arbitrary id
        // (the window may have slid past the early models before the
        // checkpoint was cut down to one surviving entry).
        let mut restored = ModelHistory::from_entries(2, [(7, model(7))]);
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.ids(), &[7]);
        assert_eq!(restored.latest().unwrap().params(), model(7).params());
        // The counter resumes after the surviving entry.
        assert_eq!(restored.push(model(8)), 8);
        assert_eq!(restored.ids(), &[7, 8]);
    }

    #[test]
    fn push_returns_monotone_ids() {
        let mut h = ModelHistory::new(2);
        assert_eq!(h.push(model(1)), 0);
        assert_eq!(h.push(model(2)), 1);
        assert_eq!(h.push(model(3)), 2); // eviction does not disturb ids
        assert_eq!(h.ids(), &[1, 2]);
    }

    #[test]
    fn models_and_ids_stay_contiguous_across_wraparound() {
        let mut h = ModelHistory::new(3);
        for i in 0..10 {
            h.push(model(i));
            assert_eq!(h.models().len(), h.len());
            assert_eq!(h.ids().len(), h.len());
        }
        assert_eq!(h.ids(), &[7, 8, 9]);
    }

    #[test]
    fn pop_undoes_the_latest_push() {
        let mut h = ModelHistory::new(3);
        assert!(h.pop().is_none());
        let a = model(1);
        let a_params = a.params();
        h.push(a);
        h.push(model(2));
        let (id, popped) = h.pop().unwrap();
        assert_eq!(id, 1);
        assert_eq!(popped.params(), model(2).params());
        assert_eq!(h.len(), 1);
        assert_eq!(h.latest().unwrap().params(), a_params);
    }

    #[test]
    fn popped_ids_are_never_reused() {
        let mut h = ModelHistory::new(3);
        h.push(model(1));
        h.push(model(2));
        let (id, _) = h.pop().unwrap();
        assert_eq!(id, 1);
        // The next acceptance gets a *fresh* id, not the retired one.
        assert_eq!(h.push(model(3)), 2);
        assert_eq!(h.ids(), &[0, 2]);
    }
}
