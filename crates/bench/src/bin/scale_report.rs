//! Emits a machine-readable deployment-scale summary (`BENCH_scale.json`
//! on CI): wall-clock rounds/sec and peak RSS of an at-scale BaFFLe
//! deployment — tens of thousands of *registered* clients with only a
//! few hundred sampled per round, the regime the event-driven scheduler
//! exists for (thread-per-client tops out around a few hundred nodes).
//!
//! Uses plain `std::time` rather than Criterion so it runs as a normal
//! release binary:
//! `cargo run --release -p baffle-bench --bin scale_report [-- <clients>]`
//! (default 10 000 registered clients; CI smoke uses 2 000).
//!
//! A second, smaller deployment measures failover: the primary crashes
//! mid-round and the report's `recovery_ms` is the wall-clock from that
//! crash to the first round the promoted hot standby gets accepted.

use baffle_net::deployment::{Deployment, DeploymentConfig};
use baffle_tensor::pool;
use std::time::Instant;

/// Peak resident set size in kilobytes, read from `/proc/self/status`
/// (`VmHWM`). `None` off Linux or when the field is absent.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .map(|arg| arg.parse().expect("clients must be a positive integer"))
        .unwrap_or(10_000);

    let config = DeploymentConfig::at_scale(77, clients);
    let contributors = config.clients_per_round;
    let validators = config.validators_per_round;
    let rounds = config.rounds;

    let build_start = Instant::now();
    let parts = Deployment::build(config);
    let build_s = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    let outcome = parts.run();
    let run_s = run_start.elapsed().as_secs_f64();

    assert_eq!(outcome.rounds.len(), rounds as usize, "deployment must finish every round");
    assert!(
        outcome.rounds.iter().all(|r| !r.transport_lost),
        "the in-process transport must survive the run"
    );

    // Failover cost at a reduced scale (the failover driver runs every
    // client through the takeover, so the full population would
    // dominate the report's runtime without changing the number).
    let failover_clients = clients.min(2_000);
    let mut failover_config = DeploymentConfig::at_scale(77, failover_clients);
    failover_config.rounds = 3;
    let wal_dir =
        std::env::temp_dir().join(format!("baffle-scale-failover-{}", std::process::id()));
    let report = Deployment::build(failover_config).run_with_failover(&wal_dir, 2);
    let _ = std::fs::remove_dir_all(&wal_dir);

    // A report with holes is worse than no report: refuse to publish
    // `null` for a measured field rather than let CI archive it.
    let Some(peak_rss_mb) = peak_rss_kb().map(|kb| kb as f64 / 1024.0) else {
        eprintln!("scale_report: peak RSS unavailable (no /proc/self/status VmHWM); refusing to emit null");
        std::process::exit(2);
    };
    let Some(recovery_ms) = report.recovery.map(|d| d.as_secs_f64() * 1e3) else {
        eprintln!("scale_report: no round accepted after failover; refusing to emit null");
        std::process::exit(2);
    };
    println!("{{");
    println!("  \"bench\": \"scale\",");
    println!("  \"threads\": {},", pool::threads());
    println!("  \"registered_clients\": {clients},");
    println!("  \"contributors_per_round\": {contributors},");
    println!("  \"validators_per_round\": {validators},");
    println!("  \"rounds\": {rounds},");
    println!("  \"build_seconds\": {build_s:.3},");
    println!("  \"run_seconds\": {run_s:.3},");
    println!("  \"rounds_per_sec\": {:.3},", rounds as f64 / run_s);
    println!("  \"messages_sent\": {},", outcome.messages_sent);
    println!("  \"peak_rss_mb\": {peak_rss_mb:.1},");
    println!("  \"failover_clients\": {failover_clients},");
    println!("  \"recovery_ms\": {recovery_ms:.1}");
    println!("}}");
}
