//! Property-based tests for the NN substrate.

use baffle_nn::{softmax, softmax_cross_entropy, ConfusionMatrix, Mlp, MlpSpec, Model};
use baffle_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn logits_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-20.0_f32..20.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// Softmax outputs are a probability distribution per row.
    #[test]
    fn softmax_rows_are_distributions(logits in logits_strategy(4, 5)) {
        let p = softmax(&logits);
        for r in 0..p.rows() {
            let row = p.row(r);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to 0.
    #[test]
    fn cross_entropy_invariants(logits in logits_strategy(3, 4), labels in prop::collection::vec(0usize..4, 3)) {
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= -1e-6);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    /// params/set_params round-trips exactly for arbitrary architectures.
    #[test]
    fn param_roundtrip(hidden in prop::collection::vec(1usize..8, 0..3), seed in 0u64..1000) {
        let spec = MlpSpec::new(3, &hidden, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mlp::new(&spec, &mut rng);
        let mut b = Mlp::new(&spec, &mut rng);
        b.set_params(&a.params());
        prop_assert_eq!(a.params(), b.params());
    }

    /// Spec::num_params always matches the materialised model.
    #[test]
    fn spec_param_count(hidden in prop::collection::vec(1usize..10, 0..4), classes in 2usize..6, input in 1usize..9) {
        let spec = MlpSpec::new(input, &hidden, classes);
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&spec, &mut rng);
        prop_assert_eq!(m.params().len(), spec.num_params());
    }

    /// Confusion-matrix identities: total preserved, accuracy + error = 1,
    /// source and target errors each sum to the total error.
    #[test]
    fn confusion_identities(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..60)) {
        let mut cm = ConfusionMatrix::new(4);
        for &(t, p) in &pairs {
            cm.record(t, p);
        }
        prop_assert_eq!(cm.total(), pairs.len() as u64);
        prop_assert!((cm.accuracy() + cm.error() - 1.0).abs() < 1e-5);
        let s: f32 = cm.source_errors().iter().sum();
        let t: f32 = cm.target_errors().iter().sum();
        prop_assert!((s - cm.error()).abs() < 1e-5);
        prop_assert!((t - cm.error()).abs() < 1e-5);
    }

    /// Predictions are always valid class indices.
    #[test]
    fn predictions_in_range(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mlp::new(&MlpSpec::new(5, &[7], 3), &mut rng);
        let x = baffle_tensor::rng::normal_matrix(&mut rng, 10, 5, 1.0);
        let preds = m.predict_batch(&x);
        prop_assert_eq!(preds.len(), 10);
        prop_assert!(preds.iter().all(|&p| p < 3));
    }

    /// Wire codecs: f32 is lossless; q8 error bounded by its step size.
    #[test]
    fn wire_roundtrip(p in prop::collection::vec(-5.0_f32..5.0, 0..200)) {
        let exact = baffle_nn::wire::decode_f32(&baffle_nn::wire::encode_f32(&p)).unwrap();
        prop_assert_eq!(&exact, &p);
        let q = baffle_nn::wire::decode_q8(&baffle_nn::wire::encode_q8(&p)).unwrap();
        prop_assert_eq!(q.len(), p.len());
        if !p.is_empty() {
            let lo = p.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let step = ((hi - lo) / 254.0).max(1e-12);
            for (a, b) in p.iter().zip(&q) {
                prop_assert!((a - b).abs() <= step + 1e-6);
            }
        }
    }
}
