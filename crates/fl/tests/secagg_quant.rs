//! Secure aggregation under wire quantisation.
//!
//! BaFFLe's compatibility claim (§VIII) needs the pairwise masks to
//! cancel in the *transmitted* sum, not the in-memory one. Quantising a
//! masked update perturbs every element by at most half a quantisation
//! step, and those perturbations add — they do not interact with the
//! masks — so the aggregate of quantise-then-decode updates must stay
//! within the summed step sizes of the plaintext total. These property
//! tests pin that down for the q8 and q4 codecs across random sessions.

use baffle_fl::secagg::SecAggSession;
use baffle_nn::wire::{self, Codec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_updates(seed: u64, n: usize, len: usize, scale: f32) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..len).map(|_| rng.gen_range(-scale..scale)).collect()).collect()
}

/// One quantisation step of `codec` for the value range of `values`.
fn step(codec: Codec, values: &[f32]) -> f32 {
    let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let levels = match codec {
        Codec::F32 => return 0.0,
        Codec::Q8 => 254.0,
        Codec::Q4 => 15.0,
    };
    ((hi - lo) / levels).max(f32::MIN_POSITIVE)
}

fn masks_cancel_under(codec: Codec, seed: u64, n: usize, len: usize, scale: f32) {
    let ups = random_updates(seed, n, len, scale);
    let session = SecAggSession::new(seed ^ 0xABCD_EF01, n, len);

    // Mask, ship through the codec, decode at the server, aggregate.
    let mut sum_steps = 0.0_f32;
    let received: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let masked = session.mask(i, &ups[i]);
            sum_steps += step(codec, &masked);
            wire::decode_any(&codec.encode(&masked)).expect("finite masked update decodes")
        })
        .collect();
    let sum = session.aggregate(&received);

    let mut expected = vec![0.0_f32; len];
    for u in &ups {
        for (e, &v) in expected.iter_mut().zip(u) {
            *e += v;
        }
    }

    // Per element: n quantisation errors of at most one step each, plus
    // the mask-cancellation float slop the lossless path already allows.
    let tolerance = sum_steps + 1e-2 * n as f32;
    for (i, (a, b)) in sum.iter().zip(&expected).enumerate() {
        assert!(
            (a - b).abs() <= tolerance,
            "element {i}: {a} vs {b} exceeds tolerance {tolerance} ({} codec, n={n}, len={len})",
            codec.label()
        );
    }
}

proptest! {
    /// Pairwise masks cancel in the aggregate after q8 transmission.
    #[test]
    fn masks_cancel_under_q8(seed in any::<u64>(), n in 1usize..6, len in 1usize..48, scale in 0.1_f32..4.0) {
        masks_cancel_under(Codec::Q8, seed, n, len, scale);
    }

    /// Same under the coarser q4 codec — the bound widens with the step
    /// size but the masks still cancel.
    #[test]
    fn masks_cancel_under_q4(seed in any::<u64>(), n in 1usize..6, len in 1usize..48, scale in 0.1_f32..4.0) {
        masks_cancel_under(Codec::Q4, seed, n, len, scale);
    }

    /// Quantisation must not undo the hiding: a quantised masked update
    /// still does not resemble its plaintext (more than one participant,
    /// long enough vectors for the distance to be meaningful).
    #[test]
    fn quantisation_preserves_hiding(seed in any::<u64>(), n in 2usize..6) {
        let len = 64;
        let ups = random_updates(seed, n, len, 1.0);
        let session = SecAggSession::new(seed.rotate_left(17), n, len);
        for (i, u) in ups.iter().enumerate() {
            let shipped = wire::decode_any(&Codec::Q8.encode(&session.mask(i, u))).unwrap();
            let dist = baffle_tensor::ops::distance(&shipped, u);
            prop_assert!(dist > 0.5, "client {}'s quantised masked update is too close: {}", i, dist);
        }
    }
}
