//! Detection metrics: false-positive / false-negative rates and
//! aggregation across repeated experiments.

use serde::{Deserialize, Serialize};

/// Per-run detection counts, classified against ground truth.
///
/// - a **false positive** is a *clean* update rejected by the defense;
/// - a **false negative** is a *poisoned* update accepted by the defense.
///
/// # Example
///
/// ```
/// use baffle_core::metrics::DetectionCounts;
///
/// let mut c = DetectionCounts::default();
/// c.record(false, true);  // clean, rejected  → FP
/// c.record(false, false); // clean, accepted  → TN
/// c.record(true, true);   // poisoned, rejected → TP
/// c.record(true, false);  // poisoned, accepted → FN
/// assert_eq!(c.false_positive_rate(), 0.5);
/// assert_eq!(c.false_negative_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectionCounts {
    true_positives: usize,
    false_positives: usize,
    true_negatives: usize,
    false_negatives: usize,
}

impl DetectionCounts {
    /// Records one defended round: whether the update was actually
    /// poisoned, and whether the defense rejected it.
    pub fn record(&mut self, poisoned: bool, rejected: bool) {
        match (poisoned, rejected) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Clean updates wrongly rejected, over all clean updates; 0 when no
    /// clean update was seen.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.false_positives, self.false_positives + self.true_negatives)
    }

    /// Poisoned updates wrongly accepted, over all poisoned updates; 0
    /// when no poisoned update was seen.
    pub fn false_negative_rate(&self) -> f64 {
        ratio(self.false_negatives, self.false_negatives + self.true_positives)
    }

    /// Fraction of all updates classified correctly; 0 when nothing was
    /// recorded.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }

    /// Total updates recorded.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Number of poisoned updates seen.
    pub fn poisoned(&self) -> usize {
        self.true_positives + self.false_negatives
    }

    /// Number of clean updates seen.
    pub fn clean(&self) -> usize {
        self.true_negatives + self.false_positives
    }

    /// Number of false positives.
    pub fn false_positives(&self) -> usize {
        self.false_positives
    }

    /// Number of false negatives.
    pub fn false_negatives(&self) -> usize {
        self.false_negatives
    }

    /// Merges another run's counts into this one.
    pub fn merge(&mut self, other: &DetectionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Mean and (population) standard deviation of a sample — the `x ± σ`
/// entries of Table I.
///
/// Returns `(0, 0)` for an empty slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_no_observations_are_zero() {
        let c = DetectionCounts::default();
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.false_negative_rate(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn perfect_detection() {
        let mut c = DetectionCounts::default();
        for _ in 0..10 {
            c.record(false, false);
        }
        for _ in 0..3 {
            c.record(true, true);
        }
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.false_negative_rate(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.poisoned(), 3);
        assert_eq!(c.clean(), 10);
    }

    #[test]
    fn rates_are_conditional_on_ground_truth() {
        let mut c = DetectionCounts::default();
        c.record(false, true); // FP among 2 clean
        c.record(false, false);
        c.record(true, false); // FN among 1 poisoned
        assert_eq!(c.false_positive_rate(), 0.5);
        assert_eq!(c.false_negative_rate(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DetectionCounts::default();
        a.record(true, true);
        let mut b = DetectionCounts::default();
        b.record(true, false);
        a.merge(&b);
        assert_eq!(a.poisoned(), 2);
        assert_eq!(a.false_negative_rate(), 0.5);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_std_empty_and_singleton() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (m, s) = mean_std(&[7.0]);
        assert_eq!(m, 7.0);
        assert_eq!(s, 0.0);
    }
}
