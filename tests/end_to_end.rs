//! Cross-crate integration tests: the full pipeline from synthetic data
//! through federated training, attack injection and the BaFFLe defense.

use baffle::attack::{BackdoorSpec, ModelReplacement};
use baffle::core::{
    AttackKind, Decision, DefenseMode, Simulation, SimulationConfig, ValidationConfig, Validator,
};
use baffle::data::{SyntheticVision, VisionSpec};
use baffle::nn::{Mlp, MlpSpec, Model, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn defended_run_catches_injections_and_accepts_clean_rounds() {
    let mut config = SimulationConfig::cifar_like_small(101);
    config.poison_rounds = vec![5, 8];
    let report = Simulation::new(config).run();

    for r in &report.records {
        if r.poisoned {
            assert_eq!(r.decision, Decision::Rejected, "injection at round {} missed", r.round);
        }
    }
    assert_eq!(report.false_negatives(), 0);
    // The miniature scenario tolerates at most one clean-round FP.
    assert!(report.false_positives() <= 1, "too many FPs: {}", report.false_positives());
}

#[test]
fn rejected_rounds_do_not_advance_the_global_model() {
    let mut config = SimulationConfig::cifar_like_small(102);
    config.track_accuracy = true;
    config.poison_rounds = vec![5];
    let mut sim = Simulation::new(config);
    let before = sim.global_model().params();
    // Advance to just before the poison round.
    for _ in 0..4 {
        sim.step();
    }
    let pre_poison = sim.global_model().params();
    assert_ne!(before, pre_poison, "clean rounds should change the model");
    let record = sim.step();
    assert!(record.poisoned);
    if record.decision == Decision::Rejected {
        assert_eq!(
            sim.global_model().params(),
            pre_poison,
            "rejected update must leave the global model unchanged"
        );
    }
}

#[test]
fn dos_voters_cannot_stall_training_below_quorum() {
    use baffle::attack::voting::VoterBehavior;
    let mut config = SimulationConfig::cifar_like_small(103);
    config.poison_rounds = vec![];
    // 2 of 20 clients are DoS voters — on average 0.6 of the 6 selected
    // validators per round, far below the quorum of 3 (the §IV-B bound
    // n_M < q is respected in expectation).
    config.malicious_clients = 2;
    config.malicious_voter_behavior = VoterBehavior::DenialOfService;
    let report = Simulation::new(config).run();
    let rejected = report.records.iter().filter(|r| !r.decision.is_accepted()).count();
    assert!(rejected <= 2, "DoS minority stalled {rejected} of {} rounds", report.rounds_run);
}

#[test]
fn quorum_protects_against_a_malicious_server_share_of_voters() {
    use baffle::attack::voting::VoterBehavior;
    // All validators malicious-accept ⇒ poisoned model sails through
    // client votes; only the server's own vote can reject, but q = 3
    // cannot be met ⇒ false negative. This documents the honest-majority
    // assumption rather than a defect.
    let mut config = SimulationConfig::cifar_like_small(104);
    config.malicious_clients = config.num_clients; // everyone colludes
    config.malicious_voter_behavior = VoterBehavior::StealthAccept;
    config.poison_rounds = vec![6];
    let report = Simulation::new(config).run();
    assert_eq!(report.false_negatives(), 1, "collusion above the quorum must win");
}

#[test]
fn validator_flags_label_flip_against_an_sgd_trajectory() {
    let mut rng = StdRng::seed_from_u64(105);
    let spec = VisionSpec::new(6, 16, 2);
    let gen = SyntheticVision::new(&spec, &mut rng);
    let train = gen.generate(&mut rng, 3_000);
    let validation = gen.generate(&mut rng, 400);

    let mut model = Mlp::new(&MlpSpec::new(16, &[24], 6), &mut rng);
    let mut opt = Sgd::new(0.05).with_momentum(0.9);
    let mut history = Vec::new();
    for _ in 0..12 {
        model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
        history.push(model.clone());
    }

    let validator = Validator::new(ValidationConfig::new(10));
    let backdoor = BackdoorSpec::label_flip(1, 4);
    let attack = ModelReplacement::new(backdoor, 1.0);
    let backdoor_data = gen.generate_class(&mut rng, 120, 1);
    let poisoned = attack.train_backdoored(&model, &train, &backdoor_data, &mut rng);

    let verdict = validator.validate(&poisoned, &history, &validation).unwrap();
    assert!(verdict.is_reject(), "label-flip backdoor not flagged");
}

#[test]
fn adaptive_attack_beats_server_less_often_than_it_beats_itself() {
    // The adaptive attacker always convinces itself (self_accepted) —
    // the question is whether honest validators still catch it.
    let mut config = SimulationConfig::cifar_like_small(106);
    config.attack = AttackKind::Adaptive;
    config.defense = DefenseMode::Both;
    config.poison_rounds = vec![5, 8, 10];
    let report = Simulation::new(config).run();
    let self_accepted =
        report.records.iter().filter(|r| r.adaptive_self_accepted == Some(true)).count();
    let caught = report.records.iter().filter(|r| r.poisoned && !r.decision.is_accepted()).count();
    assert!(self_accepted >= 1, "adaptive attacker never found a self-accepted update");
    assert!(caught >= 2, "feedback loop caught only {caught}/3 adaptive injections");
}

#[test]
fn umbrella_reexports_compose() {
    // Type-level smoke test: umbrella paths compose across crates.
    let mut rng = StdRng::seed_from_u64(107);
    let m = baffle::nn::Mlp::new(&baffle::nn::MlpSpec::new(4, &[8], 3), &mut rng);
    let p = m.params();
    let bytes = baffle::nn::wire::encode_f32(&p);
    let back = baffle::nn::wire::decode_f32(&bytes).unwrap();
    assert_eq!(p, back);
    let lof = baffle::lof::lof_against(
        &[0.0, 0.0],
        &[vec![0.0, 0.1], vec![0.1, 0.0], vec![0.0, -0.1]],
        2,
    );
    assert!(lof.unwrap() > 0.0);
}
