//! Fuzzing for the message frame codec: arbitrary byte strings must
//! decode or error — never panic — strategy-generated envelopes of every
//! variant must roundtrip, and every single-bit flip on a valid frame
//! must surface as an error, with flips in the checksummed body reported
//! as [`DecodeErrorKind::Corrupted`].

use baffle_attack::voting::Vote;
use baffle_net::frame::{
    decode_frame, encode_frame, FrameReader, FRAME_HEADER, FRAME_MAGIC, FRAME_VERSION,
};
use baffle_net::message::{AbstainReason, HistoryEntry, Message, NodeId};
use baffle_net::transport::Envelope;
use baffle_nn::wire::DecodeErrorKind;
use bytes::Bytes;
use proptest::prelude::*;

fn payload() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn abstain_reason() -> impl Strategy<Value = AbstainReason> {
    prop_oneof![
        Just(AbstainReason::UndecodableGlobal),
        Just(AbstainReason::EmptyShard),
        Just(AbstainReason::UndecodableCandidate),
        Just(AbstainReason::HistoryTooShort),
        Just(AbstainReason::NoValidationData),
        Just(AbstainReason::DegenerateAnalysis),
    ]
}

fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), payload())
            .prop_map(|(round, global)| Message::TrainRequest { round, global }),
        (any::<u64>(), any::<u32>(), payload()).prop_map(|(round, from, update)| {
            Message::UpdateSubmission { round, from: NodeId(from), update }
        }),
        (any::<u64>(), payload(), prop::collection::vec((any::<u64>(), payload()), 0..4)).prop_map(
            |(round, candidate, entries)| Message::ValidateRequest {
                round,
                candidate,
                history_delta: entries
                    .into_iter()
                    .map(|(id, params)| HistoryEntry { id, params })
                    .collect(),
            }
        ),
        (any::<u64>(), any::<u32>(), any::<bool>()).prop_map(|(round, from, accept)| {
            Message::VoteSubmission {
                round,
                from: NodeId(from),
                vote: if accept { Vote::Accept } else { Vote::Reject },
            }
        }),
        (any::<u64>(), any::<u32>(), abstain_reason()).prop_map(|(round, from, reason)| {
            Message::Abstain { round, from: NodeId(from), reason }
        }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(round, accepted)| Message::RoundResult { round, accepted }),
        Just(Message::Shutdown),
    ]
}

fn envelope() -> impl Strategy<Value = Envelope> {
    (any::<u32>(), any::<u32>(), message()).prop_map(|(from, to, message)| Envelope {
        from: NodeId(from),
        to: NodeId(to),
        message,
    })
}

/// Drains a byte stream through [`FrameReader`] until EOF or the first
/// error, with an iteration cap as a runaway guard.
fn drain_reader(bytes: &[u8]) {
    let mut reader = FrameReader::new(std::io::Cursor::new(bytes.to_vec()));
    for _ in 0..64 {
        match reader.read_frame() {
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => return,
        }
    }
}

proptest! {
    /// Neither the one-shot decoder nor the stream reader panics on
    /// arbitrary input.
    #[test]
    fn frame_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&bytes);
        drain_reader(&bytes);
    }

    /// Same, with a valid magic and version spliced in front so decoding
    /// gets past the first gates and exercises the length, checksum and
    /// body paths.
    #[test]
    fn frame_decoder_never_panics_past_the_magic(
        tail in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = Vec::with_capacity(8 + tail.len());
        bytes.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let _ = decode_frame(&bytes);
        drain_reader(&bytes);
    }

    /// Every strategy-generated envelope roundtrips, both through the
    /// one-shot decoder and cut off a concatenated stream.
    #[test]
    fn arbitrary_envelopes_roundtrip(envs in prop::collection::vec(envelope(), 1..4)) {
        let mut stream = Vec::new();
        for env in &envs {
            let frame = encode_frame(env);
            prop_assert_eq!(&decode_frame(&frame).unwrap(), env);
            stream.extend_from_slice(&frame);
        }
        let mut reader = FrameReader::new(std::io::Cursor::new(stream));
        for env in &envs {
            prop_assert_eq!(&reader.read_frame().unwrap().unwrap(), env);
        }
        prop_assert!(reader.read_frame().unwrap().is_none());
    }

    /// A single-bit flip anywhere in a frame never decodes; flips in the
    /// checksummed body are reported as corruption.
    #[test]
    fn single_bit_flips_are_detected(
        env in envelope(),
        bit in 0usize..8,
        seed in any::<prop::sample::Index>(),
    ) {
        let frame = encode_frame(&env);
        let at = seed.index(frame.len());
        let mut damaged = frame.to_vec();
        damaged[at] ^= 1 << bit;
        let err = decode_frame(&damaged).expect_err("flip must not decode");
        if at >= FRAME_HEADER {
            prop_assert_eq!(err.kind(), DecodeErrorKind::Corrupted, "flip at {}", at);
        }
    }

    /// Truncations of a valid frame never decode and never panic.
    #[test]
    fn truncations_never_decode(env in envelope()) {
        let frame = encode_frame(&env);
        for cut in 0..frame.len() {
            prop_assert!(decode_frame(&frame[..cut]).is_err(), "cut at {}", cut);
        }
    }
}
