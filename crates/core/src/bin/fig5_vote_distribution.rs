//! Regenerates **Figure 5**: the distribution of reject votes cast by the
//! validating clients on adaptively poisoned models, for the three
//! CIFAR-like data splits.
//!
//! The paper uses this to estimate ρ (the fraction of honest validators
//! that judge a poisoned model correctly) and from it the tolerable
//! number of malicious clients.
//!
//! Run with `cargo run --release -p baffle-core --bin fig5_vote_distribution`.

use baffle_core::exp::{base_config, server_shares, split_label, ExpArgs, Table};
use baffle_core::{AttackKind, DatasetKind, DefenseMode, Simulation, Vote};

fn main() {
    let args = ExpArgs::from_env();
    let validators = 10;
    let mut table = Table::new(
        "Figure 5 (CifarLike): client reject votes on adaptively poisoned models (ℓ = 20)",
        &["split", "votes=0-2", "3-4", "5-6", "7-8", "9-10", "min", "median", "rho"],
    );
    for share in server_shares(DatasetKind::CifarLike) {
        let mut votes: Vec<usize> = Vec::new();
        for rep in 0..args.reps() {
            let mut config =
                base_config(DatasetKind::CifarLike, args.seed.wrapping_add(1000 * rep as u64));
            config.server_share = share;
            config.defense = DefenseMode::Both;
            config.attack = AttackKind::Adaptive;
            config.validators_per_round = validators;
            if args.fast {
                config.rounds = 20;
                config.poison_rounds = vec![10, 15];
            }
            let mut sim = Simulation::new(config);
            let report = sim.run();
            for r in &report.records {
                if r.poisoned && r.defense_active {
                    // Count client votes only (subtract the server's
                    // reject, if any) to match the paper's figure.
                    let server_reject = matches!(r.server_vote, Some(Vote::Reject)) as usize;
                    votes.push(r.reject_votes - server_reject);
                }
            }
        }
        let bucket = |lo: usize, hi: usize| votes.iter().filter(|&&v| v >= lo && v <= hi).count();
        let mut sorted = votes.clone();
        sorted.sort_unstable();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        let min = sorted.first().copied().unwrap_or(0);
        // ρ: mean fraction of validators that (correctly) rejected.
        let rho = if votes.is_empty() {
            0.0
        } else {
            votes.iter().sum::<usize>() as f64 / (votes.len() * validators) as f64
        };
        table.row(vec![
            split_label(share),
            bucket(0, 2).to_string(),
            bucket(3, 4).to_string(),
            bucket(5, 6).to_string(),
            bucket(7, 8).to_string(),
            bucket(9, 10).to_string(),
            min.to_string(),
            median.to_string(),
            format!("{rho:.2}"),
        ]);
    }
    table.emit(&args);
}
