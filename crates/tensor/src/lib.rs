//! Dense matrix and flat-vector math kernels for the BaFFLe reproduction.
//!
//! This crate provides the minimal linear-algebra substrate needed to train
//! small neural networks entirely in Rust: a row-major [`Matrix`] of `f32`
//! with the multiply/transpose/broadcast kernels used by backpropagation,
//! plus flat `[f32]` vector helpers ([`ops`]) used by the federated-learning
//! layer to average, scale and mask model parameters.
//!
//! No external BLAS is used. Matrix products dispatch into the
//! cache-blocked kernels of [`gemm`] — by default through the explicit
//! 8-wide micro-kernels of [`simd`] (AVX2 selected at runtime where
//! available; `BAFFLE_NO_SIMD=1` opts out) — and row-band large
//! products across a process-wide worker pool ([`pool`], sized by the
//! `BAFFLE_THREADS` environment variable), falling back to the serial
//! kernels below a size threshold so small LOF/feedback math pays zero
//! overhead. Every default path is bit-identical to the naive serial
//! reference, so seeded experiments reproduce exactly at any thread
//! count and on any instruction set. The one deliberate exception is
//! the opt-in `BAFFLE_FAST_MATH` tier (see [`gemm::fast_math_enabled`]):
//! FMA-contracted kernels with a relaxed accumulation order that stay
//! deterministic and within a proven error bound of the exact result,
//! but are not bit-compatible with it.
//!
//! # Example
//!
//! ```
//! use baffle_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod matrix;

pub mod gemm;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod simd;

pub use matrix::{Matrix, MatrixView, Workspace};
