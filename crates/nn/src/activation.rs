//! Pointwise activation functions.

use serde::{Deserialize, Serialize};

/// A pointwise activation function applied after a dense layer.
///
/// # Example
///
/// ```
/// use baffle_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-3.0), 0.0);
/// assert_eq!(Activation::Relu.apply(2.0), 2.0);
/// assert_eq!(Activation::Identity.derivative(123.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op activation, used for the output (logits) layer.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation expressed in terms of the
    /// *pre-activation* input `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(1.5), 1.5);
    }

    #[test]
    fn relu_derivative_is_step() {
        assert_eq!(Activation::Relu.derivative(-0.1), 0.0);
        assert_eq!(Activation::Relu.derivative(0.1), 1.0);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let x = 0.37_f32;
        let eps = 1e-3;
        let fd = (Activation::Tanh.apply(x + eps) - Activation::Tanh.apply(x - eps)) / (2.0 * eps);
        assert!((Activation::Tanh.derivative(x) - fd).abs() < 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        assert_eq!(Activation::Identity.apply(7.0), 7.0);
        assert_eq!(Activation::Identity.derivative(7.0), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Tanh.to_string(), "tanh");
    }
}
