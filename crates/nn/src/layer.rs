//! Fully-connected (dense) layer with manual backpropagation.

use crate::Activation;
use baffle_tensor::{rng, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = act(x · W + b)` with cached forward state for
/// backpropagation.
///
/// Weights are stored as an `in_dim × out_dim` matrix so a batch
/// (`batch × in_dim`) multiplies on the left.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    activation: Activation,
    /// Input of the latest `forward_train` call (needed for dW).
    #[serde(skip)]
    cached_input: Option<Matrix>,
    /// Pre-activation of the latest `forward_train` call (needed for dact).
    #[serde(skip)]
    cached_pre: Option<Matrix>,
    /// Weight gradient from the latest `backward` call.
    #[serde(skip)]
    grad_w: Option<Matrix>,
    /// Bias gradient from the latest `backward` call.
    #[serde(skip)]
    grad_b: Option<Vec<f32>>,
}

impl Dense {
    /// Creates a dense layer with He-initialised weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            w: rng::he_init(rng, in_dim, out_dim),
            b: vec![0.0; out_dim],
            activation,
            cached_input: None,
            cached_pre: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of scalar parameters (`in_dim * out_dim + out_dim`).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Inference-only forward pass (no state is cached).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let act = self.activation;
        pre.map_assign(|v| act.apply(v));
        pre
    }

    /// Training forward pass; caches the input and pre-activation for a
    /// subsequent [`Dense::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        self.cached_input = Some(x.clone());
        let act = self.activation;
        let out = pre.map(|v| act.apply(v));
        self.cached_pre = Some(pre);
        out
    }

    /// Backward pass. `grad_out` is ∂L/∂y for the latest
    /// [`Dense::forward_train`] batch; returns ∂L/∂x and stores the weight
    /// and bias gradients for [`Dense::apply_grads`].
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_train`, or if `grad_out` has the
    /// wrong shape.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input =
            self.cached_input.as_ref().expect("Dense::backward called before forward_train");
        let pre = self.cached_pre.as_ref().expect("pre-activation cache missing");
        assert_eq!(
            grad_out.shape(),
            pre.shape(),
            "Dense::backward: grad shape {:?} != output shape {:?}",
            grad_out.shape(),
            pre.shape()
        );

        // δ = grad_out ⊙ act'(pre)
        let act = self.activation;
        let mut delta = pre.map(|v| act.derivative(v));
        delta.hadamard_assign(grad_out);

        // dW = xᵀ δ, db = column sums of δ, dx = δ Wᵀ.
        self.grad_w = Some(input.matmul_tn(&delta));
        self.grad_b = Some(delta.sum_rows());
        delta.matmul_nt(&self.w)
    }

    /// Applies the stored gradients with the given update rule
    /// (`param -= step(param, grad)` is handled by the caller through the
    /// closure; this method only exposes parameter/gradient pairs).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::backward`].
    pub fn apply_grads(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        let gw = self.grad_w.take().expect("Dense::apply_grads called before backward");
        let gb = self.grad_b.take().expect("bias gradient missing");
        for (p, &g) in self.w.as_mut_slice().iter_mut().zip(gw.as_slice()) {
            f(p, g);
        }
        for (p, &g) in self.b.iter_mut().zip(&gb) {
            f(p, g);
        }
    }

    /// Appends this layer's parameters to `out` (weights row-major, then
    /// bias).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Reads this layer's parameters from the front of `p`, returning the
    /// remainder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is shorter than [`Dense::num_params`].
    pub fn read_params<'a>(&mut self, p: &'a [f32]) -> &'a [f32] {
        let nw = self.w.len();
        let nb = self.b.len();
        assert!(p.len() >= nw + nb, "Dense::read_params: need {} values, got {}", nw + nb, p.len());
        self.w.as_mut_slice().copy_from_slice(&p[..nw]);
        self.b.copy_from_slice(&p[nw..nw + nb]);
        &p[nw + nb..]
    }

    /// Drops cached activations and gradients (e.g. before serialising).
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_pre = None;
        self.grad_w = None;
        self.grad_b = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(in_dim: usize, out_dim: usize, act: Activation) -> Dense {
        let mut rng = StdRng::seed_from_u64(11);
        Dense::new(in_dim, out_dim, act, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let l = layer(4, 3, Activation::Relu);
        let x = Matrix::zeros(5, 4);
        assert_eq!(l.forward(&x).shape(), (5, 3));
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut l = layer(4, 3, Activation::Tanh);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
        let a = l.forward(&x);
        let b = l.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn param_roundtrip() {
        let l = layer(3, 2, Activation::Identity);
        let mut p = Vec::new();
        l.write_params(&mut p);
        assert_eq!(p.len(), l.num_params());
        let mut l2 = layer(3, 2, Activation::Identity);
        let rest = l2.read_params(&p);
        assert!(rest.is_empty());
        let mut p2 = Vec::new();
        l2.write_params(&mut p2);
        assert_eq!(p, p2);
    }

    /// Numerical gradient check: perturb each weight and compare the loss
    /// change against the analytic gradient.
    #[test]
    fn gradient_check_identity_activation() {
        gradient_check(Activation::Identity);
    }

    #[test]
    fn gradient_check_tanh_activation() {
        gradient_check(Activation::Tanh);
    }

    fn gradient_check(act: Activation) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Dense::new(3, 2, act, &mut rng);
        let x = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        // Loss = sum of outputs, so grad_out = ones.
        let loss = |l: &Dense| l.forward(&x).as_slice().iter().sum::<f32>();

        l.forward_train(&x);
        let ones = Matrix::filled(4, 2, 1.0);
        let dx = l.backward(&ones);

        // Check weight gradients against finite differences.
        let mut analytic = Vec::new();
        {
            let gw = l.grad_w.clone().unwrap();
            analytic.extend_from_slice(gw.as_slice());
            analytic.extend_from_slice(l.grad_b.as_ref().unwrap());
        }
        let mut p = Vec::new();
        l.write_params(&mut p);
        let eps = 1e-3;
        for i in 0..p.len() {
            let mut plus = p.clone();
            plus[i] += eps;
            let mut minus = p.clone();
            minus[i] -= eps;
            let mut lp = l.clone();
            lp.read_params(&plus);
            let mut lm = l.clone();
            lm.read_params(&minus);
            let fd = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2,
                "param {i}: finite diff {fd} vs analytic {}",
                analytic[i]
            );
        }

        // Check input gradient for one entry.
        let mut xp = x.clone();
        xp[(0, 0)] += eps;
        let mut xm = x.clone();
        xm[(0, 0)] -= eps;
        let fd = (l.forward(&xp).as_slice().iter().sum::<f32>()
            - l.forward(&xm).as_slice().iter().sum::<f32>())
            / (2.0 * eps);
        assert!((fd - dx[(0, 0)]).abs() < 2e-2, "dx finite diff {fd} vs {}", dx[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "before forward_train")]
    fn backward_without_forward_panics() {
        let mut l = layer(2, 2, Activation::Relu);
        let _ = l.backward(&Matrix::zeros(1, 2));
    }
}
