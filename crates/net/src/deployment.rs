//! End-to-end threaded deployment harness.

use crate::client::{Client, ClientRole};
use crate::message::NodeId;
use crate::server::{Server, ServerConfig, ServerRound};
use crate::transport::Network;
use baffle_attack::voting::VoterBehavior;
use baffle_attack::{BackdoorSpec, ModelReplacement};
use baffle_core::{ValidationConfig, Validator};
use baffle_data::{partition, SyntheticVision, VisionSpec};
use baffle_fl::{FlConfig, LocalTrainer};
use baffle_nn::{eval, Mlp, MlpSpec, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Configuration of a threaded protocol deployment (CIFAR-like semantic
/// backdoor scenario).
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Master seed.
    pub seed: u64,
    /// Total clients `N`.
    pub num_clients: usize,
    /// Contributors per round `n`.
    pub clients_per_round: usize,
    /// Validators per round.
    pub validators_per_round: usize,
    /// Quorum threshold `q`.
    pub quorum: usize,
    /// Look-back window ℓ.
    pub lookback: usize,
    /// Protocol rounds to run.
    pub rounds: u64,
    /// Number of attacker-controlled clients (ids `0..malicious`); they
    /// poison whenever selected as contributors and stealth-accept as
    /// validators.
    pub malicious_clients: usize,
    /// Honest-pool size.
    pub total_train: usize,
    /// Server's data share.
    pub server_share: f64,
    /// Hidden widths of the model substrate.
    pub hidden: Vec<usize>,
    /// Central warm-up epochs before the protocol starts.
    pub warmup_central_epochs: usize,
    /// Per-message drop probability of the simulated network.
    pub drop_prob: f64,
    /// Per-phase server timeout.
    pub phase_timeout: Duration,
    /// Trust-bootstrapping rounds: contributors are drawn from the
    /// honest (operator-vetted) clients until the accepted-model history
    /// is deep enough for validation (paper §IV-B).
    pub bootstrap_rounds: u64,
}

impl DeploymentConfig {
    /// A miniature deployment that runs in seconds (used by doctests and
    /// integration tests): 8 clients, one attacker, 6 rounds.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            num_clients: 8,
            clients_per_round: 4,
            validators_per_round: 4,
            quorum: 2,
            lookback: 4,
            rounds: 6,
            malicious_clients: 1,
            total_train: 800,
            server_share: 0.1,
            hidden: vec![16],
            warmup_central_epochs: 10,
            drop_prob: 0.0,
            phase_timeout: Duration::from_secs(20),
            bootstrap_rounds: 5,
        }
    }
}

/// Outcome of a deployment run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOutcome {
    /// Per-round server observations.
    pub rounds: Vec<ServerRound>,
    /// Main-task accuracy of the final global model.
    pub final_main_accuracy: f32,
    /// Backdoor accuracy of the final global model.
    pub final_backdoor_accuracy: f32,
    /// Total messages handed to the transport.
    pub messages_sent: u64,
    /// Messages lost to the simulated network.
    pub messages_dropped: u64,
}

/// Runs a full threaded deployment: one server thread (the caller's) and
/// `num_clients` client threads exchanging wire-encoded messages.
#[derive(Debug)]
pub struct Deployment;

impl Deployment {
    /// Materialises data and models, spawns the actors, runs the
    /// configured number of rounds, shuts down and reports.
    pub fn run(config: DeploymentConfig) -> DeploymentOutcome {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let spec = VisionSpec::cifar_like();
        let generator = SyntheticVision::new(&spec, &mut rng);
        let backdoor = BackdoorSpec::semantic(1, 0, 2);
        let pool = generator.generate_excluding(&mut rng, config.total_train, 1, 0);
        let (shards, server_data) = partition::client_server_split(
            &mut rng,
            &pool,
            config.num_clients,
            0.9,
            config.server_share,
        );
        let test = generator.generate_excluding(&mut rng, 400, 1, 0);
        let backdoor_test = generator.generate_subgroup(&mut rng, 150, 1, 0);
        let attacker_backdoor = generator.generate_subgroup(&mut rng, 120, 1, 0);

        let mlp_spec = MlpSpec::new(spec.input_dim(), &config.hidden, spec.num_classes());
        let mut initial = Mlp::new(&mlp_spec, &mut rng);
        if config.warmup_central_epochs > 0 {
            let mut pooled = server_data.clone();
            for s in &shards {
                if !s.is_empty() {
                    pooled = pooled.concat(s);
                }
            }
            let mut opt = Sgd::new(0.1).with_momentum(0.9);
            for _ in 0..config.warmup_central_epochs {
                initial.train_epoch(pooled.features(), pooled.labels(), 32, &mut opt, &mut rng);
            }
        }

        let fl = FlConfig::new(config.num_clients, config.clients_per_round);
        let boost = fl.replacement_boost();
        let validator = Validator::new(ValidationConfig::new(config.lookback).with_margin(1.2));
        let network = Network::with_loss(config.drop_prob, config.seed ^ 0x4E45_5400);

        let server_endpoint = network.register(NodeId::SERVER);
        let server_config = ServerConfig {
            fl: fl.clone(),
            validators_per_round: config.validators_per_round,
            quorum: config.quorum,
            phase_timeout: config.phase_timeout,
            server_votes: true,
            seed: config.seed,
            bootstrap_rounds: config.bootstrap_rounds,
            bootstrap_trusted: (config.malicious_clients..config.num_clients).collect(),
        };
        let mut server = Server::new(
            server_endpoint,
            server_config,
            initial.clone(),
            config.lookback + 1,
            validator,
            server_data,
        );

        let mut rounds = Vec::with_capacity(config.rounds as usize);
        crossbeam::thread::scope(|scope| {
            for (i, shard) in shards.iter().enumerate() {
                let endpoint = network.register(NodeId(i as u32));
                let role = if i < config.malicious_clients {
                    ClientRole::Malicious {
                        attack: ModelReplacement::new(backdoor, boost),
                        backdoor_data: attacker_backdoor.clone(),
                        voting: VoterBehavior::StealthAccept,
                    }
                } else {
                    ClientRole::Honest
                };
                let mut client = Client::new(
                    endpoint,
                    shard.clone(),
                    LocalTrainer::from_config(&fl),
                    validator,
                    role,
                    config.lookback + 1,
                    initial.clone(),
                    config.seed.wrapping_add(1 + i as u64),
                );
                scope.spawn(move |_| client.run());
            }

            for _ in 0..config.rounds {
                rounds.push(server.run_round());
            }
            server.shutdown();
        })
        .expect("client actor panicked");

        DeploymentOutcome {
            final_main_accuracy: server.global_model().accuracy(test.features(), test.labels()),
            final_backdoor_accuracy: eval::backdoor_accuracy(
                server.global_model(),
                backdoor_test.features(),
                backdoor.target_class(),
            ),
            rounds,
            messages_sent: network.messages_sent(),
            messages_dropped: network.messages_dropped(),
        }
    }
}
