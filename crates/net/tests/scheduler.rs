//! Scheduler ↔ thread-per-client equivalence.
//!
//! The event-driven scheduler exists for scale, not for different
//! answers: on the same [`DeploymentConfig`], running every client as a
//! multiplexed state machine must produce the **bit-identical**
//! [`DeploymentOutcome`] the retained thread-per-client path produces —
//! same round decisions, same accuracies, same message tallies, same
//! per-client reports. Wall-clock phase durations are the only fields
//! allowed to differ.
//!
//! The equivalence holds regardless of worker-pool sizing (per-client
//! state is independent, `parallel_map` preserves order, the server
//! sorts updates by id, votes are order-free counts), so CI runs this
//! suite both with default threading and pinned to `BAFFLE_THREADS=1`
//! — the variable is read once per process, hence the two CI
//! invocations rather than two in-process tests.

use baffle_net::deployment::{Deployment, DeploymentConfig, DeploymentOutcome};
use baffle_net::fault::{FaultEvent, FaultPlan};
use baffle_net::message::NodeId;
use baffle_net::server::ServerRound;
use std::time::Duration;

/// Zeroes the wall-clock fields — everything the protocol *decided*
/// stays, and must match bit-for-bit.
fn normalized(outcome: &DeploymentOutcome) -> DeploymentOutcome {
    DeploymentOutcome {
        rounds: outcome
            .rounds
            .iter()
            .map(|r| ServerRound {
                update_phase: Duration::ZERO,
                vote_phase: Duration::ZERO,
                ..r.clone()
            })
            .collect(),
        ..outcome.clone()
    }
}

#[test]
fn scheduler_outcome_is_bit_identical_to_threaded_path() {
    let config = DeploymentConfig::small(21);
    let scheduled = Deployment::build(config.clone()).run();
    let threaded = Deployment::build(config).run_threaded();
    assert_eq!(
        normalized(&scheduled),
        normalized(&threaded),
        "the scheduler must replay the threaded deployment exactly"
    );
}

/// Same check on an all-honest config with more rounds than the
/// bootstrap phase, so the equivalence also covers mature-history
/// validation rounds (real votes, not just abstentions).
#[test]
fn equivalence_holds_past_the_bootstrap_phase() {
    let mut config = DeploymentConfig::small(22);
    config.malicious_clients = 0;
    config.rounds = 9;
    let scheduled = Deployment::build(config.clone()).run();
    let threaded = Deployment::build(config).run_threaded();
    assert_eq!(normalized(&scheduled), normalized(&threaded));
}

/// A scripted crash/restart plan driven through the scheduler: the
/// crashed machine reports once, its restarted incarnation reports
/// again with a fresh (contiguous) history cache, and the server
/// completes every round. This mirrors the threaded chaos invariants —
/// crash timing is wall-clock-dependent, so this asserts invariants,
/// not bit-equality.
#[test]
fn scheduler_executes_scripted_crash_and_restart() {
    let mut config = DeploymentConfig::small(23);
    config.malicious_clients = 0;
    config.rounds = 6;
    config.phase_timeout = Duration::from_millis(1500);
    config.faults = Some(FaultPlan::lossless(23).event(FaultEvent::Crash {
        node: NodeId(4),
        at_round: 2,
        restart_round: Some(4),
    }));
    let outcome = Deployment::build(config.clone()).run();

    assert_eq!(outcome.rounds.len(), 6, "a crashed client must not stall the server");
    assert!(outcome.rounds.iter().all(|r| !r.transport_lost));
    // One report per incarnation: 8 clients + the restarted one.
    assert_eq!(outcome.client_reports.len(), config.num_clients + 1);
    let incarnations: Vec<_> =
        outcome.client_reports.iter().filter(|r| r.id == NodeId(4)).collect();
    assert_eq!(incarnations.len(), 2, "node 4 reports for both incarnations");
    for report in &outcome.client_reports {
        assert!(
            report.window_contiguous,
            "client {:?} exited with a gapped history window",
            report.id
        );
    }
    // Lossless plan: the only unreceivable sends are those racing the
    // crash window, and none may be booked as link loss.
    assert_eq!(outcome.messages_dropped, 0);
    assert_eq!(outcome.messages_corrupted, 0);
}
