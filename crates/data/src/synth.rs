//! Synthetic image-classification-like data generator.

use crate::Dataset;
use baffle_tensor::{rng as trng, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a [`SyntheticVision`] problem.
///
/// Each class `y` has a Gaussian prototype `μ_y`; inside each class,
/// `subgroups_per_class` semantic subgroups add their own offset
/// (`μ_y + o_{y,s}`). Samples are `x = μ_y + o_{y,s} + ε` with
/// `ε ~ N(0, noise_std²)` per coordinate, and a fraction `label_noise` of
/// samples receive a uniformly random (wrong) label — this keeps trained
/// models at a realistic, fluctuating per-class error level, which is the
/// signal BaFFLe's cross-round analysis consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisionSpec {
    num_classes: usize,
    input_dim: usize,
    subgroups_per_class: u16,
    prototype_scale: f32,
    subgroup_scale: f32,
    noise_std: f32,
    label_noise: f64,
}

impl VisionSpec {
    /// Creates a spec with the given dimensions and default difficulty.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 2`, `input_dim == 0`, or
    /// `subgroups_per_class == 0`.
    pub fn new(num_classes: usize, input_dim: usize, subgroups_per_class: u16) -> Self {
        assert!(num_classes >= 2, "VisionSpec: need at least two classes");
        assert!(input_dim > 0, "VisionSpec: input_dim must be positive");
        assert!(subgroups_per_class > 0, "VisionSpec: need at least one subgroup per class");
        Self {
            num_classes,
            input_dim,
            subgroups_per_class,
            prototype_scale: 1.0,
            subgroup_scale: 0.45,
            noise_std: 0.55,
            label_noise: 0.03,
        }
    }

    /// The CIFAR-10 stand-in: 10 classes, 32 features, 4 semantic
    /// subgroups per class (see `DESIGN.md` §2). Difficulty is tuned so
    /// the trained substrate stabilises at ≈ 0.92 accuracy, like the
    /// paper's ResNet18 on CIFAR-10.
    pub fn cifar_like() -> Self {
        Self::new(10, 32, 4).with_noise_std(1.0).with_label_noise(0.05)
    }

    /// The FEMNIST stand-in: 62 classes (digits + upper/lower letters),
    /// 48 features, 3 subgroups per class, stabilising at ≈ 0.88
    /// accuracy.
    pub fn femnist_like() -> Self {
        Self::new(62, 48, 3).with_noise_std(1.0).with_label_noise(0.06)
    }

    /// Sets the distance scale between class prototypes.
    pub fn with_prototype_scale(mut self, s: f32) -> Self {
        self.prototype_scale = s;
        self
    }

    /// Sets the offset scale of semantic subgroups within a class.
    pub fn with_subgroup_scale(mut self, s: f32) -> Self {
        self.subgroup_scale = s;
        self
    }

    /// Sets the per-coordinate sample noise.
    pub fn with_noise_std(mut self, s: f32) -> Self {
        self.noise_std = s;
        self
    }

    /// Sets the fraction of uniformly mislabelled samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_label_noise(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "label_noise must be in [0, 1), got {p}");
        self.label_noise = p;
        self
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of semantic subgroups per class.
    pub fn subgroups_per_class(&self) -> u16 {
        self.subgroups_per_class
    }
}

/// A fixed synthetic classification problem: class prototypes and subgroup
/// offsets are drawn once at construction, after which [`SyntheticVision::generate`]
/// produces arbitrarily many i.i.d. samples from it.
///
/// # Example
///
/// ```
/// use baffle_data::{SyntheticVision, VisionSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let gen = SyntheticVision::new(&VisionSpec::new(3, 8, 2), &mut rng);
/// let d = gen.generate(&mut rng, 90);
/// // Roughly balanced classes.
/// assert!(d.class_counts().iter().all(|&c| c > 10));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    spec: VisionSpec,
    /// `num_classes × input_dim` prototype matrix.
    prototypes: Matrix,
    /// `num_classes * subgroups_per_class × input_dim` offset matrix.
    offsets: Matrix,
}

impl SyntheticVision {
    /// Draws a fresh problem instance from the spec.
    pub fn new<R: Rng + ?Sized>(spec: &VisionSpec, rng: &mut R) -> Self {
        let c = spec.num_classes;
        let d = spec.input_dim;
        let s = spec.subgroups_per_class as usize;
        // Prototype entries ~ N(0, scale²/√d) keeps pairwise class distances
        // comparable across dimensionalities.
        let proto_std = spec.prototype_scale / (d as f32).sqrt().sqrt();
        let prototypes = trng::normal_matrix(rng, c, d, proto_std);
        let offset_std = spec.subgroup_scale / (d as f32).sqrt().sqrt();
        let offsets = trng::normal_matrix(rng, c * s, d, offset_std);
        Self { spec: spec.clone(), prototypes, offsets }
    }

    /// The spec this problem was drawn from.
    pub fn spec(&self) -> &VisionSpec {
        &self.spec
    }

    /// Generates `n` samples with uniformly random classes and subgroups,
    /// including label noise.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Dataset {
        let dist = vec![1.0 / self.spec.num_classes as f64; self.spec.num_classes];
        self.generate_with_class_dist(rng, n, &dist)
    }

    /// Generates `n` samples with uniform classes, but **excluding** one
    /// `(class, subgroup)` subpopulation entirely.
    ///
    /// This builds the honest participants' data pool for the paper's
    /// worst-case evaluation (§I): *none of the validating clients hold
    /// backdoor data* — the backdoor feature exists only in the
    /// attacker's dataset.
    pub fn generate_excluding<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        excluded_class: usize,
        excluded_subgroup: u16,
    ) -> Dataset {
        let d = self.spec.input_dim;
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut tags = Vec::with_capacity(n);
        while labels.len() < n {
            let class = rng.gen_range(0..self.spec.num_classes);
            let subgroup = rng.gen_range(0..self.spec.subgroups_per_class);
            if class == excluded_class && subgroup == excluded_subgroup {
                continue;
            }
            data.extend(self.sample_features(rng, class, subgroup));
            let label = if rng.gen_bool(self.spec.label_noise) {
                rng.gen_range(0..self.spec.num_classes)
            } else {
                class
            };
            labels.push(label);
            tags.push(subgroup);
        }
        Dataset::with_subgroups(Matrix::from_vec(n, d, data), labels, tags, self.spec.num_classes)
    }

    /// Generates `n` samples whose classes follow `class_dist` (a
    /// probability vector), used to build non-IID client shards directly.
    ///
    /// # Panics
    ///
    /// Panics if `class_dist.len() != num_classes` or it does not sum to
    /// ≈ 1.
    pub fn generate_with_class_dist<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        class_dist: &[f64],
    ) -> Dataset {
        assert_eq!(
            class_dist.len(),
            self.spec.num_classes,
            "generate_with_class_dist: distribution over {} classes for {}-class problem",
            class_dist.len(),
            self.spec.num_classes
        );
        let total: f64 = class_dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "class_dist sums to {total}, expected 1");

        let d = self.spec.input_dim;
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut tags = Vec::with_capacity(n);
        for _ in 0..n {
            let class = sample_categorical(rng, class_dist);
            let subgroup = rng.gen_range(0..self.spec.subgroups_per_class);
            data.extend(self.sample_features(rng, class, subgroup));
            let label = if rng.gen_bool(self.spec.label_noise) {
                rng.gen_range(0..self.spec.num_classes)
            } else {
                class
            };
            labels.push(label);
            tags.push(subgroup);
        }
        Dataset::with_subgroups(Matrix::from_vec(n, d, data), labels, tags, self.spec.num_classes)
    }

    /// Generates `n` correctly-labelled samples from one specific
    /// `(class, subgroup)` subpopulation — the backdoor-instance
    /// generator (no label noise).
    ///
    /// # Panics
    ///
    /// Panics if `class` or `subgroup` is out of range.
    pub fn generate_subgroup<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        class: usize,
        subgroup: u16,
    ) -> Dataset {
        assert!(class < self.spec.num_classes, "generate_subgroup: class {class} out of range");
        assert!(
            subgroup < self.spec.subgroups_per_class,
            "generate_subgroup: subgroup {subgroup} out of range"
        );
        let d = self.spec.input_dim;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n {
            data.extend(self.sample_features(rng, class, subgroup));
        }
        Dataset::with_subgroups(
            Matrix::from_vec(n, d, data),
            vec![class; n],
            vec![subgroup; n],
            self.spec.num_classes,
        )
    }

    /// Draws `num_writers` per-writer style offsets for writer-partitioned
    /// generation (FEMNIST's natural non-IID structure: every client is a
    /// distinct *writer* whose samples share a handwriting style).
    ///
    /// Each style is an offset vector added to every sample the writer
    /// produces; `style_std` controls how distinct writers are.
    pub fn writer_styles<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        num_writers: usize,
        style_std: f32,
    ) -> Vec<Vec<f32>> {
        let d = self.spec.input_dim;
        let per_coord = style_std / (d as f32).sqrt().sqrt();
        (0..num_writers)
            .map(|_| (0..d).map(|_| per_coord * trng::standard_normal(rng)).collect())
            .collect()
    }

    /// Generates `n` samples from a single *writer*: uniform classes and
    /// subgroups, with the writer's style offset added to every sample
    /// (label noise applies as usual).
    ///
    /// # Panics
    ///
    /// Panics if `style.len() != input_dim`.
    pub fn generate_writer<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        style: &[f32],
    ) -> Dataset {
        assert_eq!(
            style.len(),
            self.spec.input_dim,
            "generate_writer: style length {} != input dim {}",
            style.len(),
            self.spec.input_dim
        );
        let d = self.spec.input_dim;
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut tags = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(0..self.spec.num_classes);
            let subgroup = rng.gen_range(0..self.spec.subgroups_per_class);
            let mut x = self.sample_features(rng, class, subgroup);
            for (xi, &s) in x.iter_mut().zip(style) {
                *xi += s;
            }
            data.extend(x);
            let label = if rng.gen_bool(self.spec.label_noise) {
                rng.gen_range(0..self.spec.num_classes)
            } else {
                class
            };
            labels.push(label);
            tags.push(subgroup);
        }
        Dataset::with_subgroups(Matrix::from_vec(n, d, data), labels, tags, self.spec.num_classes)
    }

    /// Generates `n` correctly-labelled samples of one class with
    /// uniformly random subgroups (no label noise) — the backdoor-instance
    /// generator for label-flip attacks, where the backdoor population is
    /// the entire source class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn generate_class<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, class: usize) -> Dataset {
        assert!(class < self.spec.num_classes, "generate_class: class {class} out of range");
        let d = self.spec.input_dim;
        let mut data = Vec::with_capacity(n * d);
        let mut tags = Vec::with_capacity(n);
        for _ in 0..n {
            let subgroup = rng.gen_range(0..self.spec.subgroups_per_class);
            data.extend(self.sample_features(rng, class, subgroup));
            tags.push(subgroup);
        }
        Dataset::with_subgroups(
            Matrix::from_vec(n, d, data),
            vec![class; n],
            tags,
            self.spec.num_classes,
        )
    }

    fn sample_features<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: usize,
        subgroup: u16,
    ) -> Vec<f32> {
        let d = self.spec.input_dim;
        let proto = self.prototypes.row(class);
        let offset =
            self.offsets.row(class * self.spec.subgroups_per_class as usize + subgroup as usize);
        let noise_std = self.spec.noise_std / (d as f32).sqrt().sqrt();
        (0..d).map(|i| proto[i] + offset[i] + noise_std * trng::standard_normal(rng)).collect()
    }
}

/// Samples an index from a (normalised) categorical distribution.
fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, dist: &[f64]) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &p) in dist.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(seed: u64) -> (SyntheticVision, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = SyntheticVision::new(&VisionSpec::new(4, 16, 3), &mut rng);
        (g, rng)
    }

    #[test]
    fn generate_has_requested_size_and_dim() {
        let (g, mut rng) = gen(1);
        let d = g.generate(&mut rng, 200);
        assert_eq!(d.len(), 200);
        assert_eq!(d.input_dim(), 16);
        assert_eq!(d.num_classes(), 4);
    }

    #[test]
    fn uniform_generation_is_roughly_balanced() {
        let (g, mut rng) = gen(2);
        let d = g.generate(&mut rng, 4000);
        for &c in &d.class_counts() {
            assert!((800..1200).contains(&c), "class count {c}");
        }
    }

    #[test]
    fn skewed_class_dist_is_respected() {
        let (g, mut rng) = gen(3);
        let d = g.generate_with_class_dist(&mut rng, 2000, &[0.7, 0.1, 0.1, 0.1]);
        let counts = d.class_counts();
        assert!(counts[0] > 1200, "counts = {counts:?}");
    }

    #[test]
    fn subgroup_generation_is_pure() {
        let (g, mut rng) = gen(4);
        let d = g.generate_subgroup(&mut rng, 50, 2, 1);
        assert!(d.labels().iter().all(|&y| y == 2));
        assert!(d.subgroups().iter().all(|&s| s == 1));
    }

    #[test]
    fn subgroups_of_same_class_are_distinct_populations() {
        let (g, mut rng) = gen(5);
        let a = g.generate_subgroup(&mut rng, 200, 0, 0);
        let b = g.generate_subgroup(&mut rng, 200, 0, 1);
        // Mean feature vectors should differ by roughly the subgroup offset.
        let mean = |d: &Dataset| {
            let mut m = d.features().sum_rows();
            for v in &mut m {
                *v /= d.len() as f32;
            }
            m
        };
        let dist = baffle_tensor::ops::distance(&mean(&a), &mean(&b));
        assert!(dist > 0.05, "subgroup means too close: {dist}");
    }

    #[test]
    fn label_noise_zero_means_labels_match_generating_class() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = VisionSpec::new(3, 8, 1).with_label_noise(0.0).with_noise_std(0.01);
        let g = SyntheticVision::new(&spec, &mut rng);
        let d = g.generate_subgroup(&mut rng, 100, 1, 0);
        assert!(d.labels().iter().all(|&y| y == 1));
    }

    #[test]
    fn same_seed_same_problem() {
        let (g1, mut r1) = gen(7);
        let (g2, mut r2) = gen(7);
        let a = g1.generate(&mut r1, 10);
        let b = g2.generate(&mut r2, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn presets_have_paper_dimensions() {
        assert_eq!(VisionSpec::cifar_like().num_classes(), 10);
        assert_eq!(VisionSpec::femnist_like().num_classes(), 62);
    }

    #[test]
    fn categorical_sampler_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(8);
        let dist = [0.5, 0.25, 0.25];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_categorical(&mut rng, &dist)] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn writer_styles_have_requested_count_and_dim() {
        let (g, mut rng) = gen(20);
        let styles = g.writer_styles(&mut rng, 7, 0.5);
        assert_eq!(styles.len(), 7);
        assert!(styles.iter().all(|s| s.len() == 16));
        // Distinct writers have distinct styles.
        assert_ne!(styles[0], styles[1]);
    }

    #[test]
    fn writer_generation_offsets_every_sample() {
        let mut rng = StdRng::seed_from_u64(21);
        let spec = VisionSpec::new(3, 8, 1).with_noise_std(0.01).with_label_noise(0.0);
        let g = SyntheticVision::new(&spec, &mut rng);
        let big_style = vec![10.0; 8];
        let d = g.generate_writer(&mut rng, 30, &big_style);
        // Every sample is dominated by the style offset.
        assert!(d.features().as_slice().iter().all(|&x| x > 5.0));
        assert_eq!(d.len(), 30);
    }

    #[test]
    fn writers_are_separable_populations() {
        let (g, mut rng) = gen(22);
        let styles = g.writer_styles(&mut rng, 2, 2.0);
        let a = g.generate_writer(&mut rng, 200, &styles[0]);
        let b = g.generate_writer(&mut rng, 200, &styles[1]);
        let mean = |d: &Dataset| {
            let mut m = d.features().sum_rows();
            for v in &mut m {
                *v /= d.len() as f32;
            }
            m
        };
        let dist = baffle_tensor::ops::distance(&mean(&a), &mean(&b));
        assert!(dist > 0.3, "writer means too close: {dist}");
    }

    #[test]
    #[should_panic(expected = "style length")]
    fn wrong_style_length_panics() {
        let (g, mut rng) = gen(23);
        let _ = g.generate_writer(&mut rng, 1, &[0.0; 3]);
    }

    #[test]
    fn generate_excluding_never_emits_the_backdoor_subgroup() {
        let mut rng = StdRng::seed_from_u64(10);
        let spec = VisionSpec::new(4, 8, 3).with_label_noise(0.0);
        let g = SyntheticVision::new(&spec, &mut rng);
        let d = g.generate_excluding(&mut rng, 500, 2, 1);
        assert_eq!(d.len(), 500);
        assert!(d.indices_of_subgroup(2, 1).is_empty());
        // Other subgroups of class 2 are still present.
        assert!(!d.indices_of_subgroup(2, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_subgroup_panics() {
        let (g, mut rng) = gen(9);
        let _ = g.generate_subgroup(&mut rng, 1, 0, 99);
    }
}
