//! Incremental validation engine: confusion-matrix caching + scoped-thread
//! fan-out for Algorithm 2.
//!
//! `Validator::validate` recomputes one confusion matrix per history model
//! on **every** call — O(ℓ·|D|) forward passes per validator per round —
//! even though the history window shifts by at most one model between
//! rounds. [`ValidationEngine`] wraps a [`Validator`] with a
//! [`ConfusionCache`] keyed by the history's [`ModelId`]s (the same
//! monotone ids [`baffle_fl::history_sync::HistorySync`] ships over the
//! wire), so a warm round evaluates only the candidate and whichever
//! history models it has not seen before — normally just the newest
//! accepted one: O(|D|) forward passes.
//!
//! Three invariants make the cache sound:
//!
//! 1. **Ids are monotone and never reused.** [`crate::ModelHistory`] and
//!    `HistorySync` both retire ids on rollback, so a stale entry can
//!    never alias a future model.
//! 2. **One engine per validation dataset.** A confusion matrix is a
//!    function of (model, dataset); entries computed against one shard
//!    are meaningless for another. Each client owns its engine; the
//!    server owns one for its holdout set.
//! 3. **Shared decision path.** The engine feeds cached matrices into
//!    [`Validator::validate_confusions`] — the same code the uncached
//!    path runs — so cached and uncached validation are bit-identical
//!    (property-tested in `tests/engine_coherence.rs`).
//!
//! On a cold cache (first round, or after a client re-syncs a long
//! history delta) the missing matrices are computed on the shared worker
//! pool; results are keyed by id, so scheduling order cannot affect the
//! verdict. The batched entry points
//! ([`ValidationEngine::validate_batched`]) fuse that cold fan-out
//! further: the candidate and every missing model are stacked into one
//! [`ConfusionMatrix::from_models`] pass, turning ℓ + 2 per-model
//! forward sweeps into a single wide GEMM pass per layer
//! ([`baffle_nn::Model::predict_multi`]) — bit-identical to the
//! sequential path on the default kernels.

use crate::validate::{Diagnostics, ValidateError, Validator, Verdict, MIN_HISTORY};
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_nn::{ConfusionMatrix, Model};
use std::collections::HashMap;

/// Fan the cold-cache confusion computation out to the worker pool only
/// when at least this many matrices are missing; below that, task
/// hand-off costs more than the forward passes it saves. Two is the
/// break-even point now that [`ConfusionMatrix::from_model`] evaluates
/// chunks through borrowed row views instead of copying them: a task is
/// one allocation-free forward pass, so it pays off as soon as a second
/// matrix can overlap it.
const CONFUSION_PARALLEL_THRESHOLD: usize = 2;

/// Confusion matrices of already-evaluated history models, keyed by
/// [`ModelId`]. Bounded by the validator's window: every
/// [`ValidationEngine::validate`] call evicts entries outside the ids it
/// was handed.
#[derive(Debug, Clone, Default)]
pub struct ConfusionCache {
    entries: HashMap<ModelId, ConfusionMatrix>,
}

impl ConfusionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self { entries: HashMap::new() }
    }

    /// The cached matrix for `id`, if present.
    pub fn get(&self, id: ModelId) -> Option<&ConfusionMatrix> {
        self.entries.get(&id)
    }

    /// Whether `id` has a cached matrix.
    pub fn contains(&self, id: ModelId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Stores the matrix for `id`, replacing any previous entry.
    pub fn insert(&mut self, id: ModelId, cm: ConfusionMatrix) {
        self.entries.insert(id, cm);
    }

    /// Drops the entry for `id`, returning whether one existed. Called on
    /// deferred-validation rollback, when an accepted model is popped
    /// from the history and its id retired.
    pub fn invalidate(&mut self, id: ModelId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// Evicts every entry whose id is not in `window` — the ids currently
    /// eligible for validation — keeping the cache at ≤ ℓ + 1 entries.
    pub fn retain_window(&mut self, window: &[ModelId]) {
        self.entries.retain(|id, _| window.contains(id));
    }

    /// Number of cached matrices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no matrices.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A [`Validator`] with per-round memory: caches history confusion
/// matrices across calls so each round costs one forward pass over the
/// validation set instead of ℓ + 1.
///
/// # Example
///
/// ```
/// use baffle_core::{ValidationConfig, ValidationEngine, Validator};
///
/// let mut engine = ValidationEngine::new(Validator::new(ValidationConfig::new(5)));
/// assert_eq!(engine.cache_len(), 0);
/// assert_eq!((engine.hits(), engine.misses()), (0, 0));
/// ```
#[derive(Debug, Clone)]
pub struct ValidationEngine {
    validator: Validator,
    cache: ConfusionCache,
    hits: u64,
    misses: u64,
}

impl ValidationEngine {
    /// Wraps `validator` with an empty cache.
    pub fn new(validator: Validator) -> Self {
        Self { validator, cache: ConfusionCache::new(), hits: 0, misses: 0 }
    }

    /// The wrapped validator.
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Number of history models currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// History confusion matrices served from cache across all calls.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// History confusion matrices computed (cache misses) across all
    /// calls. The candidate's matrix is always computed fresh and counts
    /// toward neither.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops the cached matrix for `id`, returning whether one existed.
    /// Call this when the history rolls back (deferred-validation `pop`)
    /// and the id is retired.
    pub fn invalidate(&mut self, id: ModelId) -> bool {
        self.cache.invalidate(id)
    }

    /// Drops all cached matrices (e.g. when the validation dataset
    /// itself changes).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Cached equivalent of [`Validator::validate`]: validates `current`
    /// against `history` (oldest first), where `ids[i]` is the stable id
    /// of `history[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != history.len()`.
    ///
    /// # Errors
    ///
    /// Same as [`Validator::validate`].
    pub fn validate<M: Model + Sync>(
        &mut self,
        current: &M,
        ids: &[ModelId],
        history: &[M],
        data: &Dataset,
    ) -> Result<Verdict, ValidateError> {
        self.validate_detailed(current, ids, history, data).map(|d| d.verdict)
    }

    /// Cached equivalent of [`Validator::validate_detailed`]. Computes
    /// confusion matrices only for window models missing from the cache
    /// (on the shared worker pool when several are missing), evicts entries that
    /// left the window, and runs the shared decision path
    /// [`Validator::validate_confusions`].
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != history.len()`.
    ///
    /// # Errors
    ///
    /// Same as [`Validator::validate`].
    pub fn validate_detailed<M: Model + Sync>(
        &mut self,
        current: &M,
        ids: &[ModelId],
        history: &[M],
        data: &Dataset,
    ) -> Result<Diagnostics, ValidateError> {
        let (ids, window, missing) = self.prepare(ids, history, data)?;

        if !missing.is_empty() {
            let computed: Vec<ConfusionMatrix> = if missing.len() >= CONFUSION_PARALLEL_THRESHOLD {
                baffle_tensor::pool::parallel_map(missing.clone(), |_, i| {
                    ConfusionMatrix::from_model(&window[i], data.features(), data.labels())
                })
            } else {
                missing
                    .iter()
                    .map(|&i| {
                        ConfusionMatrix::from_model(&window[i], data.features(), data.labels())
                    })
                    .collect()
            };
            for (&i, cm) in missing.iter().zip(computed) {
                self.cache.insert(ids[i], cm);
            }
        }
        // The candidate is never cached: it has no id until (and unless)
        // the quorum accepts it, and caching speculative models would let
        // a rejected candidate poison a future lookup.
        let current_cm = ConfusionMatrix::from_model(current, data.features(), data.labels());
        self.decide(ids, current_cm, data.len())
    }

    /// Cached equivalent of [`Validator::validate`] whose cold-cache work
    /// runs as *batched* multi-model evaluation: see
    /// [`ValidationEngine::validate_batched_detailed`].
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != history.len()`.
    ///
    /// # Errors
    ///
    /// Same as [`Validator::validate`].
    pub fn validate_batched<M: Model + Sync>(
        &mut self,
        current: &M,
        ids: &[ModelId],
        history: &[M],
        data: &Dataset,
    ) -> Result<Verdict, ValidateError> {
        self.validate_batched_detailed(current, ids, history, data).map(|d| d.verdict)
    }

    /// Like [`ValidationEngine::validate_detailed`], but the candidate
    /// and every window model missing from the cache are stacked into a
    /// single [`ConfusionMatrix::from_models`] pass, so a cold cache
    /// costs one fused multi-model GEMM sweep per layer over the
    /// validation set instead of ℓ + 2 sequential forward fan-outs (see
    /// [`baffle_nn::Model::predict_multi`]). A warm cache evaluates a
    /// two-model batch (the candidate plus the newest accepted model) —
    /// its cost is independent of ℓ.
    ///
    /// On the default bit-exact kernels the verdict, diagnostics, cache
    /// contents and hit/miss counters are all bit-identical to
    /// [`ValidationEngine::validate_detailed`] (property-tested in
    /// `tests/engine_coherence.rs`); under the opt-in `BAFFLE_FAST_MATH`
    /// tier the two paths agree within the documented error bound.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != history.len()`.
    ///
    /// # Errors
    ///
    /// Same as [`Validator::validate`].
    pub fn validate_batched_detailed<M: Model + Sync>(
        &mut self,
        current: &M,
        ids: &[ModelId],
        history: &[M],
        data: &Dataset,
    ) -> Result<Diagnostics, ValidateError> {
        let (ids, window, missing) = self.prepare(ids, history, data)?;

        // One fused pass over the shard evaluates every missing history
        // model and the candidate together. The candidate rides in the
        // batch but is still never cached (see `validate_detailed`).
        let mut batch: Vec<&M> = missing.iter().map(|&i| &window[i]).collect();
        batch.push(current);
        let mut cms = ConfusionMatrix::from_models(&batch, data.features(), data.labels());
        let current_cm = cms.pop().expect("candidate confusion matrix");
        for (&i, cm) in missing.iter().zip(cms) {
            self.cache.insert(ids[i], cm);
        }
        self.decide(ids, current_cm, data.len())
    }

    /// Shared prologue of the cached validation paths: argument checks,
    /// window selection, miss detection and counter updates.
    fn prepare<'a, M: Model>(
        &mut self,
        ids: &'a [ModelId],
        history: &'a [M],
        data: &Dataset,
    ) -> Result<(&'a [ModelId], &'a [M], Vec<usize>), ValidateError> {
        assert_eq!(
            ids.len(),
            history.len(),
            "ValidationEngine: ids and history must be parallel slices"
        );
        if history.len() < MIN_HISTORY {
            return Err(ValidateError::NotEnoughHistory { got: history.len(), need: MIN_HISTORY });
        }
        if data.is_empty() {
            return Err(ValidateError::EmptyDataset);
        }
        let start = history.len().saturating_sub(self.validator.config().history_size());
        let ids = &ids[start..];
        let window = &history[start..];

        let missing: Vec<usize> =
            (0..window.len()).filter(|&i| !self.cache.contains(ids[i])).collect();
        self.hits += (window.len() - missing.len()) as u64;
        self.misses += missing.len() as u64;
        Ok((ids, window, missing))
    }

    /// Shared epilogue: evicts entries that left the window and runs the
    /// decision half of Algorithm 2 over the cached window matrices.
    fn decide(
        &mut self,
        ids: &[ModelId],
        current_cm: ConfusionMatrix,
        num_samples: usize,
    ) -> Result<Diagnostics, ValidateError> {
        self.cache.retain_window(ids);
        let confusions: Vec<ConfusionMatrix> =
            ids.iter().map(|&id| self.cache.get(id).expect("window cached").clone()).collect();
        self.validator.validate_confusions(&confusions, &current_cm, num_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::ValidationConfig;
    use baffle_tensor::Matrix;

    /// A scripted model, as in `validate.rs` tests: fixed predictions.
    #[derive(Clone)]
    struct Scripted {
        preds: Vec<usize>,
        classes: usize,
    }

    impl Model for Scripted {
        fn num_params(&self) -> usize {
            0
        }
        fn params(&self) -> Vec<f32> {
            Vec::new()
        }
        fn set_params(&mut self, _: &[f32]) {}
        fn num_classes(&self) -> usize {
            self.classes
        }
        fn predict_batch(&self, _: &Matrix) -> Vec<usize> {
            self.preds.clone()
        }
    }

    fn dataset(n: usize, c: usize) -> Dataset {
        let x = Matrix::zeros(n, 1);
        let y = (0..n).map(|i| i % c).collect();
        Dataset::new(x, y, c)
    }

    fn model_with_errors(data: &Dataset, wrong: &[usize]) -> Scripted {
        let c = data.num_classes();
        let preds = data
            .labels()
            .iter()
            .enumerate()
            .map(|(i, &y)| if wrong.contains(&i) { (y + 1) % c } else { y })
            .collect();
        Scripted { preds, classes: c }
    }

    fn stable_history(data: &Dataset, len: usize) -> Vec<Scripted> {
        (0..len).map(|t| model_with_errors(data, &[t % data.len(), (t + 1) % data.len()])).collect()
    }

    #[test]
    fn cached_matches_uncached_and_counts_hits() {
        let data = dataset(40, 4);
        let history = stable_history(&data, 12);
        let ids: Vec<ModelId> = (0..12).collect();
        let current = model_with_errors(&data, &[12, 13]);
        let validator = Validator::new(ValidationConfig::new(10));
        let mut engine = ValidationEngine::new(validator);

        let plain = validator.validate_detailed(&current, &history, &data);
        let cold = engine.validate_detailed(&current, &ids, &history, &data);
        assert_eq!(cold, plain);
        // Window is ℓ + 1 = 11 models, all cold.
        assert_eq!((engine.hits(), engine.misses()), (0, 11));
        assert_eq!(engine.cache_len(), 11);

        let warm = engine.validate_detailed(&current, &ids, &history, &data);
        assert_eq!(warm, plain);
        assert_eq!((engine.hits(), engine.misses()), (11, 11));
    }

    #[test]
    fn window_shift_costs_one_miss() {
        let data = dataset(40, 4);
        let mut history = stable_history(&data, 11);
        let mut ids: Vec<ModelId> = (0..11).collect();
        let current = model_with_errors(&data, &[3, 4]);
        let mut engine = ValidationEngine::new(Validator::new(ValidationConfig::new(10)));

        engine.validate_detailed(&current, &ids, &history, &data).unwrap();
        assert_eq!(engine.misses(), 11);

        // One acceptance: window slides by one model.
        history.remove(0);
        ids.remove(0);
        history.push(model_with_errors(&data, &[11, 12]));
        ids.push(11);
        engine.validate_detailed(&current, &ids, &history, &data).unwrap();
        assert_eq!(engine.misses(), 12, "only the new model should be computed");
        assert_eq!(engine.hits(), 10);
        assert_eq!(engine.cache_len(), 11, "evicted entry must leave the cache");
    }

    #[test]
    fn invalidate_forces_recompute() {
        let data = dataset(30, 3);
        let history = stable_history(&data, 8);
        let ids: Vec<ModelId> = (0..8).collect();
        let current = model_with_errors(&data, &[5]);
        let mut engine = ValidationEngine::new(Validator::new(ValidationConfig::new(6)));

        engine.validate_detailed(&current, &ids, &history, &data).unwrap();
        let misses = engine.misses();
        assert!(engine.invalidate(4));
        assert!(!engine.invalidate(4), "second invalidate finds nothing");
        engine.validate_detailed(&current, &ids, &history, &data).unwrap();
        assert_eq!(engine.misses(), misses + 1);
    }

    #[test]
    fn errors_match_the_plain_validator() {
        let data = dataset(10, 2);
        let history = stable_history(&data, 3);
        let ids: Vec<ModelId> = (0..3).collect();
        let current = history[0].clone();
        let mut engine = ValidationEngine::new(Validator::new(ValidationConfig::new(10)));
        let err = engine.validate(&current, &ids, &history, &data).unwrap_err();
        assert!(matches!(err, ValidateError::NotEnoughHistory { got: 3, need: 4 }));

        let history = stable_history(&data, 6);
        let ids: Vec<ModelId> = (0..6).collect();
        let empty = Dataset::empty(1, 2);
        let err = engine.validate(&history[0], &ids, &history, &empty).unwrap_err();
        assert_eq!(err, ValidateError::EmptyDataset);
        assert_eq!(engine.cache_len(), 0, "errors must not populate the cache");
    }

    #[test]
    fn batched_matches_sequential_cold_and_warm() {
        let data = dataset(40, 4);
        let history = stable_history(&data, 12);
        let ids: Vec<ModelId> = (0..12).collect();
        let current = model_with_errors(&data, &[12, 13]);
        let validator = Validator::new(ValidationConfig::new(10));
        let mut seq = ValidationEngine::new(validator);
        let mut bat = ValidationEngine::new(validator);

        let cold_s = seq.validate_detailed(&current, &ids, &history, &data);
        let cold_b = bat.validate_batched_detailed(&current, &ids, &history, &data);
        assert_eq!(cold_b, cold_s);
        assert_eq!((bat.hits(), bat.misses()), (seq.hits(), seq.misses()));
        assert_eq!(bat.cache_len(), seq.cache_len());

        let warm_s = seq.validate_detailed(&current, &ids, &history, &data);
        let warm_b = bat.validate_batched_detailed(&current, &ids, &history, &data);
        assert_eq!(warm_b, warm_s);
        assert_eq!((bat.hits(), bat.misses()), (seq.hits(), seq.misses()));
    }

    #[test]
    fn batched_errors_match_and_skip_the_cache() {
        let data = dataset(10, 2);
        let history = stable_history(&data, 3);
        let ids: Vec<ModelId> = (0..3).collect();
        let mut engine = ValidationEngine::new(Validator::new(ValidationConfig::new(10)));
        let err = engine.validate_batched(&history[0], &ids, &history, &data).unwrap_err();
        assert!(matches!(err, ValidateError::NotEnoughHistory { got: 3, need: 4 }));

        let history = stable_history(&data, 6);
        let ids: Vec<ModelId> = (0..6).collect();
        let empty = Dataset::empty(1, 2);
        let err = engine.validate_batched(&history[0], &ids, &history, &empty).unwrap_err();
        assert_eq!(err, ValidateError::EmptyDataset);
        assert_eq!(engine.cache_len(), 0, "errors must not populate the cache");
    }

    #[test]
    #[should_panic(expected = "parallel slices")]
    fn mismatched_ids_panic() {
        let data = dataset(10, 2);
        let history = stable_history(&data, 6);
        let ids: Vec<ModelId> = (0..5).collect();
        let mut engine = ValidationEngine::new(Validator::new(ValidationConfig::new(4)));
        let _ = engine.validate(&history[0], &ids, &history, &data);
    }
}
