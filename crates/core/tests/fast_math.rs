//! End-to-end fast-math contract: validation verdicts under the opt-in
//! FMA tier (`BAFFLE_FAST_MATH=1`) must agree with the bit-exact tier
//! whenever every sample's logit margin exceeds the documented kernel
//! error bound — which this test arranges by construction, then checks
//! the arithmetic rather than assuming it.
//!
//! `gemm::set_fast_math` mutates process-global dispatch state, so this
//! file holds a SINGLE test function (sibling tests run concurrently).
//! The test is tier-safe: when SIMD is unavailable (`BAFFLE_NO_SIMD=1`)
//! the fast tier never engages and both runs take the exact kernels,
//! making every assertion trivially true.

use baffle_core::{ValidationConfig, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_nn::{Mlp, MlpSpec, Model};
use baffle_tensor::{gemm, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 30;
const C: usize = 3;
const PEAK: f32 = 8.0;

/// A real single-layer MLP scripted to predict `preds`: the input is
/// (nearly) one-hot per row, and row `i` of the weight matrix routes
/// that row's peak to class `preds[i]`. Margins are ≈ `PEAK`, far above
/// the fast-math error envelope, so the predictions are tier-invariant
/// by the documented bound — not by luck.
fn scripted_mlp(preds: &[usize]) -> Mlp {
    assert_eq!(preds.len(), N);
    let spec = MlpSpec::new(N, &[], C);
    let mut rng = StdRng::seed_from_u64(0);
    let mut m = Mlp::new(&spec, &mut rng);
    let mut p = vec![0.0f32; spec.num_params()];
    for (i, &cls) in preds.iter().enumerate() {
        p[i * C + cls] = 1.0; // weights are row-major (input × class), bias last
    }
    m.set_params(&p);
    m
}

/// Near-one-hot features: peak at the row's own index plus deterministic
/// small off-diagonal noise (to make the accumulations non-trivial).
fn dataset() -> Dataset {
    let x = Matrix::from_fn(N, N, |r, c| {
        if r == c {
            PEAK
        } else {
            0.01 * (((r * 31 + c * 17) % 19) as f32 - 9.0)
        }
    });
    let y = (0..N).map(|i| i % C).collect();
    Dataset::new(x, y, C)
}

fn errs(wrong: &[usize]) -> Vec<usize> {
    (0..N).map(|i| if wrong.contains(&i) { (i % C + 1) % C } else { i % C }).collect()
}

#[test]
fn fast_math_verdicts_match_exact_above_the_error_bound() {
    let data = dataset();
    let history: Vec<Mlp> = (0..5).map(|t| scripted_mlp(&errs(&[t, t + 5, (t * 3) % N]))).collect();
    let candidate = scripted_mlp(&errs(&[2, 9, 17, 21]));
    let ids: Vec<ModelId> = (0..history.len() as ModelId).collect();

    // The margin really does clear the bound: per logit the envelope is
    // |Σ xₖ·wₖⱼ| ≤ PEAK + Σ|noise| and the kernel error is within
    // error_bound(N) of it, while the winning class leads by ≈ PEAK.
    let envelope = PEAK as f64 + N as f64 * 0.1;
    let worst = 2.0 * gemm::error_bound(N) * envelope;
    let margin = (PEAK - 2.0 * 0.1) as f64;
    assert!(
        worst < margin / 100.0,
        "engineered margin {margin} no longer dominates the fast-math envelope {worst}"
    );

    let run = |validator: &Validator| {
        let mut seq = ValidationEngine::new(*validator);
        let mut fused = ValidationEngine::new(*validator);
        let plain = validator.validate_detailed(&candidate, &history, &data);
        let cold_seq = seq.validate_detailed(&candidate, &ids, &history, &data);
        let cold_fused = fused.validate_batched_detailed(&candidate, &ids, &history, &data);
        let warm_fused = fused.validate_batched_detailed(&candidate, &ids, &history, &data);
        assert_eq!(cold_seq, plain, "engine cold path diverged from plain validator");
        assert_eq!(cold_fused, plain, "batched cold path diverged from plain validator");
        assert_eq!(warm_fused, plain, "batched warm path diverged from plain validator");
        let preds: Vec<Vec<usize>> = history
            .iter()
            .chain(std::iter::once(&candidate))
            .map(|m| m.predict_batch(data.features()))
            .collect();
        (plain, preds)
    };

    let validator = Validator::new(ValidationConfig::new(8));
    gemm::set_fast_math(Some(false));
    let (exact_diag, exact_preds) = run(&validator);
    gemm::set_fast_math(Some(true));
    let (fast_diag, fast_preds) = run(&validator);
    gemm::set_fast_math(None);

    // Above the bound, the tiers must agree exactly: same per-model
    // predictions, hence identical confusion matrices and a bitwise
    // identical verdict (φ, τ, vote and all diagnostics included).
    assert_eq!(fast_preds, exact_preds, "predictions flipped despite the margin guarantee");
    assert_eq!(fast_diag, exact_diag, "verdict diverged between fast and exact tiers");

    // And the models really do implement their scripts on both tiers.
    for (t, p) in exact_preds.iter().take(5).enumerate() {
        assert_eq!(p, &errs(&[t, t + 5, (t * 3) % N]), "history model {t} off-script");
    }
}
