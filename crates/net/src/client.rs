//! Client actors: honest participants and the attacker.

use crate::message::{AbstainReason, Message, NodeId};
use crate::transport::Endpoint;
use baffle_attack::voting::VoterBehavior;
use baffle_attack::ModelReplacement;
use baffle_core::{ValidateError, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_fl::LocalTrainer;
use baffle_nn::{wire, Mlp, Model};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A client's role in the protocol.
#[derive(Debug, Clone)]
pub enum ClientRole {
    /// Trains honestly and votes per the validation function.
    Honest,
    /// Submits model-replacement updates and votes per the configured
    /// behaviour.
    Malicious {
        /// The attack used to craft poisoned updates.
        attack: ModelReplacement,
        /// The attacker's backdoor training set.
        backdoor_data: Dataset,
        /// How the client votes when selected as a validator.
        voting: VoterBehavior,
    },
}

/// One federated client actor: local data, a cached slice of the
/// accepted-model history (filled incrementally by the server), the
/// validation function, and a role.
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    data: Dataset,
    trainer: LocalTrainer,
    engine: ValidationEngine,
    role: ClientRole,
    /// Cached history ids, oldest first — parallel to `history_models`.
    /// The ids double as the validation engine's cache keys, so a model
    /// shipped once is never re-evaluated on this client's data.
    history_ids: Vec<ModelId>,
    /// Cached history models, oldest first.
    history_models: Vec<Mlp>,
    history_window: usize,
    template: Mlp,
    rng: StdRng,
    rounds_participated: u64,
}

impl Client {
    /// Creates a client actor. `template` is any model with the right
    /// architecture (used to decode incoming parameter vectors).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        endpoint: Endpoint,
        data: Dataset,
        trainer: LocalTrainer,
        validator: Validator,
        role: ClientRole,
        history_window: usize,
        template: Mlp,
        seed: u64,
    ) -> Self {
        Self {
            endpoint,
            data,
            trainer,
            engine: ValidationEngine::new(validator),
            role,
            history_ids: Vec::new(),
            history_models: Vec::new(),
            history_window,
            template,
            rng: StdRng::seed_from_u64(seed),
            rounds_participated: 0,
        }
    }

    /// Number of rounds this client was asked to train or validate in.
    pub fn rounds_participated(&self) -> u64 {
        self.rounds_participated
    }

    /// Runs the actor loop until a [`Message::Shutdown`] arrives (or the
    /// network disconnects).
    pub fn run(&mut self) {
        while let Ok(env) = self.endpoint.recv() {
            match env.message {
                Message::TrainRequest { round, global } => {
                    self.rounds_participated += 1;
                    self.handle_train(round, &global);
                }
                Message::ValidateRequest { round, candidate, history_delta } => {
                    self.rounds_participated += 1;
                    for entry in history_delta {
                        if let Ok(params) = wire::decode_f32(&entry.params) {
                            // Ids arrive mostly in order; insert sorted and
                            // skip duplicates (a re-shipped delta after loss).
                            if let Err(pos) = self.history_ids.binary_search(&entry.id) {
                                let mut m = self.template.clone();
                                m.set_params(&params);
                                self.history_ids.insert(pos, entry.id);
                                self.history_models.insert(pos, m);
                            }
                        }
                    }
                    let excess = self.history_ids.len().saturating_sub(self.history_window);
                    if excess > 0 {
                        for id in self.history_ids.drain(..excess) {
                            self.engine.invalidate(id);
                        }
                        self.history_models.drain(..excess);
                    }
                    self.handle_validate(round, &candidate);
                }
                Message::RoundResult { .. } => {
                    // Nothing to do: history updates arrive with the next
                    // ValidateRequest delta.
                }
                Message::UpdateSubmission { .. }
                | Message::VoteSubmission { .. }
                | Message::Abstain { .. } => {
                    // Client-to-server messages; ignore if misrouted.
                }
                Message::Shutdown => break,
            }
        }
    }

    /// Declares that this client cannot act on the current request, so
    /// the server's phase ledger stops waiting for it instead of burning
    /// the phase timeout. In the vote phase this is the paper's
    /// footnote-1 implicit accept made explicit.
    fn abstain(&self, round: u64, reason: AbstainReason) {
        self.endpoint
            .send(NodeId::SERVER, Message::Abstain { round, from: self.endpoint.id(), reason });
    }

    fn handle_train(&mut self, round: u64, global_bytes: &Bytes) {
        let Ok(params) = wire::decode_f32(global_bytes) else {
            return self.abstain(round, AbstainReason::UndecodableGlobal);
        };
        if self.data.is_empty() {
            // No local data: a zero update would only dilute the
            // aggregate; declare the inability instead.
            return self.abstain(round, AbstainReason::EmptyShard);
        }
        let mut global = self.template.clone();
        global.set_params(&params);
        let update = match &self.role {
            ClientRole::Honest => self.trainer.train_update(&global, &self.data, &mut self.rng),
            ClientRole::Malicious { attack, backdoor_data, .. } => {
                let mut atk_rng = StdRng::seed_from_u64(0xBAD ^ round);
                attack.poisoned_update(&global, &self.data, backdoor_data, &mut atk_rng)
            }
        };
        self.endpoint.send(
            NodeId::SERVER,
            Message::UpdateSubmission {
                round,
                from: self.endpoint.id(),
                update: Bytes::from(wire::encode_f32(&update)),
            },
        );
    }

    fn handle_validate(&mut self, round: u64, candidate_bytes: &Bytes) {
        let Ok(params) = wire::decode_f32(candidate_bytes) else {
            return self.abstain(round, AbstainReason::UndecodableCandidate);
        };
        let mut candidate = self.template.clone();
        candidate.set_params(&params);
        let outcome =
            self.engine.validate(&candidate, &self.history_ids, &self.history_models, &self.data);
        let honest_vote = match outcome {
            Ok(verdict) => verdict.vote(),
            // Cannot judge: abstain explicitly (footnote 1) — regardless
            // of role, since there is no verdict to lie about.
            Err(e) => {
                let reason = match e {
                    ValidateError::NotEnoughHistory { .. } => AbstainReason::HistoryTooShort,
                    ValidateError::EmptyDataset => AbstainReason::NoValidationData,
                    ValidateError::Lof(_) => AbstainReason::DegenerateAnalysis,
                };
                return self.abstain(round, reason);
            }
        };
        let vote = match &self.role {
            ClientRole::Honest => honest_vote,
            ClientRole::Malicious { voting, .. } => voting.cast(honest_vote),
        };
        self.endpoint.send(
            NodeId::SERVER,
            Message::VoteSubmission { round, from: self.endpoint.id(), vote },
        );
    }
}
