//! Whole-model training-step benchmarks: one `train_batch` of the
//! default CNN (all conv layers on the im2col path vs forced onto the
//! naive loops) and of the default MLP, over the batch size the
//! experiment driver uses.
//!
//! This is the end-to-end number behind the conv/GEMM micro-benchmarks:
//! it includes activations, the dense head, softmax and SGD, so it shows
//! how much of the kernel speedup survives in a full step.

use baffle_nn::{Cnn, CnnSpec, Mlp, MlpSpec, Sgd};
use baffle_tensor::rng as trng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const BATCH: usize = 64;

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);

    let spec = CnnSpec::new(24, &[6, 6], 3, 6).with_residual();
    let mut rng = StdRng::seed_from_u64(42);
    let x = trng::uniform_matrix(&mut rng, BATCH, spec.input_len(), -1.0, 1.0);
    let y: Vec<usize> = (0..BATCH).map(|i| i % spec.num_classes()).collect();

    let mut cnn = Cnn::new(&spec, &mut rng);
    group.bench_function(BenchmarkId::new("cnn", "im2col"), |bch| {
        let mut opt = Sgd::new(0.01);
        bch.iter(|| cnn.train_batch(black_box(&x), black_box(&y), &mut opt))
    });

    let mut naive = Cnn::new(&spec, &mut StdRng::seed_from_u64(42));
    naive.force_naive_conv(true);
    group.bench_function(BenchmarkId::new("cnn", "naive_conv"), |bch| {
        let mut opt = Sgd::new(0.01);
        bch.iter(|| naive.train_batch(black_box(&x), black_box(&y), &mut opt))
    });

    let mlp_spec = MlpSpec::new(24, &[32, 32], 6);
    let mut mlp = Mlp::new(&mlp_spec, &mut rng);
    group.bench_function(BenchmarkId::new("mlp", "default"), |bch| {
        let mut opt = Sgd::new(0.01);
        bch.iter(|| mlp.train_batch(black_box(&x), black_box(&y), &mut opt))
    });

    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
