//! Property-based tests for the data substrate.

use baffle_data::{dirichlet, partition, Dataset, SyntheticVision, VisionSpec};
use baffle_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Dirichlet samples are probability vectors for any (α, dim).
    #[test]
    fn dirichlet_is_a_distribution(alpha in 0.05f64..20.0, dim in 1usize..30, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = dirichlet::sample_symmetric(&mut rng, alpha, dim);
        prop_assert_eq!(p.len(), dim);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// The Dirichlet partition is an exact partition of the index set,
    /// for any label distribution and client count.
    #[test]
    fn partition_is_exact(
        labels in prop::collection::vec(0usize..5, 1..120),
        clients in 1usize..15,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shards = partition::dirichlet_indices(&mut rng, &labels, 5, clients, 0.9);
        prop_assert_eq!(shards.len(), clients);
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
    }

    /// client_server_split conserves samples exactly.
    #[test]
    fn split_conserves_samples(n in 1usize..150, share in 0.0f64..0.9, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let d = Dataset::new(x, y, 3);
        let (clients, server) = partition::client_server_split(&mut rng, &d, 4, 0.9, share);
        let total: usize = clients.iter().map(Dataset::len).sum::<usize>() + server.len();
        prop_assert_eq!(total, n);
        prop_assert_eq!(server.len(), (share * n as f64).round() as usize);
    }

    /// Generated datasets have valid labels and tags for any spec.
    #[test]
    fn generation_respects_the_spec(
        classes in 2usize..8,
        dim in 1usize..16,
        subgroups in 1u16..5,
        n in 0usize..80,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = VisionSpec::new(classes, dim, subgroups);
        let gen = SyntheticVision::new(&spec, &mut rng);
        let d = gen.generate(&mut rng, n);
        prop_assert_eq!(d.len(), n);
        prop_assert_eq!(d.input_dim(), dim);
        prop_assert!(d.labels().iter().all(|&y| y < classes));
        prop_assert!(d.subgroups().iter().all(|&s| s < subgroups));
        prop_assert!(d.features().is_finite());
    }

    /// Subset ∘ concat interplay: concatenating then taking the first
    /// half reproduces the original.
    #[test]
    fn concat_then_subset_roundtrip(n in 1usize..40) {
        let x = Matrix::from_fn(n, 3, |r, c| (r * 3 + c) as f32);
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let d = Dataset::new(x, y, 2);
        let doubled = d.concat(&d);
        let first: Vec<usize> = (0..n).collect();
        prop_assert_eq!(doubled.subset(&first), d);
    }

    /// relabel with a never-matching predicate is the identity.
    #[test]
    fn relabel_nothing_is_identity(n in 1usize..40) {
        let x = Matrix::from_fn(n, 1, |r, _| r as f32);
        let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let d = Dataset::new(x, y, 3);
        let same = d.relabel(0, |_, _, _| false);
        prop_assert_eq!(same, d);
    }
}
