//! Random initialisation helpers.
//!
//! All randomness in the workspace flows through explicitly seeded
//! [`rand::rngs::StdRng`] instances so that every experiment is
//! reproducible from a single `--seed` flag. Standard-normal samples are
//! produced with a Box–Muller transform (avoiding a `rand_distr`
//! dependency).

use crate::Matrix;
use rand::Rng;

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = baffle_tensor::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // u1 in (0, 1] so the log is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills a vector with `n` i.i.d. `N(mean, std²)` samples.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, mean: f32, std: f32) -> Vec<f32> {
    (0..n).map(|_| mean + std * standard_normal(rng)).collect()
}

/// A matrix with i.i.d. `N(0, std²)` entries.
pub fn normal_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_vec(rows, cols, normal_vec(rng, rows * cols, 0.0, std))
}

/// He/Kaiming-style initialisation for a dense layer with `fan_in` inputs:
/// `N(0, 2 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_init<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    assert!(fan_in > 0, "he_init: fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    normal_matrix(rng, fan_in, fan_out, std)
}

/// [`he_init`] materialised directly in the transposed orientation
/// (`fan_out × fan_in`): draws the identical sample sequence, so the
/// result is bit-for-bit equal to
/// `he_init(rng, fan_in, fan_out).transpose()` without building and
/// discarding the intermediate matrix.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_init_transposed<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    assert!(fan_in > 0, "he_init_transposed: fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    let samples = normal_vec(rng, fan_in * fan_out, 0.0, std);
    let mut m = Matrix::zeros(fan_out, fan_in);
    for (t, v) in samples.into_iter().enumerate() {
        // The t-th draw lands at (t / fan_out, t % fan_out) in he_init's
        // row-major layout; write it to the mirrored position.
        m[(t % fan_out, t / fan_out)] = v;
    }
    m
}

/// One round of the splitmix64 output mixer: a bijective avalanche
/// function, so distinct inputs can never collide.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG stream seed from a base seed, a round
/// number, and a node id.
///
/// XOR-folding (`seed ^ round`) is *not* a sound derivation: adjacent
/// base seeds collide across rounds (`seed ^ round == (seed ^ 1) ^
/// (round ^ 1)`), and a shared constant gives every node the same
/// stream. Chaining the splitmix64 mixer over each input instead
/// avalanches every bit, so any change to `(seed, round, node)`
/// produces an unrelated stream while staying a pure function — callers
/// that re-derive after a checkpoint restore replay the identical
/// sequence.
#[inline]
pub fn derive_stream(seed: u64, round: u64, node: u64) -> u64 {
    let mut z = splitmix64(seed);
    z = splitmix64(z ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = splitmix64(z ^ node.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z
}

/// A matrix with i.i.d. `U(lo, hi)` entries.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    lo: f32,
    hi: f32,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn normal_vec_respects_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = normal_vec(&mut rng, 20_000, 3.0, 0.5);
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn he_init_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = he_init(&mut rng, 1000, 50);
        let narrow = he_init(&mut rng, 10, 50);
        let wide_std = wide.frobenius_norm() / (wide.len() as f32).sqrt();
        let narrow_std = narrow.frobenius_norm() / (narrow.len() as f32).sqrt();
        assert!(wide_std < narrow_std, "{wide_std} !< {narrow_std}");
    }

    #[test]
    fn he_init_transposed_is_exactly_the_transpose() {
        for &(fan_in, fan_out) in &[(1usize, 1usize), (7, 5), (3, 12), (48, 96)] {
            let seed = (fan_in * 31 + fan_out) as u64;
            let via_transpose = he_init(&mut StdRng::seed_from_u64(seed), fan_in, fan_out);
            let direct = he_init_transposed(&mut StdRng::seed_from_u64(seed), fan_in, fan_out);
            assert_eq!(via_transpose.transpose(), direct, "{fan_in}x{fan_out}");
        }
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = normal_matrix(&mut StdRng::seed_from_u64(9), 3, 3, 1.0);
        let b = normal_matrix(&mut StdRng::seed_from_u64(9), 3, 3, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn derive_stream_avoids_xor_fold_collisions() {
        // The classic failure of `seed ^ round`: (s, r) and (s^1, r^1)
        // collapse onto one stream. The mixer must keep them apart.
        assert_eq!(10u64 ^ 3, 11u64 ^ 2);
        assert_ne!(derive_stream(10, 3, 0), derive_stream(11, 2, 0));
        // Distinct nodes on the same (seed, round) get distinct streams.
        assert_ne!(derive_stream(0xBAD, 4, 1), derive_stream(0xBAD, 4, 2));
        // Pure function: re-derivation replays the same stream.
        assert_eq!(derive_stream(7, 9, 3), derive_stream(7, 9, 3));
    }

    #[test]
    fn derive_stream_spreads_over_small_inputs() {
        // Small consecutive inputs — the only kind this codebase feeds
        // it — must produce well-spread outputs, not a low-entropy band.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for round in 0..8u64 {
                for node in 0..8u64 {
                    seen.insert(derive_stream(seed, round, node));
                }
            }
        }
        assert_eq!(seen.len(), 8 * 8 * 8, "stream collision on small inputs");
    }

    #[test]
    fn uniform_matrix_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = uniform_matrix(&mut rng, 10, 10, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }
}
