//! Emits a machine-readable training-step perf summary
//! (`BENCH_train_step.json` on CI): median ns per `train_batch` of the
//! default residual CNN on the im2col path, the same CNN forced onto
//! the naive conv loops, and the default MLP, so the end-to-end cost of
//! one optimizer step is tracked per commit alongside the kernel
//! micro-benchmarks.
//!
//! Uses plain `std::time` rather than Criterion so it runs as a normal
//! release binary:
//! `cargo run --release -p baffle-bench --bin train_step_report`.
//!
//! With `--features alloc-probe` the report also meters heap traffic
//! per warmed-up training step (the `*_allocs_per_step` columns; `null`
//! without the feature), and it always reports the serial vs
//! pool-chunked FedAvg aggregation cost at experiment scale.

use baffle_fl::{fedavg, fedavg_serial};
use baffle_nn::{Cnn, CnnSpec, Mlp, MlpSpec, Sgd};
use baffle_tensor::{gemm, pool, rng as trng};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const BATCH: usize = 64;

/// Median wall-clock of `reps` single runs of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Picks a repetition count that keeps each variant near ~0.3 s total.
fn reps_for<F: FnMut()>(f: &mut F) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_nanos().max(1) as usize;
    (300_000_000 / once).clamp(5, 200)
}

fn main() {
    let spec = CnnSpec::new(24, &[6, 6], 3, 6).with_residual();
    let mut rng = StdRng::seed_from_u64(42);
    let x = trng::uniform_matrix(&mut rng, BATCH, spec.input_len(), -1.0, 1.0);
    let y: Vec<usize> = (0..BATCH).map(|i| i % spec.num_classes()).collect();

    let mut cnn = Cnn::new(&spec, &mut rng);
    let mut opt = Sgd::new(0.01);
    let mut step_cnn = || {
        black_box(cnn.train_batch(black_box(&x), black_box(&y), &mut opt));
    };
    let cnn_ns = median_ns(reps_for(&mut step_cnn), step_cnn);

    let mut naive = Cnn::new(&spec, &mut StdRng::seed_from_u64(42));
    naive.force_naive_conv(true);
    let mut opt_naive = Sgd::new(0.01);
    let mut step_naive = || {
        black_box(naive.train_batch(black_box(&x), black_box(&y), &mut opt_naive));
    };
    let naive_ns = median_ns(reps_for(&mut step_naive), step_naive);

    let mlp_spec = MlpSpec::new(24, &[32, 32], 6);
    let mut mlp = Mlp::new(&mlp_spec, &mut rng);
    let mut opt_mlp = Sgd::new(0.01);
    let mut step_mlp = || {
        black_box(mlp.train_batch(black_box(&x), black_box(&y), &mut opt_mlp));
    };
    let mlp_ns = median_ns(reps_for(&mut step_mlp), step_mlp);

    // Heap traffic per warmed-up step (the timing loops above are the
    // warm-up). Charged process-wide, so pool task boxing on parallel
    // paths is attributed to the step that fanned out.
    #[cfg(feature = "alloc-probe")]
    let (cnn_allocs, mlp_allocs) = {
        const PROBE_STEPS: u64 = 20;
        let (_, c) = baffle_bench::alloc_probe::measure(|| {
            for _ in 0..PROBE_STEPS {
                black_box(cnn.train_batch(black_box(&x), black_box(&y), &mut opt));
            }
        });
        let (_, m) = baffle_bench::alloc_probe::measure(|| {
            for _ in 0..PROBE_STEPS {
                black_box(mlp.train_batch(black_box(&x), black_box(&y), &mut opt_mlp));
            }
        });
        (
            format!("{:.2}", c.allocs as f64 / PROBE_STEPS as f64),
            format!("{:.2}", m.allocs as f64 / PROBE_STEPS as f64),
        )
    };
    #[cfg(not(feature = "alloc-probe"))]
    let (cnn_allocs, mlp_allocs) = ("null".to_string(), "null".to_string());

    // FedAvg at experiment scale: the serial reference vs the
    // pool-chunked path (bit-identical by construction).
    let fed_params = 200_000;
    let fed_updates = 10;
    let global = trng::normal_vec(&mut rng, fed_params, 0.0, 0.3);
    let updates: Vec<Vec<f32>> =
        (0..fed_updates).map(|_| trng::normal_vec(&mut rng, fed_params, 0.0, 0.01)).collect();
    let mut agg_serial = || {
        black_box(fedavg_serial(black_box(&global), black_box(&updates), 2.0, 100));
    };
    let fed_serial_ns = median_ns(reps_for(&mut agg_serial), agg_serial);
    let mut agg_par = || {
        black_box(fedavg(black_box(&global), black_box(&updates), 2.0, 100));
    };
    let fed_par_ns = median_ns(reps_for(&mut agg_par), agg_par);

    let d = gemm::dispatch_counts();
    println!("{{");
    println!("  \"bench\": \"train_step\",");
    println!("  \"threads\": {},", pool::threads());
    println!("  \"simd\": {},", gemm::simd_enabled());
    println!("  \"batch\": {BATCH},");
    println!("  \"unit\": \"ns_per_step_median\",");
    println!("  \"cnn_im2col_ns\": {cnn_ns:.0},");
    println!("  \"cnn_naive_conv_ns\": {naive_ns:.0},");
    println!("  \"cnn_speedup\": {:.2},", naive_ns / cnn_ns);
    println!("  \"mlp_ns\": {mlp_ns:.0},");
    println!("  \"cnn_allocs_per_step\": {cnn_allocs},");
    println!("  \"mlp_allocs_per_step\": {mlp_allocs},");
    println!("  \"fedavg_params\": {fed_params},");
    println!("  \"fedavg_updates\": {fed_updates},");
    println!("  \"fedavg_serial_ns\": {fed_serial_ns:.0},");
    println!("  \"fedavg_parallel_ns\": {fed_par_ns:.0},");
    println!("  \"fedavg_speedup\": {:.2},", fed_serial_ns / fed_par_ns);
    println!(
        "  \"gemm_dispatch\": {{\"blocked\": {}, \"simd\": {}, \"banded\": {}}}",
        d.blocked, d.simd, d.banded
    );
    println!("}}");
}
