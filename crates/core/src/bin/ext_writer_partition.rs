//! Extension experiment: Dirichlet partition (the paper's worst case —
//! no validating client holds backdoor-feature data) vs per-writer
//! generation (FEMNIST's natural structure; honest clients *do* hold
//! correctly-labelled backdoor-feature samples, the strictly weaker
//! setting of Sun et al. the paper contrasts itself against in §VII).
//!
//! Run with `cargo run --release -p baffle-core --bin ext_writer_partition`.

use baffle_core::exp::{cell, repeat_rates, ExpArgs, Table};
use baffle_core::{ClientDataModel, SimulationConfig};

fn main() {
    let args = ExpArgs::from_env();
    let mut table = Table::new(
        "Extension: client-data model vs detection rates (CifarLike, BAFFLE, ℓ=20, q=5)",
        &["client data", "FP rate", "FN rate"],
    );
    let models = [
        ("dirichlet (worst case)", ClientDataModel::Dirichlet),
        (
            "writers, mild styles",
            ClientDataModel::Writers { style_std: 0.3, samples_per_client: 180 },
        ),
        (
            "writers, strong styles",
            ClientDataModel::Writers { style_std: 1.0, samples_per_client: 180 },
        ),
    ];
    for (name, model) in models {
        let mut config = SimulationConfig::cifar_like(args.seed);
        config.client_data = model;
        if args.fast {
            config.rounds = 20;
            config.poison_rounds = vec![10, 15];
        }
        let (fp, fnr) = repeat_rates(&config, &args);
        table.row(vec![name.to_string(), cell(&fp), cell(&fnr)]);
    }
    table.emit(&args);
    println!(
        "Validating clients that hold correctly-labelled backdoor-feature data can\n\
         only help detection (the poisoned model misclassifies *their* samples),\n\
         so FN should stay 0; stronger writer styles add per-client FP noise."
    );
}
