//! Write-ahead log, crash recovery and hot-standby failover.
//!
//! [`crate::server::Server::checkpoint`] snapshots the whole trusted
//! state, but a snapshot-per-round durability story costs a full
//! serialization of the history window every round and still loses the
//! round in flight when the process dies between snapshots. This module
//! adds the production shape: a [`DurableServer`] journals every round
//! outcome to an append-only [`WalRecord`] log as it is decided, and
//! compacts the log into an atomically-replaced checkpoint every
//! `compact_every` outcomes. Recovery is `load latest checkpoint →
//! replay WAL tail` and reconstructs the pre-crash state bit-for-bit
//! (the replay-determinism test in `crates/net/tests/durability.rs`
//! pins the next checkpoint byte-identical to an uninterrupted run's).
//!
//! # Record format
//!
//! Records reuse the [`crate::frame`] framing discipline — magic,
//! version, length prefix, FNV-1a body checksum, little-endian integers:
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0xBAFF_10D6 (LE)
//!      4     4  version    1
//!      8     4  body length in bytes
//!     12     4  FNV-1a checksum of the body
//!     16     —  body: kind u8 | round u64 | rng stream u64 | fields
//! ```
//!
//! Three kinds exist. `RoundStart` is appended before the round runs;
//! `RoundAccepted` / `RoundRejected` after it is decided, carrying the
//! wire-coded new global model (accepted rounds only) and the round's
//! **changes** to the committed history-sync map (commits and resets).
//! Every record also carries the round's derived selection-RNG stream
//! id — a pure function of `(seed, round, server id)` — so replay can
//! refuse a log journaled under a different seed instead of silently
//! diverging.
//!
//! # Torn rounds
//!
//! A crash between the `RoundStart` append and the outcome append
//! leaves the log **torn**: round `N` started but never decided.
//! Recovery detects this (a trailing `RoundStart` above the last
//! outcome) and restores to the state *entering* round `N`; the next
//! [`Server::run_round`] then re-runs round `N` from scratch. The
//! re-ask is duplicate-safe by construction: selection is re-derived
//! identically, each phase's [`crate::phase::PhaseLedger`] is fresh,
//! and first-submission-wins intake counts any straggling first-ask
//! deliveries as duplicates, never as rejections.
//!
//! # Hot standby
//!
//! A [`Standby`] is a warm replica: it restores from the primary's
//! checkpoint and then tails the log — by polling the file
//! ([`Standby::catch_up`]) or by ingesting a record stream such as a
//! socket ([`Standby::ingest_stream`]) — keeping a live
//! [`baffle_core::ModelHistory`] ready. On primary failure the driver
//! tears down the dead `SERVER` route, quiesces the scheduler
//! ([`crate::scheduler::SchedulerHandle::rendezvous`]), registers a
//! fresh endpoint and calls [`Standby::promote`]; the standby becomes
//! *the* server and re-runs the torn round, if any. Compaction shows up
//! to the tailer as the log shrinking; it then reloads the checkpoint
//! and resumes from offset zero.

use crate::frame::{read_body_chunked, read_header, MAX_BODY};
use crate::message::NodeId;
use crate::server::{Server, ServerConfig, ServerRound};
use crate::transport::{Endpoint, Network};
use baffle_core::Validator;
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_nn::{wire, Mlp, Model};
use baffle_tensor::rng::derive_stream;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL record magic; doubles as a log-desync detector.
pub const WAL_MAGIC: u32 = 0xBAFF_10D6;
/// Current WAL record format version.
pub const WAL_VERSION: u32 = 1;
/// Fixed record header size: magic + version + body length + checksum.
pub const WAL_HEADER: usize = 16;
/// The log file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";
/// The compacted checkpoint file name inside a durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// Checkpoint replacement staging name — written fully, synced, then
/// renamed over [`CHECKPOINT_FILE`] so a crash mid-write never leaves a
/// half checkpoint behind.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

const KIND_START: u8 = 0;
const KIND_ACCEPTED: u8 = 1;
const KIND_REJECTED: u8 = 2;

/// One journaled event in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Round `round` is about to run. Appended before any protocol
    /// message goes out, so a crash mid-round is detectable as a start
    /// with no matching outcome.
    RoundStart {
        /// The 1-based round number.
        round: u64,
        /// The round's derived selection-RNG stream id.
        rng_stream: u64,
    },
    /// Round `round` integrated its candidate.
    RoundAccepted {
        /// The 1-based round number.
        round: u64,
        /// The round's derived selection-RNG stream id.
        rng_stream: u64,
        /// The new global model, lossless wire-coded (`f32`) — the same
        /// encoding the trusted checkpoint window uses.
        model: Bytes,
        /// History-sync points committed this round (absolute values).
        sync_commits: Vec<(u64, ModelId)>,
        /// Clients whose sync state this round reset (gapped windows).
        sync_resets: Vec<u64>,
    },
    /// Round `round` rejected (or skipped) its candidate. The global
    /// model did not change, but sync points may still have moved.
    RoundRejected {
        /// The 1-based round number.
        round: u64,
        /// The round's derived selection-RNG stream id.
        rng_stream: u64,
        /// History-sync points committed this round (absolute values).
        sync_commits: Vec<(u64, ModelId)>,
        /// Clients whose sync state this round reset.
        sync_resets: Vec<u64>,
    },
}

impl WalRecord {
    /// The round this record belongs to.
    pub fn round(&self) -> u64 {
        match self {
            WalRecord::RoundStart { round, .. }
            | WalRecord::RoundAccepted { round, .. }
            | WalRecord::RoundRejected { round, .. } => *round,
        }
    }

    /// The derived selection-RNG stream id journaled with the record.
    pub fn rng_stream(&self) -> u64 {
        match self {
            WalRecord::RoundStart { rng_stream, .. }
            | WalRecord::RoundAccepted { rng_stream, .. }
            | WalRecord::RoundRejected { rng_stream, .. } => *rng_stream,
        }
    }
}

/// A damaged, truncated or inconsistent log / checkpoint, or the I/O
/// failing underneath it.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file or stream operation failed.
    Io(std::io::Error),
    /// A record failed structural or checksum validation, or the log's
    /// contents are inconsistent (gapped rounds, wrong seed).
    Corrupt(String),
    /// The checkpoint blob was rejected by [`Server::restore`].
    State(crate::server::CheckpointError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(what) => write!(f, "corrupt wal: {what}"),
            WalError::State(e) => write!(f, "wal recovery: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Encodes one record as a self-delimiting checksummed frame.
pub fn encode_record(record: &WalRecord) -> Bytes {
    let mut body = BytesMut::new();
    let put_lists = |body: &mut BytesMut, commits: &[(u64, ModelId)], resets: &[u64]| {
        body.put_u32_le(commits.len() as u32);
        for &(client, id) in commits {
            body.put_u64_le(client);
            body.put_u64_le(id);
        }
        body.put_u32_le(resets.len() as u32);
        for &client in resets {
            body.put_u64_le(client);
        }
    };
    match record {
        WalRecord::RoundStart { round, rng_stream } => {
            body.put_u8(KIND_START);
            body.put_u64_le(*round);
            body.put_u64_le(*rng_stream);
        }
        WalRecord::RoundAccepted { round, rng_stream, model, sync_commits, sync_resets } => {
            body.put_u8(KIND_ACCEPTED);
            body.put_u64_le(*round);
            body.put_u64_le(*rng_stream);
            body.put_u32_le(model.len() as u32);
            body.extend_from_slice(model);
            put_lists(&mut body, sync_commits, sync_resets);
        }
        WalRecord::RoundRejected { round, rng_stream, sync_commits, sync_resets } => {
            body.put_u8(KIND_REJECTED);
            body.put_u64_le(*round);
            body.put_u64_le(*rng_stream);
            put_lists(&mut body, sync_commits, sync_resets);
        }
    }
    let mut buf = BytesMut::with_capacity(WAL_HEADER + body.len());
    buf.put_u32_le(WAL_MAGIC);
    buf.put_u32_le(WAL_VERSION);
    buf.put_u32_le(body.len() as u32);
    buf.put_u32_le(wire::fnv1a(&body));
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Bounds-checked little-endian reader over a record body.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalError> {
        if self.buf.len() < n {
            return Err(WalError::Corrupt(format!("record body truncated reading {what}")));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WalError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn lists(&mut self) -> Result<(Vec<(u64, ModelId)>, Vec<u64>), WalError> {
        let n_commits = self.u32("commit count")? as usize;
        let mut commits = Vec::with_capacity(n_commits.min(1 << 16));
        for _ in 0..n_commits {
            let client = self.u64("commit client")?;
            let id = self.u64("commit point")?;
            commits.push((client, id));
        }
        let n_resets = self.u32("reset count")? as usize;
        let mut resets = Vec::with_capacity(n_resets.min(1 << 16));
        for _ in 0..n_resets {
            resets.push(self.u64("reset client")?);
        }
        Ok((commits, resets))
    }
}

/// Decodes the first record in `buf`, if a complete one is present.
/// Returns the record plus the bytes it consumed, or `Ok(None)` when
/// `buf` ends inside the record (a partially appended tail — wait for
/// more bytes).
///
/// # Errors
///
/// [`WalError::Corrupt`] for structural damage: bad magic or version,
/// oversized length, checksum mismatch, unknown kind, or body bytes
/// left over after the fields.
pub fn decode_record(buf: &[u8]) -> Result<Option<(WalRecord, usize)>, WalError> {
    if buf.len() < WAL_HEADER {
        return Ok(None);
    }
    let word = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
    if word(0) != WAL_MAGIC {
        return Err(WalError::Corrupt("bad record magic".into()));
    }
    if word(4) != WAL_VERSION {
        return Err(WalError::Corrupt(format!("unsupported record version {}", word(4))));
    }
    let body_len = word(8) as usize;
    if body_len > MAX_BODY {
        return Err(WalError::Corrupt("record body too large".into()));
    }
    if buf.len() < WAL_HEADER + body_len {
        return Ok(None);
    }
    let body = &buf[WAL_HEADER..WAL_HEADER + body_len];
    if wire::fnv1a(body) != word(12) {
        return Err(WalError::Corrupt("record checksum mismatch".into()));
    }
    let mut c = Cursor { buf: body };
    let kind = c.u8("kind")?;
    let round = c.u64("round")?;
    let rng_stream = c.u64("rng stream")?;
    let record = match kind {
        KIND_START => WalRecord::RoundStart { round, rng_stream },
        KIND_ACCEPTED => {
            let model_len = c.u32("model length")? as usize;
            let model = Bytes::copy_from_slice(c.take(model_len, "model payload")?);
            let (sync_commits, sync_resets) = c.lists()?;
            WalRecord::RoundAccepted { round, rng_stream, model, sync_commits, sync_resets }
        }
        KIND_REJECTED => {
            let (sync_commits, sync_resets) = c.lists()?;
            WalRecord::RoundRejected { round, rng_stream, sync_commits, sync_resets }
        }
        other => return Err(WalError::Corrupt(format!("unknown record kind {other}"))),
    };
    if !c.buf.is_empty() {
        return Err(WalError::Corrupt("trailing bytes inside record body".into()));
    }
    Ok(Some((record, WAL_HEADER + body_len)))
}

/// Cuts records off a byte stream — the standby's ingestion side when
/// the log is shipped over the socket transport instead of a shared
/// file. Same shape as [`crate::frame::FrameReader`].
pub struct RecordReader<R> {
    inner: R,
}

impl<R: Read> RecordReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Reads the next record. Returns `Ok(None)` on a clean end of
    /// stream (EOF exactly on a record boundary).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] for I/O failures (EOF mid-record surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`]), [`WalError::Corrupt`]
    /// for an undecodable record.
    pub fn read_record(&mut self) -> Result<Option<WalRecord>, WalError> {
        let header = match read_header::<_, WAL_HEADER>(&mut self.inner)? {
            Some(h) => h,
            None => return Ok(None),
        };
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != WAL_MAGIC {
            return Err(WalError::Corrupt("bad record magic".into()));
        }
        let body_len =
            u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY {
            return Err(WalError::Corrupt("record body too large".into()));
        }
        let mut rec = Vec::with_capacity(WAL_HEADER + body_len.min(1 << 16));
        rec.extend_from_slice(&header);
        read_body_chunked(&mut self.inner, &mut rec, body_len)?;
        match decode_record(&rec)? {
            Some((record, consumed)) => {
                debug_assert_eq!(consumed, rec.len(), "exactly one record was read");
                Ok(Some(record))
            }
            None => Err(WalError::Corrupt("record shorter than its header claims".into())),
        }
    }
}

/// Appends records to the log file, flushing and syncing each one — an
/// outcome record that [`WalWriter::append`] returned `Ok` for survives
/// a process crash.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self { file: File::create(path)? })
    }

    /// Appends one record and syncs it to disk.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.file.write_all(&encode_record(record))?;
        self.file.sync_data()
    }
}

/// What one [`WalTailer::poll`] observed.
#[derive(Debug)]
pub struct TailPoll {
    /// Complete records appended since the previous poll, in order.
    pub records: Vec<WalRecord>,
    /// The log shrank below the tailer's offset — the primary compacted
    /// it. The caller must reload the checkpoint, then poll again (the
    /// offset has been rewound to zero).
    pub truncated: bool,
}

/// Follows a growing log file, returning only complete records. A
/// partial record at the tail — an append torn mid-write — is left
/// unconsumed and re-read once the rest arrives.
#[derive(Debug)]
pub struct WalTailer {
    path: PathBuf,
    offset: u64,
}

impl WalTailer {
    /// Tails the log at `path` from its beginning.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), offset: 0 }
    }

    /// Reads everything appended since the last poll. A missing file
    /// reads as empty (the writer may not have created it yet).
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] if the log's contents fail validation,
    /// [`WalError::Io`] if reading fails.
    pub fn poll(&mut self) -> Result<TailPoll, WalError> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(TailPoll { records: Vec::new(), truncated: false })
            }
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata().map_err(WalError::Io)?.len();
        if len < self.offset {
            self.offset = 0;
            return Ok(TailPoll { records: Vec::new(), truncated: true });
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut consumed = 0usize;
        while let Some((record, n)) = decode_record(&buf[consumed..])? {
            records.push(record);
            consumed += n;
        }
        self.offset += consumed as u64;
        Ok(TailPoll { records, truncated: false })
    }
}

/// Writes `blob` as the directory's checkpoint, atomically: the bytes
/// go to a staging file first, are synced, and only then renamed over
/// the live checkpoint. A crash at any point leaves either the old or
/// the new checkpoint intact, never a torn one.
fn write_checkpoint_atomic(dir: &Path, blob: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(CHECKPOINT_TMP);
    let mut file = File::create(&tmp)?;
    file.write_all(blob)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))
}

/// Everything [`Server::restore`] needs besides the blob — kept by
/// recovery paths and standbys so they can rebuild a server from any
/// checkpoint the primary writes.
#[derive(Clone)]
pub struct RestoreKit {
    /// The server's protocol configuration.
    pub config: ServerConfig,
    /// Architecture template (any model of the right shape).
    pub template: Mlp,
    /// History window `ℓ + 1`.
    pub history_window: usize,
    /// The validation function.
    pub validator: Validator,
    /// Server-side validation data.
    pub server_data: Dataset,
}

impl std::fmt::Debug for RestoreKit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestoreKit")
            .field("history_window", &self.history_window)
            .finish_non_exhaustive()
    }
}

/// What a recovery (or standby promotion) reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The round the loaded checkpoint was cut at.
    pub checkpoint_round: u64,
    /// Outcome records replayed from the log tail on top of it.
    pub replayed: usize,
    /// A round that started but never reached its outcome record — the
    /// recovered server will re-run it as a duplicate-safe re-ask.
    pub torn_round: Option<u64>,
}

/// Loads the directory's checkpoint into a server parked on a private
/// network (nothing routes to it; promotion swaps in the real
/// endpoint). Returns the server and the round it was cut at.
fn load_checkpoint(dir: &Path, kit: &RestoreKit) -> Result<(Server, u64), WalError> {
    let blob = std::fs::read(dir.join(CHECKPOINT_FILE))?;
    let endpoint = Network::new().register(NodeId::SERVER);
    let server = Server::restore(
        endpoint,
        kit.config.clone(),
        kit.template.clone(),
        kit.history_window,
        kit.validator,
        kit.server_data.clone(),
        &blob,
    )
    .map_err(WalError::State)?;
    let round = server.round();
    Ok((server, round))
}

/// A server wrapped in the durability protocol: every round is
/// journaled (`RoundStart` before, the outcome after), and the log is
/// compacted into a fresh atomic checkpoint every `compact_every`
/// outcomes.
#[derive(Debug)]
pub struct DurableServer {
    server: Server,
    wal: WalWriter,
    dir: PathBuf,
    compact_every: u64,
    outcomes_since_compact: u64,
    /// The committed sync map as of the last journaled outcome — the
    /// baseline each outcome record's commit/reset diff is taken from.
    committed_snapshot: Vec<(usize, ModelId)>,
}

impl DurableServer {
    /// Starts journaling `server` into `dir`: writes an initial
    /// checkpoint (so recovery always has one to load) and a fresh,
    /// empty log. `compact_every` of zero disables compaction — the
    /// whole run stays in the tail.
    ///
    /// Also the promotion path: a just-promoted standby wraps itself
    /// here, which naturally compacts (its state becomes the
    /// checkpoint, the old primary's log is superseded).
    pub fn create(dir: &Path, compact_every: u64, server: Server) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        write_checkpoint_atomic(dir, &server.checkpoint())?;
        let wal = WalWriter::create(&dir.join(WAL_FILE))?;
        let committed_snapshot = server.sync_committed();
        Ok(Self {
            server,
            wal,
            dir: dir.to_path_buf(),
            compact_every,
            outcomes_since_compact: 0,
            committed_snapshot,
        })
    }

    /// The wrapped server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Unwraps the server (for shutdown and final reporting).
    pub fn into_inner(self) -> Server {
        self.server
    }

    /// The directory holding the checkpoint and log.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn journal_start(&mut self) -> std::io::Result<(u64, u64)> {
        let round = self.server.round() + 1;
        let rng_stream =
            derive_stream(self.server.config().seed, round, NodeId::SERVER.0 as u64);
        self.wal.append(&WalRecord::RoundStart { round, rng_stream })?;
        Ok((round, rng_stream))
    }

    fn journal_outcome(
        &mut self,
        round: u64,
        rng_stream: u64,
        outcome: &ServerRound,
    ) -> std::io::Result<()> {
        debug_assert_eq!(outcome.round, round, "journaled outcome must match the started round");
        let now = self.server.sync_committed();
        let old: HashMap<usize, ModelId> = self.committed_snapshot.iter().copied().collect();
        let now_clients: HashMap<usize, ModelId> = now.iter().copied().collect();
        let sync_commits: Vec<(u64, ModelId)> = now
            .iter()
            .filter(|&&(client, id)| old.get(&client) != Some(&id))
            .map(|&(client, id)| (client as u64, id))
            .collect();
        let sync_resets: Vec<u64> = self
            .committed_snapshot
            .iter()
            .filter(|&&(client, _)| !now_clients.contains_key(&client))
            .map(|&(client, _)| client as u64)
            .collect();
        let record = if outcome.accepted {
            WalRecord::RoundAccepted {
                round,
                rng_stream,
                model: wire::encode_f32(&self.server.global_model().params()),
                sync_commits,
                sync_resets,
            }
        } else {
            WalRecord::RoundRejected { round, rng_stream, sync_commits, sync_resets }
        };
        self.wal.append(&record)?;
        self.committed_snapshot = now;
        Ok(())
    }

    /// Runs one protocol round under the durability protocol: journals
    /// the start, runs the round, journals the outcome, and compacts
    /// when due.
    ///
    /// # Errors
    ///
    /// Journal or compaction I/O failures. The round itself has already
    /// run when an outcome append fails; the caller should treat the
    /// instance as crashed (recovery will re-run the round as torn).
    pub fn run_round(&mut self) -> std::io::Result<ServerRound> {
        let (round, rng_stream) = self.journal_start()?;
        let outcome = self.server.run_round();
        self.journal_outcome(round, rng_stream, &outcome)?;
        if self.compact_every > 0 {
            self.outcomes_since_compact += 1;
            if self.outcomes_since_compact >= self.compact_every {
                self.compact()?;
            }
        }
        Ok(outcome)
    }

    /// Crash-scripting hook: journals the `RoundStart`, runs the round —
    /// **and never journals the outcome**, leaving the log torn exactly
    /// as a process death between the decision and the outcome append
    /// would. The instance must be discarded afterwards (its journal
    /// baseline is now stale); tests drop it to simulate the crash.
    pub fn run_round_torn(&mut self) -> std::io::Result<ServerRound> {
        self.journal_start()?;
        Ok(self.server.run_round())
    }

    /// Compacts now: atomically replaces the checkpoint with the
    /// current state and truncates the log. Tailing standbys observe
    /// the truncation and reload the checkpoint.
    pub fn compact(&mut self) -> std::io::Result<()> {
        write_checkpoint_atomic(&self.dir, &self.server.checkpoint())?;
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE))?;
        self.outcomes_since_compact = 0;
        Ok(())
    }
}

/// A warm replica tailing a primary's durability directory, holding a
/// fully materialised server (decoded history window included) so
/// takeover costs a route swap, not a restore.
#[derive(Debug)]
pub struct Standby {
    kit: RestoreKit,
    dir: PathBuf,
    server: Server,
    tailer: WalTailer,
    checkpoint_round: u64,
    replayed: usize,
    /// Highest `RoundStart` seen; above the last applied outcome it
    /// marks a torn round.
    last_start: u64,
}

impl Standby {
    /// Restores from the directory's checkpoint and starts tailing its
    /// log. The replica's server sits on a private network until
    /// [`Standby::promote`] hands it the real endpoint.
    pub fn attach(dir: &Path, kit: RestoreKit) -> Result<Self, WalError> {
        let (server, checkpoint_round) = load_checkpoint(dir, &kit)?;
        Ok(Self {
            kit,
            dir: dir.to_path_buf(),
            server,
            tailer: WalTailer::new(dir.join(WAL_FILE)),
            checkpoint_round,
            replayed: 0,
            last_start: 0,
        })
    }

    /// The warm replica's server state (read-only until promotion).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Rounds the replica has caught up to.
    pub fn round(&self) -> u64 {
        self.server.round()
    }

    /// A round the log shows started but never decided, if any.
    pub fn torn_round(&self) -> Option<u64> {
        (self.last_start > self.server.round()).then_some(self.last_start)
    }

    /// The current recovery bookkeeping.
    pub fn info(&self) -> RecoveryInfo {
        RecoveryInfo {
            checkpoint_round: self.checkpoint_round,
            replayed: self.replayed,
            torn_round: self.torn_round(),
        }
    }

    /// Polls the log file and applies everything new; on a compaction
    /// (the log shrank) reloads the checkpoint first. Returns how many
    /// records were applied.
    ///
    /// # Errors
    ///
    /// Log damage or inconsistency ([`WalError::Corrupt`]), checkpoint
    /// rejection ([`WalError::State`]), or I/O failure.
    pub fn catch_up(&mut self) -> Result<usize, WalError> {
        loop {
            let poll = self.tailer.poll()?;
            if poll.truncated {
                let (server, checkpoint_round) = load_checkpoint(&self.dir, &self.kit)?;
                self.server = server;
                self.checkpoint_round = checkpoint_round;
                self.replayed = 0;
                self.last_start = 0;
                continue;
            }
            for record in &poll.records {
                self.ingest_record(record)?;
            }
            return Ok(poll.records.len());
        }
    }

    /// Applies one log record to the replica, wherever it came from —
    /// the file tailer or a socket stream.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] when the record does not fit the replica's
    /// lineage: journaled under a different selection seed, a gapped
    /// round sequence, or an undecodable / wrong-architecture model.
    /// Outcomes at or below the replica's round are skipped silently —
    /// they are pre-checkpoint remnants (a crash between checkpoint
    /// rename and log truncation leaves them behind).
    pub fn ingest_record(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let round = record.round();
        let expect = derive_stream(self.kit.config.seed, round, NodeId::SERVER.0 as u64);
        if record.rng_stream() != expect {
            return Err(WalError::Corrupt(format!(
                "round {round} journaled under a different selection seed \
                 (stream {:#018x}, expected {:#018x})",
                record.rng_stream(),
                expect
            )));
        }
        match record {
            WalRecord::RoundStart { .. } => {
                self.last_start = self.last_start.max(round);
                Ok(())
            }
            WalRecord::RoundAccepted { model, sync_commits, sync_resets, .. } => {
                self.apply_outcome(round, Some(model), sync_commits, sync_resets)
            }
            WalRecord::RoundRejected { sync_commits, sync_resets, .. } => {
                self.apply_outcome(round, None, sync_commits, sync_resets)
            }
        }
    }

    /// Reads records off `reader` until EOF, applying each — the
    /// socket-transport tailing path: the primary (or a relay) streams
    /// its log bytes over a connection and the standby ingests them
    /// with the same validation as the file path. Returns how many
    /// records were applied.
    ///
    /// # Errors
    ///
    /// Same as [`Standby::ingest_record`], plus stream I/O failures.
    pub fn ingest_stream<R: Read>(&mut self, reader: R) -> Result<usize, WalError> {
        let mut reader = RecordReader::new(reader);
        let mut applied = 0;
        while let Some(record) = reader.read_record()? {
            self.ingest_record(&record)?;
            applied += 1;
        }
        Ok(applied)
    }

    fn apply_outcome(
        &mut self,
        round: u64,
        model: Option<&Bytes>,
        commits: &[(u64, ModelId)],
        resets: &[u64],
    ) -> Result<(), WalError> {
        if round <= self.server.round() {
            return Ok(());
        }
        if round != self.server.round() + 1 {
            return Err(WalError::Corrupt(format!(
                "gapped log: outcome for round {round} follows round {}",
                self.server.round()
            )));
        }
        let params = match model {
            Some(bytes) => Some(wire::decode_f32(bytes).map_err(|e| {
                WalError::Corrupt(format!("round {round} model payload: {e}"))
            })?),
            None => None,
        };
        if let Some(p) = &params {
            if p.len() != self.kit.template.num_params() {
                return Err(WalError::Corrupt(format!(
                    "round {round} model has {} params, architecture has {}",
                    p.len(),
                    self.kit.template.num_params()
                )));
            }
        }
        let commits: Vec<(usize, ModelId)> =
            commits.iter().map(|&(client, id)| (client as usize, id)).collect();
        let resets: Vec<usize> = resets.iter().map(|&client| client as usize).collect();
        self.server.apply_replayed_outcome(round, params.as_deref(), &commits, &resets);
        self.replayed += 1;
        Ok(())
    }

    /// Takes over: the replica's server adopts `endpoint` (the freshly
    /// re-registered `SERVER` route) and becomes the live server. The
    /// returned info says whether a torn round must be re-run — the
    /// server's round counter already sits just below it, so the next
    /// [`Server::run_round`] re-runs it automatically.
    pub fn promote(mut self, endpoint: Endpoint) -> (Server, RecoveryInfo) {
        let info = self.info();
        self.server.set_endpoint(endpoint);
        (self.server, info)
    }
}

/// One-shot crash recovery: load the directory's checkpoint, replay the
/// log tail, and hand the recovered server the given endpoint. The
/// returned [`RecoveryInfo`] reports a torn round, if the log shows
/// one; the recovered server re-runs it on its next
/// [`Server::run_round`].
///
/// # Errors
///
/// Checkpoint rejection, log damage, or I/O failure — see [`WalError`].
pub fn recover(
    dir: &Path,
    endpoint: Endpoint,
    kit: RestoreKit,
) -> Result<(Server, RecoveryInfo), WalError> {
    let mut standby = Standby::attach(dir, kit)?;
    standby.catch_up()?;
    Ok(standby.promote(endpoint))
}
