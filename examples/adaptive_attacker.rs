//! Pits the defense-aware adaptive attacker (§VI-C) against BaFFLe.
//!
//! The adaptive attacker runs a local copy of the deployed VALIDATE
//! function on its own data and dampens the poisoned update until its
//! local check passes. The paper's headline result: because honest
//! validators judge on data the attacker cannot see, the feedback loop
//! still catches (nearly all of) these self-accepted injections.
//!
//! ```sh
//! cargo run --release --example adaptive_attacker
//! ```

use baffle::core::{AttackKind, DefenseMode, Simulation, SimulationConfig};

fn run(attack: AttackKind, defense: DefenseMode, seed: u64) -> (usize, usize, Vec<usize>) {
    let mut config = SimulationConfig::cifar_like_small(seed);
    config.attack = attack;
    config.defense = defense;
    config.poison_rounds = vec![4, 7, 10];
    let mut sim = Simulation::new(config);
    let report = sim.run();
    let injections = report.counts().poisoned();
    let caught = injections - report.false_negatives();
    (caught, injections, report.poison_vote_counts())
}

fn main() {
    println!("scenario: 3 injections, miniature CIFAR-like problem\n");
    for (name, attack) in [
        ("non-adaptive (plain replacement)", AttackKind::Replacement),
        ("adaptive", AttackKind::Adaptive),
    ] {
        println!("== {name} ==");
        for (mode_name, mode) in [
            ("BAFFLE-S (server only)", DefenseMode::ServerOnly),
            ("BAFFLE   (clients + server)", DefenseMode::Both),
        ] {
            let mut caught_total = 0;
            let mut injected_total = 0;
            let mut votes = Vec::new();
            for seed in [11, 22, 33] {
                let (caught, injected, v) = run(attack, mode, seed);
                caught_total += caught;
                injected_total += injected;
                votes.extend(v);
            }
            println!(
                "  {mode_name:<28} caught {caught_total}/{injected_total} injections \
                 (reject votes per injection: {votes:?})"
            );
        }
        println!();
    }
    println!(
        "The adaptive attacker can fool its own validator, but not the\n\
         diverse data of the other clients — decentralised data is the defense."
    );
}
