//! Federated-learning substrate for the BaFFLe reproduction.
//!
//! Implements the standard FL loop of McMahan et al. exactly as the paper
//! describes it (§II-B): in round `r` the server selects `n ≪ N` clients,
//! ships them the current global model `G`, each client trains locally
//! for a few epochs and returns the update `U_i = L_i − G`, and the
//! server aggregates
//!
//! ```text
//! G' = G + (λ / N) · Σᵢ Uᵢ
//! ```
//!
//! where `λ` is the global learning rate (`λ = N/n` fully replaces `G`
//! with the average of the local models).
//!
//! The [`secagg`] module provides a pairwise-mask secure-aggregation
//! simulation in the style of Bonawitz et al.: per-pair PRG masks cancel
//! in the sum, so the server learns only the aggregate — which is all
//! BaFFLe ever needs, demonstrating the paper's compatibility claim.
//!
//! # Example
//!
//! ```
//! use baffle_fl::{fedavg, FlConfig};
//!
//! let config = FlConfig::new(100, 10); // N = 100 clients, n = 10 per round
//! let global = vec![0.0_f32; 4];
//! let updates = vec![vec![1.0; 4], vec![3.0; 4]];
//! // Default λ = N/n = 10, so G' = G + (10/100) · ΣᵢUᵢ = 0.1 · (1 + 3).
//! let new = fedavg(&global, &updates, config.global_lr(), config.num_clients());
//! assert_eq!(new, vec![0.4, 0.4, 0.4, 0.4]);
//! ```

mod aggregate;
mod config;
pub mod history_sync;
pub mod sampling;
pub mod secagg;
mod trainer;
mod wire_profile;

pub use aggregate::{fedavg, fedavg_serial};
pub use config::FlConfig;
pub use trainer::{train_clients_parallel, LocalTrainer};
pub use wire_profile::{HistoryCodec, WireProfile};
