//! Length-prefixed binary frames for every protocol message.
//!
//! The parameter codecs in [`baffle_nn::wire`] give model payloads a
//! byte representation; this module extends that to the whole protocol,
//! so an [`Envelope`] — routing header plus any [`Message`] variant —
//! has one canonical encoding that can cross a socket. The framing
//! mirrors the parameter codecs: a magic number, a format version, the
//! body length, and an FNV-1a checksum over the body.
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0xBAFF_F7A3 (LE)
//!      4     4  version    1
//!      8     4  body length in bytes
//!     12     4  FNV-1a checksum of the body
//!     16     —  body: from u32 | to u32 | kind u8 | variant fields
//! ```
//!
//! All integers are little-endian. Variable-length payloads
//! ([`bytes::Bytes`] and the history-entry list) carry a `u32` length
//! prefix. Decoding demands exact boundaries — trailing bytes inside
//! the body are [`DecodeErrorKind::Malformed`] — which is what lets
//! [`FrameReader`] cut frames from a TCP stream without a delimiter
//! scan. Model payloads inside the body are carried verbatim: their own
//! checksums still hold end to end, so payload corruption injected
//! before framing is detected by the receiving endpoint's parameter
//! decoder, exactly as on the in-process transport.
//!
//! [`DecodeErrorKind::Malformed`]: baffle_nn::wire::DecodeErrorKind::Malformed

use crate::message::{AbstainReason, HistoryEntry, Message, NodeId};
use crate::transport::Envelope;
use baffle_attack::voting::Vote;
use baffle_nn::wire::{fnv1a, DecodeError};
use bytes::{BufMut, Bytes, BytesMut};
use std::io::Read;

/// Frame magic; doubles as a stream-desync detector.
pub const FRAME_MAGIC: u32 = 0xBAFF_F7A3;
/// Current frame format version.
pub const FRAME_VERSION: u32 = 1;
/// Fixed frame header size: magic + version + body length + checksum.
pub const FRAME_HEADER: usize = 16;
/// Upper bound on a frame body — far above any real payload (the
/// largest is a full history window of resnet18-scale models), small
/// enough that a corrupted length field cannot drive an allocation.
pub const MAX_BODY: usize = 1 << 30;

const KIND_TRAIN: u8 = 0;
const KIND_UPDATE: u8 = 1;
const KIND_VALIDATE: u8 = 2;
const KIND_VOTE: u8 = 3;
const KIND_ABSTAIN: u8 = 4;
const KIND_RESULT: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;

fn put_payload(buf: &mut BytesMut, payload: &Bytes) {
    buf.put_u32_le(payload.len() as u32);
    buf.extend_from_slice(payload);
}

fn body_len(message: &Message) -> usize {
    let payload = |b: &Bytes| 4 + b.len();
    9 + match message {
        Message::TrainRequest { global, .. } => 8 + payload(global),
        Message::UpdateSubmission { update, .. } => 8 + 4 + payload(update),
        Message::ValidateRequest { candidate, history_delta, .. } => {
            8 + payload(candidate)
                + 4
                + history_delta.iter().map(|e| 8 + payload(&e.params)).sum::<usize>()
        }
        Message::VoteSubmission { .. } => 8 + 4 + 1,
        Message::Abstain { .. } => 8 + 4 + 1,
        Message::RoundResult { .. } => 8 + 1,
        Message::Shutdown => 0,
    }
}

/// Encodes an envelope as one self-delimiting frame.
pub fn encode_frame(envelope: &Envelope) -> Bytes {
    let body_len = body_len(&envelope.message);
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + body_len);
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u32_le(FRAME_VERSION);
    buf.put_u32_le(body_len as u32);
    buf.put_u32_le(0); // checksum placeholder
    buf.put_u32_le(envelope.from.0);
    buf.put_u32_le(envelope.to.0);
    match &envelope.message {
        Message::TrainRequest { round, global } => {
            buf.put_u8(KIND_TRAIN);
            buf.put_u64_le(*round);
            put_payload(&mut buf, global);
        }
        Message::UpdateSubmission { round, from, update } => {
            buf.put_u8(KIND_UPDATE);
            buf.put_u64_le(*round);
            buf.put_u32_le(from.0);
            put_payload(&mut buf, update);
        }
        Message::ValidateRequest { round, candidate, history_delta } => {
            buf.put_u8(KIND_VALIDATE);
            buf.put_u64_le(*round);
            put_payload(&mut buf, candidate);
            buf.put_u32_le(history_delta.len() as u32);
            for entry in history_delta {
                buf.put_u64_le(entry.id);
                put_payload(&mut buf, &entry.params);
            }
        }
        Message::VoteSubmission { round, from, vote } => {
            buf.put_u8(KIND_VOTE);
            buf.put_u64_le(*round);
            buf.put_u32_le(from.0);
            buf.put_u8(vote.as_bit());
        }
        Message::Abstain { round, from, reason } => {
            buf.put_u8(KIND_ABSTAIN);
            buf.put_u64_le(*round);
            buf.put_u32_le(from.0);
            buf.put_u8(reason_bit(*reason));
        }
        Message::RoundResult { round, accepted } => {
            buf.put_u8(KIND_RESULT);
            buf.put_u64_le(*round);
            buf.put_u8(u8::from(*accepted));
        }
        Message::Shutdown => buf.put_u8(KIND_SHUTDOWN),
    }
    debug_assert_eq!(buf.len(), FRAME_HEADER + body_len, "body_len() out of sync");
    let sum = fnv1a(&buf[FRAME_HEADER..]);
    buf[12..16].copy_from_slice(&sum.to_le_bytes());
    buf.freeze()
}

fn reason_bit(reason: AbstainReason) -> u8 {
    match reason {
        AbstainReason::UndecodableGlobal => 0,
        AbstainReason::EmptyShard => 1,
        AbstainReason::UndecodableCandidate => 2,
        AbstainReason::HistoryTooShort => 3,
        AbstainReason::NoValidationData => 4,
        AbstainReason::DegenerateAnalysis => 5,
    }
}

fn reason_from_bit(bit: u8) -> Option<AbstainReason> {
    Some(match bit {
        0 => AbstainReason::UndecodableGlobal,
        1 => AbstainReason::EmptyShard,
        2 => AbstainReason::UndecodableCandidate,
        3 => AbstainReason::HistoryTooShort,
        4 => AbstainReason::NoValidationData,
        5 => AbstainReason::DegenerateAnalysis,
        _ => return None,
    })
}

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::malformed("frame body truncated"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn payload(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }
}

/// Decodes one complete frame (header + body, exact length).
///
/// # Errors
///
/// Returns [`DecodeError`]: `Malformed` for structural damage (bad
/// magic or version, length mismatch, unknown kind or vote/reason
/// encoding, trailing bytes) and `Corrupted` when the body checksum
/// does not match.
pub fn decode_frame(bytes: &[u8]) -> Result<Envelope, DecodeError> {
    if bytes.len() < FRAME_HEADER {
        return Err(DecodeError::malformed("frame header truncated"));
    }
    let word =
        |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    if word(0) != FRAME_MAGIC {
        return Err(DecodeError::malformed("bad frame magic"));
    }
    if word(4) != FRAME_VERSION {
        return Err(DecodeError::malformed("unsupported frame version"));
    }
    let body_len = word(8) as usize;
    if body_len > MAX_BODY {
        return Err(DecodeError::malformed("frame body too large"));
    }
    if bytes.len() - FRAME_HEADER < body_len {
        return Err(DecodeError::malformed("frame body truncated"));
    }
    if bytes.len() - FRAME_HEADER > body_len {
        return Err(DecodeError::malformed("trailing bytes after frame"));
    }
    let body = &bytes[FRAME_HEADER..];
    if fnv1a(body) != word(12) {
        return Err(DecodeError::corrupted("frame checksum mismatch"));
    }
    decode_body(body)
}

fn decode_body(body: &[u8]) -> Result<Envelope, DecodeError> {
    let mut c = Cursor { buf: body };
    let from = NodeId(c.u32()?);
    let to = NodeId(c.u32()?);
    let kind = c.u8()?;
    let message = match kind {
        KIND_TRAIN => Message::TrainRequest { round: c.u64()?, global: c.payload()? },
        KIND_UPDATE => Message::UpdateSubmission {
            round: c.u64()?,
            from: NodeId(c.u32()?),
            update: c.payload()?,
        },
        KIND_VALIDATE => {
            let round = c.u64()?;
            let candidate = c.payload()?;
            let entries = c.u32()? as usize;
            let mut history_delta = Vec::new();
            for _ in 0..entries {
                let id = c.u64()?;
                let params = c.payload()?;
                history_delta.push(HistoryEntry { id, params });
            }
            Message::ValidateRequest { round, candidate, history_delta }
        }
        KIND_VOTE => Message::VoteSubmission {
            round: c.u64()?,
            from: NodeId(c.u32()?),
            vote: match c.u8()? {
                0 => Vote::Accept,
                1 => Vote::Reject,
                _ => return Err(DecodeError::malformed("unknown vote encoding")),
            },
        },
        KIND_ABSTAIN => Message::Abstain {
            round: c.u64()?,
            from: NodeId(c.u32()?),
            reason: reason_from_bit(c.u8()?)
                .ok_or_else(|| DecodeError::malformed("unknown abstain reason"))?,
        },
        KIND_RESULT => Message::RoundResult {
            round: c.u64()?,
            accepted: match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::malformed("unknown round-result encoding")),
            },
        },
        KIND_SHUTDOWN => Message::Shutdown,
        _ => return Err(DecodeError::malformed("unknown message kind")),
    };
    if !c.buf.is_empty() {
        return Err(DecodeError::malformed("trailing bytes inside frame body"));
    }
    Ok(Envelope { from, to, message })
}

/// Reads a fixed-size header from a stream. Returns `Ok(None)` on a
/// clean EOF (no bytes at all); EOF after a partial header surfaces as
/// [`std::io::ErrorKind::UnexpectedEof`]. Shared by [`FrameReader`] and
/// the WAL record reader (`net::wal`) — same framing discipline.
pub(crate) fn read_header<R: Read, const N: usize>(
    inner: &mut R,
) -> std::io::Result<Option<[u8; N]>> {
    let mut header = [0u8; N];
    let mut filled = 0;
    while filled < N {
        match inner.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a record header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(header))
}

/// Appends exactly `body_len` bytes from `inner` to `buf`, growing the
/// buffer as bytes actually arrive instead of trusting the (possibly
/// corrupted) length field with one big allocation up front. Shared by
/// [`FrameReader`] and the WAL record reader.
pub(crate) fn read_body_chunked<R: Read>(
    inner: &mut R,
    buf: &mut Vec<u8>,
    body_len: usize,
) -> std::io::Result<()> {
    const CHUNK: usize = 1 << 16;
    let mut remaining = body_len;
    while remaining > 0 {
        let step = remaining.min(CHUNK);
        let at = buf.len();
        buf.resize(at + step, 0);
        inner.read_exact(&mut buf[at..])?;
        remaining -= step;
    }
    Ok(())
}

/// Cuts frames off a byte stream (the socket transport's read side).
///
/// Frames are self-delimiting, so the reader needs no buffering beyond
/// one frame: it reads the fixed header, then exactly the announced
/// body.
pub struct FrameReader<R> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Reads the next frame. Returns `Ok(None)` on a clean end of
    /// stream (EOF exactly on a frame boundary).
    ///
    /// # Errors
    ///
    /// I/O errors pass through; EOF mid-frame surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`] and an undecodable frame
    /// as [`std::io::ErrorKind::InvalidData`].
    pub fn read_frame(&mut self) -> std::io::Result<Option<Envelope>> {
        let header = match read_header::<_, FRAME_HEADER>(&mut self.inner)? {
            Some(h) => h,
            None => return Ok(None),
        };
        let body_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
        if body_len > MAX_BODY {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame body length exceeds limit",
            ));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + body_len.min(1 << 16));
        frame.extend_from_slice(&header);
        read_body_chunked(&mut self.inner, &mut frame, body_len)?;
        decode_frame(&frame)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_nn::wire::DecodeErrorKind;

    fn sample_envelopes() -> Vec<Envelope> {
        let params = baffle_nn::wire::encode_f32(&[1.0, -2.5, 0.25]);
        vec![
            Envelope {
                from: NodeId::SERVER,
                to: NodeId(3),
                message: Message::TrainRequest { round: 7, global: params.clone() },
            },
            Envelope {
                from: NodeId(3),
                to: NodeId::SERVER,
                message: Message::UpdateSubmission {
                    round: 7,
                    from: NodeId(3),
                    update: params.clone(),
                },
            },
            Envelope {
                from: NodeId::SERVER,
                to: NodeId(1),
                message: Message::ValidateRequest {
                    round: 8,
                    candidate: params.clone(),
                    history_delta: vec![
                        HistoryEntry { id: 4, params: params.clone() },
                        HistoryEntry { id: 5, params: Bytes::new() },
                    ],
                },
            },
            Envelope {
                from: NodeId(1),
                to: NodeId::SERVER,
                message: Message::VoteSubmission { round: 8, from: NodeId(1), vote: Vote::Reject },
            },
            Envelope {
                from: NodeId(2),
                to: NodeId::SERVER,
                message: Message::Abstain {
                    round: 8,
                    from: NodeId(2),
                    reason: AbstainReason::HistoryTooShort,
                },
            },
            Envelope {
                from: NodeId::SERVER,
                to: NodeId(0),
                message: Message::RoundResult { round: 8, accepted: true },
            },
            Envelope { from: NodeId::SERVER, to: NodeId(0), message: Message::Shutdown },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for env in sample_envelopes() {
            let frame = encode_frame(&env);
            assert_eq!(decode_frame(&frame).unwrap(), env, "{}", env.message.kind());
        }
    }

    #[test]
    fn trailing_and_truncated_frames_are_malformed() {
        for env in sample_envelopes() {
            let frame = encode_frame(&env);
            let mut long = frame.to_vec();
            long.push(0);
            assert_eq!(decode_frame(&long).unwrap_err().kind(), DecodeErrorKind::Malformed);
            for cut in 0..frame.len() {
                assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn body_bit_flip_is_corruption_header_flip_is_not_silent() {
        let env = &sample_envelopes()[2]; // richest variant
        let frame = encode_frame(env);
        for at in FRAME_HEADER..frame.len() {
            let mut damaged = frame.to_vec();
            damaged[at] ^= 0x20;
            let err = decode_frame(&damaged).unwrap_err();
            assert_eq!(err.kind(), DecodeErrorKind::Corrupted, "flip at {at}: {err}");
        }
        // Magic / version / length flips are structural.
        for at in 0..12 {
            let mut damaged = frame.to_vec();
            damaged[at] ^= 0x20;
            assert!(decode_frame(&damaged).is_err(), "flip at {at}");
        }
        // Checksum-field flips read as corruption too.
        let mut damaged = frame.to_vec();
        damaged[13] ^= 0x20;
        assert!(decode_frame(&damaged).unwrap_err().is_corruption());
    }

    #[test]
    fn reader_cuts_frames_from_a_stream() {
        let envs = sample_envelopes();
        let mut stream = Vec::new();
        for env in &envs {
            stream.extend_from_slice(&encode_frame(env));
        }
        let mut reader = FrameReader::new(std::io::Cursor::new(stream));
        for env in &envs {
            assert_eq!(&reader.read_frame().unwrap().unwrap(), env);
        }
        assert!(reader.read_frame().unwrap().is_none(), "clean EOF at a frame boundary");
        assert!(reader.read_frame().unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn reader_reports_midframe_eof() {
        let frame = encode_frame(&sample_envelopes()[0]);
        for cut in [1, FRAME_HEADER - 1, FRAME_HEADER + 3] {
            let mut reader = FrameReader::new(std::io::Cursor::new(frame[..cut].to_vec()));
            let err = reader.read_frame().unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn reader_refuses_oversized_length_without_allocating() {
        let mut header = Vec::new();
        header.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        header.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(std::io::Cursor::new(header));
        let err = reader.read_frame().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn model_payload_checksums_survive_framing() {
        // Corrupt the *payload* before framing (what the fault injector
        // does): the frame itself stays valid, the payload decoder
        // reports the damage — same end-to-end behaviour as in-process.
        let mut payload = baffle_nn::wire::encode_f32(&[0.5; 32]).to_vec();
        payload[baffle_nn::wire::HEADER + 5] ^= 0x01;
        let env = Envelope {
            from: NodeId::SERVER,
            to: NodeId(0),
            message: Message::TrainRequest { round: 1, global: Bytes::from(payload) },
        };
        let back = decode_frame(&encode_frame(&env)).unwrap();
        match back.message {
            Message::TrainRequest { global, .. } => {
                assert!(baffle_nn::wire::decode_f32(&global).unwrap_err().is_corruption());
            }
            other => panic!("wrong variant: {}", other.kind()),
        }
    }
}
