//! Regenerates **Figure 4**: main-task and backdoor accuracy over the
//! early rounds of from-scratch training, with and without BaFFLe, under
//! early and repeated poisoning.
//!
//! The paper trains for 800 rounds, injects at rounds 100 and 300 (before
//! the defense starts), enables the defense at round 530 as the model
//! stabilises, and injects every 15 rounds until 680. This reproduction
//! scales the schedule by ×0.1: 80 rounds, early injections at 10 and 30,
//! defense from round 53, injections every 2 rounds from 53 to 68.
//!
//! Run with `cargo run --release -p baffle-core --bin fig4_early_poisoning`.

use baffle_core::exp::{ExpArgs, Table};
use baffle_core::{DatasetKind, DefenseMode, Simulation, SimulationConfig};

fn early_config(dataset: DatasetKind, seed: u64, defended: bool, fast: bool) -> SimulationConfig {
    let mut config = match dataset {
        DatasetKind::CifarLike => SimulationConfig::cifar_like(seed),
        DatasetKind::FemnistLike => SimulationConfig::femnist_like(seed),
    };
    // From scratch: no stabilisation, no clean warm-up rounds.
    config.warmup_central_epochs = 0;
    config.warmup_rounds = 0;
    config.rounds = if fast { 40 } else { 80 };
    config.defense = if defended { DefenseMode::Both } else { DefenseMode::Off };
    config.defense_start_round = if fast { 27 } else { 53 };
    config.poison_rounds = if fast {
        vec![5, 15, 27, 29, 31, 33]
    } else {
        vec![10, 30, 53, 55, 57, 59, 61, 63, 65, 67]
    };
    config.track_accuracy = true;
    config
}

fn main() {
    let args = ExpArgs::from_env();
    for dataset in [DatasetKind::CifarLike, DatasetKind::FemnistLike] {
        for defended in [false, true] {
            let label = if defended { "with BaFFLe (4b/4d)" } else { "no defense (4a/4c)" };
            let mut table = Table::new(
                &format!("Figure 4 ({dataset:?}), {label}: accuracy over early rounds"),
                &["round", "poisoned", "decision", "main acc", "backdoor acc"],
            );
            let config = early_config(dataset, args.seed, defended, args.fast);
            let mut sim = Simulation::new(config);
            let report = sim.run();
            let mut detected = 0;
            let mut injected_while_active = 0;
            for r in &report.records {
                table.row(vec![
                    r.round.to_string(),
                    if r.poisoned { "yes".into() } else { "".into() },
                    if r.defense_active {
                        format!("{:?}", r.decision)
                    } else {
                        "(undefended)".into()
                    },
                    format!("{:.3}", r.main_accuracy.unwrap_or(0.0)),
                    format!("{:.3}", r.backdoor_accuracy.unwrap_or(0.0)),
                ]);
                if r.poisoned && r.defense_active {
                    injected_while_active += 1;
                    if !r.decision.is_accepted() {
                        detected += 1;
                    }
                }
            }
            table.emit(&args);
            // Compact visual of the two curves (the paper's line plots).
            let mains: Vec<f64> =
                report.records.iter().map(|r| r.main_accuracy.unwrap_or(0.0) as f64).collect();
            let bds: Vec<f64> =
                report.records.iter().map(|r| r.backdoor_accuracy.unwrap_or(0.0) as f64).collect();
            let marks: Vec<usize> =
                report.records.iter().filter(|r| r.poisoned).map(|r| r.round).collect();
            println!("{}", baffle_core::exp::ascii_series("main accuracy", &mains, &marks));
            println!("{}", baffle_core::exp::ascii_series("backdoor accuracy", &bds, &marks));
            if defended {
                println!(
                    "injections while defense active: {injected_while_active}, detected: {detected}\n"
                );
            } else {
                println!();
            }
        }
    }
}
