//! Recovery tests: the machinery that turns a fault into a repaired
//! state instead of a silent corruption.
//!
//! - **Acknowledged history sync**: a `ValidateRequest` lost in flight
//!   must be re-shipped at the validator's next selection (the server
//!   only advances a sync point when it hears back), and a validator
//!   declaring `HistoryTooShort` gets its sync state reset so the whole
//!   window goes out again.
//! - **Server checkpoint/restore**: an interrupted-and-restored server
//!   replays the exact `ServerRound` sequence of an uninterrupted run
//!   (selection randomness is a pure function of `(seed, round)` via
//!   the splitmix64 stream derivation).
//! - **Evicted sync points**: a validator unsampled for longer than the
//!   retained window gets one full contiguous window re-ship — never a
//!   gapped delta that would cost it a `HistoryTooShort` round-trip.
//! - **Transport loss**: a dead receive channel is surfaced as
//!   `transport_lost`, not mistaken for harmless stragglers.

use baffle_core::{ValidationConfig, Validator, Vote};
use baffle_data::Dataset;
use baffle_fl::{sampling, FlConfig, WireProfile};
use baffle_net::deployment::{Deployment, DeploymentConfig, DeploymentParts};
use baffle_net::fault::{FaultEvent, FaultPlan};
use baffle_net::message::{AbstainReason, Message, NodeId};
use baffle_net::server::{Server, ServerConfig, ServerRound};
use baffle_net::transport::{Endpoint, Network};
use baffle_nn::{wire, Mlp, MlpSpec, Model};
use baffle_tensor::rng::derive_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const NUM_CLIENTS: usize = 3;

fn tiny_model(seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
}

/// A server sampling every client as contributor and validator each
/// round, so re-selection happens immediately.
fn make_server(network: &Network, timeout_ms: u64, initial: &Mlp) -> Server {
    let endpoint = network.register(NodeId::SERVER);
    let config = ServerConfig {
        fl: FlConfig::new(NUM_CLIENTS, NUM_CLIENTS),
        validators_per_round: NUM_CLIENTS,
        quorum: 2,
        phase_timeout: Duration::from_millis(timeout_ms),
        server_votes: false,
        seed: 7,
        bootstrap_rounds: 0,
        bootstrap_trusted: Vec::new(),
        wire: WireProfile::lossless(),
    };
    Server::new(
        endpoint,
        config,
        initial.clone(),
        5,
        Validator::new(ValidationConfig::new(3)),
        Dataset::empty(2, 2),
    )
}

/// Scripted client: zero update on every train request, records the
/// history-delta ids of every validate request into `deltas`, then asks
/// `on_validate` how to answer.
fn run_recording_client(
    endpoint: Endpoint,
    n_params: usize,
    deltas: &Mutex<Vec<(NodeId, u64, Vec<u64>)>>,
    on_validate: impl Fn(&Endpoint, u64),
) {
    while let Ok(env) = endpoint.recv() {
        match env.message {
            Message::TrainRequest { round, .. } => {
                endpoint.send(
                    NodeId::SERVER,
                    Message::UpdateSubmission {
                        round,
                        from: endpoint.id(),
                        update: wire::encode_f32(&vec![0.0f32; n_params]),
                    },
                );
            }
            Message::ValidateRequest { round, history_delta, .. } => {
                let ids: Vec<u64> = history_delta.iter().map(|e| e.id).collect();
                deltas.lock().unwrap().push((endpoint.id(), round, ids));
                on_validate(&endpoint, round);
            }
            Message::Shutdown => break,
            _ => {}
        }
    }
}

fn accept_vote(endpoint: &Endpoint, round: u64) {
    endpoint.send(
        NodeId::SERVER,
        Message::VoteSubmission { round, from: endpoint.id(), vote: Vote::Accept },
    );
}

/// The delta ids client `who` received in `round`, or `None` if the
/// request never arrived.
fn delta_of(log: &[(NodeId, u64, Vec<u64>)], who: u32, round: u64) -> Option<Vec<u64>> {
    log.iter().find(|(id, r, _)| *id == NodeId(who) && *r == round).map(|(_, _, d)| d.clone())
}

/// The ISSUE's latent-bug scenario: before the acknowledged-sync fix the
/// server advanced a validator's sync point *before* sending, so one
/// lost `ValidateRequest` left a permanent hole in that validator's
/// window. Now the shipment stays unacknowledged and the very next
/// selection re-ships the lost delta.
#[test]
fn unacked_validate_request_is_reshipped_at_the_next_selection() {
    // Surgical fault: lose exactly round 2's ValidateRequest to client 2.
    let plan = FaultPlan::lossless(0).event(FaultEvent::DropKind {
        to: Some(NodeId(2)),
        rounds: 2..=2,
        kind: "validate-request",
    });
    let network = Network::with_faults(plan);
    let initial = tiny_model(1);
    let mut server = make_server(&network, 400, &initial);
    let deltas = Mutex::new(Vec::new());

    let rounds = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let n_params = initial.num_params();
            let deltas = &deltas;
            scope.spawn(move |_| run_recording_client(endpoint, n_params, deltas, accept_vote));
        }
        let mut rounds = Vec::new();
        for r in 1..=3 {
            network.begin_round(r);
            rounds.push(server.run_round());
        }
        server.shutdown();
        rounds
    })
    .expect("client thread panicked");

    let log = deltas.into_inner().unwrap();
    // Round 1: first contact, everyone gets the full (one-entry) window.
    for c in 0..NUM_CLIENTS as u32 {
        assert_eq!(delta_of(&log, c, 1), Some(vec![0]), "client {c} round 1");
    }
    // Round 2: the shipment to client 2 is lost on the wire.
    assert_eq!(delta_of(&log, 0, 2), Some(vec![1]));
    assert_eq!(delta_of(&log, 1, 2), Some(vec![1]));
    assert_eq!(delta_of(&log, 2, 2), None, "the drop filter must eat the request");
    assert_eq!(rounds[1].votes_received, NUM_CLIENTS - 1, "client 2 cannot vote in round 2");
    // Round 3: the unacknowledged entry 1 rides along with entry 2 —
    // client 2's window is whole again and it casts a real vote.
    assert_eq!(delta_of(&log, 0, 3), Some(vec![2]));
    assert_eq!(delta_of(&log, 1, 3), Some(vec![2]));
    assert_eq!(delta_of(&log, 2, 3), Some(vec![1, 2]), "lost delta must be re-shipped");
    assert_eq!(rounds[2].votes_received, NUM_CLIENTS, "client 2 votes again in round 3");
    assert!(rounds.iter().all(|r| r.accepted));
}

/// A validator that declares `HistoryTooShort` (a restarted process, or
/// a corruption-gapped window it had to truncate) gets its sync state
/// reset: the next selection ships the **full** window, not a delta.
#[test]
fn history_too_short_abstention_forces_a_full_window_reship() {
    let network = Network::new();
    let initial = tiny_model(2);
    let mut server = make_server(&network, 2_000, &initial);
    let deltas = Mutex::new(Vec::new());

    let rounds = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let n_params = initial.num_params();
            let deltas = &deltas;
            scope.spawn(move |_| {
                run_recording_client(endpoint, n_params, deltas, |endpoint, round| {
                    if endpoint.id() == NodeId(2) && round == 2 {
                        // "I lost my cache": the fresh-restart signal.
                        endpoint.send(
                            NodeId::SERVER,
                            Message::Abstain {
                                round,
                                from: endpoint.id(),
                                reason: AbstainReason::HistoryTooShort,
                            },
                        );
                    } else {
                        accept_vote(endpoint, round);
                    }
                });
            });
        }
        let mut rounds = Vec::new();
        for r in 1..=3 {
            network.begin_round(r);
            rounds.push(server.run_round());
        }
        server.shutdown();
        rounds
    })
    .expect("client thread panicked");

    let log = deltas.into_inner().unwrap();
    assert_eq!(rounds[1].abstentions, 1);
    assert!(rounds[1].accepted, "an abstention is an implicit accept");
    // Round 3: the abstainer gets everything again; the others only the
    // newest entry.
    assert_eq!(delta_of(&log, 0, 3), Some(vec![2]));
    assert_eq!(delta_of(&log, 1, 3), Some(vec![2]));
    assert_eq!(
        delta_of(&log, 2, 3),
        Some(vec![0, 1, 2]),
        "a reset validator must receive the full window"
    );
    assert_eq!(rounds[2].votes_received, NUM_CLIENTS);
}

/// Replicates the server's per-round sampling so a test can search for
/// a seed producing a specific validator schedule without running the
/// protocol: the selection RNG is a pure function of
/// `(seed, round, server-id)`, and contributors are drawn from the same
/// stream before validators.
fn validators_for(seed: u64, round: u64, n_val: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(derive_stream(seed, round, NodeId::SERVER.0 as u64));
    let _contributors = sampling::select_clients(&mut rng, NUM_CLIENTS, NUM_CLIENTS);
    sampling::select_clients(&mut rng, NUM_CLIENTS, n_val)
}

/// A validator left unsampled for longer than the retained history
/// window has a committed sync point that predates everything the
/// server still holds. At re-selection the server must count the
/// eviction and ship the full contiguous window in one go — one
/// full-window re-ship, zero wasted `HistoryTooShort` round-trips.
#[test]
fn evicted_sync_point_gets_one_full_window_reship() {
    const WINDOW: usize = 2;
    const ROUNDS: u64 = 4;
    // Find a seed whose schedule makes some client a validator in
    // round 1, unsampled in every round in between, and re-selected in
    // round ROUNDS — by then the retained window has slid past its
    // committed sync point.
    let (seed, lagger) = (0u64..10_000)
        .find_map(|seed| {
            (0..NUM_CLIENTS).find_map(|c| {
                let sampled = |r| validators_for(seed, r, 2).contains(&c);
                (sampled(1) && (2..ROUNDS).all(|r| !sampled(r)) && sampled(ROUNDS))
                    .then_some((seed, c as u32))
            })
        })
        .expect("some seed under 10k must produce the lagging schedule");

    let network = Network::new();
    let initial = tiny_model(5);
    let config = ServerConfig {
        fl: FlConfig::new(NUM_CLIENTS, NUM_CLIENTS),
        validators_per_round: 2,
        quorum: 1,
        phase_timeout: Duration::from_millis(2_000),
        server_votes: false,
        seed,
        bootstrap_rounds: 0,
        bootstrap_trusted: Vec::new(),
        wire: WireProfile::lossless(),
    };
    let mut server = Server::new(
        network.register(NodeId::SERVER),
        config,
        initial.clone(),
        WINDOW,
        Validator::new(ValidationConfig::new(3)),
        Dataset::empty(2, 2),
    );
    let deltas = Mutex::new(Vec::new());

    let rounds = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let n_params = initial.num_params();
            let deltas = &deltas;
            scope.spawn(move |_| run_recording_client(endpoint, n_params, deltas, accept_vote));
        }
        let mut rounds = Vec::new();
        for r in 1..=ROUNDS {
            network.begin_round(r);
            rounds.push(server.run_round());
        }
        server.shutdown();
        rounds
    })
    .expect("client thread panicked");

    let log = deltas.into_inner().unwrap();
    // Round 1: first contact ships the (one-entry) window; the ack
    // commits the lagger's sync point at id 1.
    assert_eq!(delta_of(&log, lagger, 1), Some(vec![0]));
    // Unsampled in between: no validate requests reach it at all.
    for r in 2..ROUNDS {
        assert_eq!(delta_of(&log, lagger, r), None, "round {r} must not sample the lagger");
    }
    // Re-selection: the retained window is now (ROUNDS-2)..ROUNDS, past
    // the committed point — the full window arrives contiguous, in one
    // shipment.
    assert_eq!(
        delta_of(&log, lagger, ROUNDS),
        Some(vec![ROUNDS - 2, ROUNDS - 1]),
        "an evicted validator must receive the full retained window in one go"
    );
    // The eviction is detected exactly once, at re-selection time.
    let resyncs: Vec<usize> = rounds.iter().map(|r| r.evicted_resyncs).collect();
    let mut expected = vec![0; ROUNDS as usize];
    expected[ROUNDS as usize - 1] = 1;
    assert_eq!(resyncs, expected, "exactly one eviction repair, in the re-selection round");
    // Zero wasted round-trips: no HistoryTooShort abstentions anywhere,
    // and the repaired validator votes in the round it is re-selected.
    assert!(rounds.iter().all(|r| r.abstentions == 0), "no HistoryTooShort round-trips");
    assert!(rounds.iter().all(|r| r.votes_received == 2));
    assert!(rounds.iter().all(|r| r.accepted));
}

/// Zeroes the wall-clock fields so two runs can be compared bit-for-bit
/// on everything the protocol actually decided.
fn normalized(r: &ServerRound) -> ServerRound {
    ServerRound { update_phase: Duration::ZERO, vote_phase: Duration::ZERO, ..r.clone() }
}

/// Drives a built deployment by hand for its configured rounds. If
/// `interrupt_before` is set, the server is checkpointed, torn down and
/// restored from the blob right before that round — the clients keep
/// running across the swap, as they would across a real server restart.
fn drive(parts: DeploymentParts, interrupt_before: Option<u64>) -> Vec<ServerRound> {
    let total = parts.config.rounds;
    let clients: Vec<_> = (0..parts.specs.len()).map(|i| parts.client_actor(i)).collect();
    let mut server = parts.server;
    let mut rounds = Vec::new();
    crossbeam::thread::scope(|scope| {
        for (endpoint, mut client) in clients {
            scope.spawn(move |_| {
                client.run(&endpoint);
            });
        }
        for r in 1..=total {
            if interrupt_before == Some(r) {
                let blob = server.checkpoint();
                let endpoint = server.into_endpoint();
                server = Server::restore(
                    endpoint,
                    parts.server_config.clone(),
                    parts.template.as_ref().clone(),
                    parts.history_window,
                    parts.validator,
                    parts.server_data.clone(),
                    &blob,
                )
                .expect("checkpoint must restore");
            }
            rounds.push(server.run_round());
        }
        server.shutdown();
    })
    .expect("client actor panicked");
    rounds
}

/// The tentpole's acceptance criterion: a deployment interrupted by a
/// server checkpoint/restore produces **bit-identical** `ServerRound`s
/// to the uninterrupted run on the same seed (wall-clock aside).
#[test]
fn checkpoint_restore_replays_identical_rounds() {
    let config = DeploymentConfig::small(11);
    let uninterrupted = drive(Deployment::build(config.clone()), None);
    let interrupted = drive(Deployment::build(config), Some(4));

    assert_eq!(uninterrupted.len(), interrupted.len());
    let a: Vec<ServerRound> = uninterrupted.iter().map(normalized).collect();
    let b: Vec<ServerRound> = interrupted.iter().map(normalized).collect();
    assert_eq!(a, b, "a restored server must replay the uninterrupted run exactly");
    assert!(!interrupted.iter().any(|r| r.transport_lost));
}

#[test]
fn restore_rejects_damaged_checkpoints() {
    let network = Network::new();
    let initial = tiny_model(3);
    let server = make_server(&network, 500, &initial);
    let blob = server.checkpoint();
    let validator = Validator::new(ValidationConfig::new(3));
    let config = ServerConfig {
        fl: FlConfig::new(NUM_CLIENTS, NUM_CLIENTS),
        validators_per_round: NUM_CLIENTS,
        quorum: 2,
        phase_timeout: Duration::from_millis(500),
        server_votes: false,
        seed: 7,
        bootstrap_rounds: 0,
        bootstrap_trusted: Vec::new(),
        wire: WireProfile::lossless(),
    };
    let attempt = |id: u32, blob: &[u8]| {
        Server::restore(
            network.register(NodeId(id)),
            config.clone(),
            initial.clone(),
            5,
            validator,
            Dataset::empty(2, 2),
            blob,
        )
    };

    // The pristine blob restores.
    assert!(attempt(90, &blob).is_ok());
    // Truncation, a damaged magic number and trailing garbage do not.
    assert!(attempt(91, &blob[..blob.len() / 2]).is_err());
    let mut bad_magic = blob.to_vec();
    bad_magic[0] ^= 0xFF;
    assert!(attempt(92, &bad_magic).is_err());
    let mut trailing = blob.to_vec();
    trailing.push(0);
    assert!(attempt(93, &trailing).is_err());
}

/// A dead transport must be reported as such — not spend the phase
/// timeout and then masquerade as a round full of silent stragglers.
#[test]
fn transport_loss_is_surfaced_not_misread_as_stragglers() {
    let network = Network::new();
    let initial = tiny_model(4);
    // Deliberately huge timeout: only the Disconnected path can explain
    // a fast exit.
    let mut server = make_server(&network, 10_000, &initial);

    let (round, elapsed) = crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            std::thread::sleep(Duration::from_millis(150));
            assert!(network.disconnect(NodeId::SERVER), "server must be registered");
        });
        let start = Instant::now();
        let round = server.run_round();
        (round, start.elapsed())
    })
    .expect("thread panicked");

    assert!(round.transport_lost, "a disconnected channel must be surfaced");
    assert!(!round.accepted);
    assert_eq!(round.updates_received, 0);
    assert!(elapsed < Duration::from_secs(5), "disconnection must not burn the timeout");
}
