//! Client actors: honest participants and the attacker.
//!
//! A [`Client`] is a *state machine*: [`Client::handle`] consumes one
//! [`Envelope`] and sends any replies through its [`Outbox`], never
//! blocking on a receiver. The scheduler (see [`crate::scheduler`])
//! multiplexes thousands of these machines over one shared inbox; the
//! retained thread-per-client path simply wraps [`Client::handle`] in a
//! blocking [`Client::run`] loop over a dedicated [`Endpoint`].

use crate::message::{AbstainReason, HistoryEntry, Message, NodeId};
use crate::transport::{Endpoint, Envelope, Outbox};
use baffle_attack::voting::VoterBehavior;
use baffle_attack::ModelReplacement;
use baffle_core::{ValidateError, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_fl::{LocalTrainer, WireProfile};
use baffle_nn::{wire, Mlp, Model};
use baffle_tensor::rng::derive_stream;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::ControlFlow;
use std::sync::Arc;

/// A client's role in the protocol.
#[derive(Debug, Clone)]
pub enum ClientRole {
    /// Trains honestly and votes per the validation function.
    Honest,
    /// Submits model-replacement updates and votes per the configured
    /// behaviour.
    Malicious {
        /// The attack used to craft poisoned updates.
        attack: ModelReplacement,
        /// The attacker's backdoor training set (shared, read-only).
        backdoor_data: Arc<Dataset>,
        /// How the client votes when selected as a validator.
        voting: VoterBehavior,
    },
}

/// What a client actor observed over its lifetime, returned by
/// [`Client::run`] / [`Client::report`] when the actor exits (shutdown
/// or transport loss). Chaos tests use it to check client-side
/// invariants the server cannot see — above all that the cached history
/// window never ends up gapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// The client's node id.
    pub id: NodeId,
    /// Rounds this client was asked to train or validate in.
    pub rounds_participated: u64,
    /// Votes cast (either role).
    pub votes_cast: u64,
    /// Explicit abstentions sent (both phases).
    pub abstentions: u64,
    /// Times a corruption- or loss-induced gap in the cached history was
    /// repaired by discarding the models before the gap.
    pub gap_repairs: u64,
    /// Whether the cached history ids formed a contiguous run at exit
    /// (always true if the gap-repair invariant held).
    pub window_contiguous: bool,
}

/// One federated client actor: local data, a cached slice of the
/// accepted-model history (filled incrementally by the server), the
/// validation function, and a role.
///
/// Datasets and the architecture template are `Arc`-shared: at 10k+
/// registered clients, deep-cloning per client would dominate peak RSS.
#[derive(Debug)]
pub struct Client {
    outbox: Outbox,
    data: Arc<Dataset>,
    trainer: LocalTrainer,
    engine: ValidationEngine,
    role: ClientRole,
    /// Cached history ids, oldest first — parallel to `history_models`.
    /// The ids double as the validation engine's cache keys, so a model
    /// shipped once is never re-evaluated on this client's data.
    /// Invariant: always a contiguous ascending run (see `repair_window`).
    history_ids: Vec<ModelId>,
    /// Cached history models, oldest first.
    history_models: Vec<Mlp>,
    history_window: usize,
    template: Arc<Mlp>,
    /// Wire codecs for outgoing payloads (must match the server's
    /// profile for bandwidth accounting; decoding is self-describing).
    wire: WireProfile,
    rng: StdRng,
    rounds_participated: u64,
    votes_cast: u64,
    abstentions: u64,
    gap_repairs: u64,
}

impl Client {
    /// Creates a client actor sending as `outbox`'s node id. `template`
    /// is any model with the right architecture (used to decode incoming
    /// parameter vectors).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        outbox: Outbox,
        data: Arc<Dataset>,
        trainer: LocalTrainer,
        validator: Validator,
        role: ClientRole,
        history_window: usize,
        template: Arc<Mlp>,
        wire: WireProfile,
        seed: u64,
    ) -> Self {
        Self {
            outbox,
            data,
            trainer,
            engine: ValidationEngine::new(validator),
            role,
            history_ids: Vec::new(),
            history_models: Vec::new(),
            history_window,
            template,
            wire,
            rng: StdRng::seed_from_u64(seed),
            rounds_participated: 0,
            votes_cast: 0,
            abstentions: 0,
            gap_repairs: 0,
        }
    }

    /// This client's node id.
    pub fn id(&self) -> NodeId {
        self.outbox.id()
    }

    /// Number of rounds this client was asked to train or validate in.
    pub fn rounds_participated(&self) -> u64 {
        self.rounds_participated
    }

    /// Processes one inbound envelope, sending any reply through the
    /// outbox. Returns [`ControlFlow::Break`] when the actor should stop
    /// (a [`Message::Shutdown`] arrived). Never blocks — this is the
    /// step function the event-driven scheduler dispatches as pool
    /// tasks.
    pub fn handle(&mut self, env: Envelope) -> ControlFlow<()> {
        match env.message {
            Message::TrainRequest { round, global } => {
                self.rounds_participated += 1;
                self.handle_train(round, &global);
            }
            Message::ValidateRequest { round, candidate, history_delta } => {
                self.rounds_participated += 1;
                self.merge_history_delta(history_delta);
                self.handle_validate(round, &candidate);
            }
            Message::RoundResult { .. } => {
                // Nothing to do: history updates arrive with the next
                // ValidateRequest delta.
            }
            Message::UpdateSubmission { .. }
            | Message::VoteSubmission { .. }
            | Message::Abstain { .. } => {
                // Client-to-server messages; ignore if misrouted.
            }
            Message::Shutdown => return ControlFlow::Break(()),
        }
        ControlFlow::Continue(())
    }

    /// What this actor has observed so far — the exit report once
    /// [`Client::handle`] broke (or the endpoint disconnected).
    pub fn report(&self) -> ClientReport {
        let window_contiguous = self.history_ids.windows(2).all(|w| w[0] + 1 == w[1]);
        ClientReport {
            id: self.outbox.id(),
            rounds_participated: self.rounds_participated,
            votes_cast: self.votes_cast,
            abstentions: self.abstentions,
            gap_repairs: self.gap_repairs,
            window_contiguous,
        }
    }

    /// Runs the blocking actor loop over a dedicated endpoint until a
    /// [`Message::Shutdown`] arrives or the network disconnects (a
    /// crash-stop), and reports what the actor observed. This is the
    /// thread-per-client path; `endpoint` must be the registration for
    /// this client's id.
    pub fn run(&mut self, endpoint: &Endpoint) -> ClientReport {
        debug_assert_eq!(endpoint.id(), self.outbox.id());
        while let Ok(env) = endpoint.recv() {
            if self.handle(env).is_break() {
                break;
            }
        }
        self.report()
    }

    /// Merges a shipped history delta into the cached window, then
    /// repairs any damage: the cache keeps at most `history_window`
    /// models and, crucially, only the **maximal contiguous suffix** of
    /// ids. A gap appears when an entry is skipped (its payload arrived
    /// corrupted) while a newer one lands; validating against a gapped
    /// window would silently change Algorithm 2's variation vectors, so
    /// everything before the gap is discarded instead. If the surviving
    /// window is then too short, the next validation abstains with
    /// [`AbstainReason::HistoryTooShort`] — which makes the server reset
    /// this client's sync state and re-ship the full window.
    ///
    /// Dense entries are self-describing (`f32`/`q8`/`q4`). A top-k
    /// entry is a sparse delta against model `id − 1`, which must be in
    /// the cache (or earlier in this shipment). A delta that cannot be
    /// applied — predecessor missing, payload damaged — breaks the whole
    /// chain, and a broken chain cannot self-heal the way dense shipping
    /// does: every later delta would keep missing its base while the
    /// server keeps advancing the sync point. The cached window is
    /// discarded wholesale instead, forcing the `HistoryTooShort` →
    /// sync-reset → dense-re-ship path.
    fn merge_history_delta(&mut self, history_delta: Vec<HistoryEntry>) {
        let mut chain_broken = false;
        for entry in history_delta {
            // Ids arrive mostly in order; insert sorted and skip
            // duplicates (a re-shipped delta after loss).
            let Err(pos) = self.history_ids.binary_search(&entry.id) else {
                continue;
            };
            let decoded = if wire::is_topk(&entry.params) {
                let base = entry.id.checked_sub(1).and_then(|prev| {
                    self.history_ids
                        .binary_search(&prev)
                        .ok()
                        .map(|at| self.history_models[at].params())
                });
                let applied = base.and_then(|base| {
                    wire::decode_topk(&entry.params).and_then(|d| d.apply(&base)).ok()
                });
                if applied.is_none() {
                    chain_broken = true;
                }
                applied
            } else {
                wire::decode_any(&entry.params).ok()
            };
            if let Some(params) = decoded {
                let mut m = self.template.as_ref().clone();
                m.set_params(&params);
                self.history_ids.insert(pos, entry.id);
                self.history_models.insert(pos, m);
            }
        }
        if chain_broken && !self.history_ids.is_empty() {
            self.gap_repairs += 1;
            for id in self.history_ids.drain(..) {
                self.engine.invalidate(id);
            }
            self.history_models.clear();
            return;
        }
        let excess = self.history_ids.len().saturating_sub(self.history_window);
        if excess > 0 {
            for id in self.history_ids.drain(..excess) {
                self.engine.invalidate(id);
            }
            self.history_models.drain(..excess);
        }
        // Find the start of the maximal contiguous id suffix.
        let mut start = self.history_ids.len().saturating_sub(1);
        while start > 0 && self.history_ids[start - 1] + 1 == self.history_ids[start] {
            start -= 1;
        }
        if start > 0 {
            self.gap_repairs += 1;
            for id in self.history_ids.drain(..start) {
                self.engine.invalidate(id);
            }
            self.history_models.drain(..start);
        }
        debug_assert!(
            self.history_ids.windows(2).all(|w| w[0] + 1 == w[1]),
            "cached history window must stay contiguous"
        );
    }

    /// Declares that this client cannot act on the current request, so
    /// the server's phase ledger stops waiting for it instead of burning
    /// the phase timeout. In the vote phase this is the paper's
    /// footnote-1 implicit accept made explicit.
    fn abstain(&mut self, round: u64, reason: AbstainReason) {
        self.abstentions += 1;
        self.outbox
            .send(NodeId::SERVER, Message::Abstain { round, from: self.outbox.id(), reason });
    }

    fn handle_train(&mut self, round: u64, global_bytes: &Bytes) {
        let Ok(params) = wire::decode_any(global_bytes) else {
            return self.abstain(round, AbstainReason::UndecodableGlobal);
        };
        if self.data.is_empty() {
            // No local data: a zero update would only dilute the
            // aggregate; declare the inability instead.
            return self.abstain(round, AbstainReason::EmptyShard);
        }
        let mut global = self.template.as_ref().clone();
        global.set_params(&params);
        let update = match &self.role {
            ClientRole::Honest => self.trainer.train_update(&global, &self.data, &mut self.rng),
            ClientRole::Malicious { attack, backdoor_data, .. } => {
                // Mixed per (base, round, node): a plain `0xBAD ^ round`
                // would hand every attacker the identical stream, making
                // multi-attacker runs submit duplicate poisoned updates.
                let mut atk_rng =
                    StdRng::seed_from_u64(derive_stream(0xBAD, round, self.outbox.id().0 as u64));
                attack.poisoned_update(&global, &self.data, backdoor_data, &mut atk_rng)
            }
        };
        self.outbox.send(
            NodeId::SERVER,
            Message::UpdateSubmission {
                round,
                from: self.outbox.id(),
                // `encode` falls back to lossless `f32` for non-finite
                // updates (a poisoned payload must survive transit
                // bit-exactly, not be masked by quantisation).
                update: self.wire.update.encode(&update),
            },
        );
    }

    fn handle_validate(&mut self, round: u64, candidate_bytes: &Bytes) {
        let Ok(params) = wire::decode_any(candidate_bytes) else {
            return self.abstain(round, AbstainReason::UndecodableCandidate);
        };
        let mut candidate = self.template.as_ref().clone();
        candidate.set_params(&params);
        let outcome = self.engine.validate_batched(
            &candidate,
            &self.history_ids,
            &self.history_models,
            &self.data,
        );
        let honest_vote = match outcome {
            Ok(verdict) => verdict.vote(),
            // Cannot judge: abstain explicitly (footnote 1) — regardless
            // of role, since there is no verdict to lie about.
            Err(e) => {
                let reason = match e {
                    ValidateError::NotEnoughHistory { .. } => AbstainReason::HistoryTooShort,
                    ValidateError::EmptyDataset => AbstainReason::NoValidationData,
                    ValidateError::Lof(_) => AbstainReason::DegenerateAnalysis,
                };
                return self.abstain(round, reason);
            }
        };
        let vote = match &self.role {
            ClientRole::Honest => honest_vote,
            ClientRole::Malicious { voting, .. } => voting.cast(honest_vote),
        };
        self.votes_cast += 1;
        self.outbox
            .send(NodeId::SERVER, Message::VoteSubmission { round, from: self.outbox.id(), vote });
    }
}
