//! Labelled datasets with semantic-subgroup tags.

use baffle_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled classification dataset.
///
/// Every sample carries, besides its feature row and label, a **subgroup
/// tag** identifying which semantic subpopulation of its class it was
/// drawn from. Subgroups are the synthetic analogue of semantic features
/// such as "cars with a striped background" — the unit that semantic
/// backdoor attacks target (see [`crate::SyntheticVision`]).
///
/// # Example
///
/// ```
/// use baffle_data::Dataset;
/// use baffle_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
/// let d = Dataset::new(x, vec![0, 1, 0], 2);
/// assert_eq!(d.len(), 3);
/// assert_eq!(d.class_counts(), vec![2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Matrix,
    y: Vec<usize>,
    subgroup: Vec<u16>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset with all subgroup tags set to 0.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`, `num_classes == 0`, or a label is
    /// out of range.
    pub fn new(x: Matrix, y: Vec<usize>, num_classes: usize) -> Self {
        let n = y.len();
        Self::with_subgroups(x, y, vec![0; n], num_classes)
    }

    /// Creates a dataset with explicit subgroup tags.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent or a label is out of range.
    pub fn with_subgroups(
        x: Matrix,
        y: Vec<usize>,
        subgroup: Vec<u16>,
        num_classes: usize,
    ) -> Self {
        assert!(num_classes > 0, "Dataset: need at least one class");
        assert_eq!(x.rows(), y.len(), "Dataset: {} rows vs {} labels", x.rows(), y.len());
        assert_eq!(
            y.len(),
            subgroup.len(),
            "Dataset: {} labels vs {} subgroup tags",
            y.len(),
            subgroup.len()
        );
        assert!(
            y.iter().all(|&l| l < num_classes),
            "Dataset: a label is out of range for {num_classes} classes"
        );
        Self { x, y, subgroup, num_classes }
    }

    /// An empty dataset with the given feature dimension and class count.
    pub fn empty(input_dim: usize, num_classes: usize) -> Self {
        Self::new(Matrix::zeros(0, input_dim), Vec::new(), num_classes)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature matrix (`len × input_dim`).
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// Labels, one per row of [`Dataset::features`].
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Subgroup tags, one per sample.
    pub fn subgroups(&self) -> &[u16] {
        &self.subgroup
    }

    /// Number of classes in the label space (not necessarily all present).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.num_classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }

    /// The class with the most samples (ties resolve to the lowest index).
    /// Returns `None` for an empty dataset.
    pub fn majority_class(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let counts = self.class_counts();
        counts.iter().enumerate().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))).map(|(c, _)| c)
    }

    /// Copies the samples at `indices` (in order, duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            subgroup: indices.iter().map(|&i| self.subgroup[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Splits off `n` uniformly random samples (without replacement),
    /// returning `(taken, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_random<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split_random: cannot take {n} of {}", self.len());
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let (taken, rest) = order.split_at(n);
        (self.subset(taken), self.subset(rest))
    }

    /// Concatenates two datasets over the same feature/label space.
    ///
    /// # Panics
    ///
    /// Panics if dimensions or class counts differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.num_classes, other.num_classes, "concat: class count mismatch");
        assert_eq!(self.input_dim(), other.input_dim(), "concat: input dim mismatch");
        let mut data = Vec::with_capacity((self.len() + other.len()) * self.input_dim());
        data.extend_from_slice(self.x.as_slice());
        data.extend_from_slice(other.x.as_slice());
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        let mut sg = self.subgroup.clone();
        sg.extend_from_slice(&other.subgroup);
        Dataset {
            x: Matrix::from_vec(self.len() + other.len(), self.input_dim(), data),
            y,
            subgroup: sg,
            num_classes: self.num_classes,
        }
    }

    /// Indices of all samples with the given class.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.y[i] == class).collect()
    }

    /// Indices of all samples with the given `(class, subgroup)` pair —
    /// i.e. the backdoor subpopulation.
    pub fn indices_of_subgroup(&self, class: usize, subgroup: u16) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.y[i] == class && self.subgroup[i] == subgroup).collect()
    }

    /// Returns a copy where every sample selected by `select` is relabelled
    /// to `target` — the data-poisoning primitive.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.num_classes()`.
    pub fn relabel(
        &self,
        target: usize,
        mut select: impl FnMut(usize, usize, u16) -> bool,
    ) -> Dataset {
        assert!(target < self.num_classes, "relabel: target {target} out of range");
        let mut out = self.clone();
        for i in 0..out.y.len() {
            if select(i, out.y[i], out.subgroup[i]) {
                out.y[i] = target;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
        Dataset::with_subgroups(x, vec![0, 1, 0, 1, 2], vec![0, 0, 1, 1, 0], 3)
    }

    #[test]
    fn class_counts_and_majority() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![2, 2, 1]);
        assert_eq!(d.majority_class(), Some(0));
        assert_eq!(Dataset::empty(1, 3).majority_class(), None);
    }

    #[test]
    fn subset_preserves_rows_and_tags() {
        let d = toy();
        let s = d.subset(&[4, 0]);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.subgroups(), &[0, 0]);
        assert_eq!(s.features().row(0), &[4.0]);
    }

    #[test]
    fn split_random_partitions_without_loss() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = d.split_random(&mut rng, 2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        // Together they hold every original feature value exactly once.
        let mut vals: Vec<f32> =
            a.features().as_slice().iter().chain(b.features().as_slice()).cloned().collect();
        vals.sort_by(f32::total_cmp);
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d);
        assert_eq!(c.len(), 10);
        assert_eq!(c.class_counts(), vec![4, 4, 2]);
    }

    #[test]
    fn indices_of_subgroup_filters_both_keys() {
        let d = toy();
        assert_eq!(d.indices_of_subgroup(0, 1), vec![2]);
        assert_eq!(d.indices_of_subgroup(0, 0), vec![0]);
        assert_eq!(d.indices_of_subgroup(1, 0), vec![1]);
        assert!(d.indices_of_subgroup(2, 5).is_empty());
    }

    #[test]
    fn relabel_flips_selected_samples_only() {
        let d = toy();
        // Flip all of class 0 to class 2 (label-flip backdoor).
        let p = d.relabel(2, |_, y, _| y == 0);
        assert_eq!(p.labels(), &[2, 1, 2, 1, 2]);
        // Original untouched.
        assert_eq!(d.labels(), &[0, 1, 0, 1, 2]);
    }

    #[test]
    fn relabel_by_subgroup_is_the_semantic_backdoor() {
        let d = toy();
        let p = d.relabel(1, |_, y, sg| y == 0 && sg == 1);
        assert_eq!(p.labels(), &[0, 1, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let x = Matrix::zeros(1, 1);
        let _ = Dataset::new(x, vec![3], 3);
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn split_more_than_len_panics() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = d.split_random(&mut rng, 6);
    }
}
