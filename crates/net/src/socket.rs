//! Loopback socket plumbing for the wire transport.
//!
//! In socket mode every registered endpoint gets a real OS-level
//! connection — TCP on `127.0.0.1` or a Unix domain socket — and the
//! network's delivery step writes [`crate::frame`]-encoded bytes into
//! it; a reader thread on the endpoint side cuts frames back off the
//! stream. The fault pipeline, routing table and ledger counters stay
//! in the shared [`crate::transport::Network`] (they are the simulated
//! *link*, not the wire), so the socket hop is exactly the
//! serialise/deserialise boundary: every payload a node receives has
//! round-tripped through the full frame codec over a kernel socket.
//!
//! The [`Hub`] owns one listener; connections are created pairwise
//! (connect + accept under the network's registration lock, so pairs
//! can never interleave). [`Conn`] is the write half the network keeps
//! per route, with a lock-free shutdown handle so a close can unblock a
//! writer mid-frame.

use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which socket family the wire transport uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// TCP over `127.0.0.1` (portable, exercises the real TCP stack).
    Tcp,
    /// Unix domain sockets (lower overhead; falls back to TCP on
    /// platforms without them).
    Unix,
}

/// How envelopes travel from the network's delivery step to endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Crossbeam channels, no serialisation — the historical default.
    InProcess,
    /// Frame-encoded bytes over loopback sockets.
    Socket(SocketKind),
}

impl TransportMode {
    /// Reads `BAFFLE_TRANSPORT`: unset, empty, or `channel` selects
    /// [`TransportMode::InProcess`]; `tcp` and `unix` select the
    /// corresponding socket transport. This is how CI runs the whole
    /// `baffle-net` suite over loopback sockets without touching any
    /// test code.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a typo silently falling back
    /// to channels would void a wire-level test run.
    pub fn from_env() -> Self {
        match std::env::var("BAFFLE_TRANSPORT").as_deref() {
            Err(_) | Ok("") | Ok("channel") => TransportMode::InProcess,
            Ok("tcp") => TransportMode::Socket(SocketKind::Tcp),
            Ok("unix") => TransportMode::Socket(SocketKind::Unix),
            Ok(other) => {
                panic!("BAFFLE_TRANSPORT: unknown transport {other:?} (want channel|tcp|unix)")
            }
        }
    }

    /// Short name for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            TransportMode::InProcess => "channel",
            TransportMode::Socket(SocketKind::Tcp) => "tcp",
            TransportMode::Socket(SocketKind::Unix) => "unix",
        }
    }
}

/// One direction-agnostic byte stream of either family.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Shuts down both directions, unblocking any reader or writer.
    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener, SocketAddr),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Distinguishes concurrently-bound hubs within one process (the Unix
/// socket path must be unique per hub).
static HUB_SEQ: AtomicU64 = AtomicU64::new(0);

/// The network's socket factory: one loopback listener whose
/// connections are handed out pairwise at registration time.
pub(crate) struct Hub {
    listener: Listener,
}

impl Hub {
    pub(crate) fn bind(kind: SocketKind) -> io::Result<Hub> {
        let listener = match kind {
            SocketKind::Tcp => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = listener.local_addr()?;
                Listener::Tcp(listener, addr)
            }
            #[cfg(unix)]
            SocketKind::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "baffle-hub-{}-{}.sock",
                    std::process::id(),
                    HUB_SEQ.fetch_add(1, Ordering::Relaxed),
                ));
                let _ = std::fs::remove_file(&path);
                Listener::Unix(UnixListener::bind(&path)?, path)
            }
            #[cfg(not(unix))]
            SocketKind::Unix => {
                // No Unix domain sockets on this platform: loopback TCP
                // gives the same framing guarantees.
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = listener.local_addr()?;
                Listener::Tcp(listener, addr)
            }
        };
        Ok(Hub { listener })
    }

    /// Creates one connection pair: `(endpoint side, network side)`.
    /// Callers serialise pair creation (the registration lock), so the
    /// accepted connection is always the one just initiated.
    pub(crate) fn connect_pair(&self) -> io::Result<(Stream, Stream)> {
        match &self.listener {
            Listener::Tcp(listener, addr) => {
                let peer = TcpStream::connect(addr)?;
                let (hub_side, _) = listener.accept()?;
                peer.set_nodelay(true)?;
                hub_side.set_nodelay(true)?;
                Ok((Stream::Tcp(peer), Stream::Tcp(hub_side)))
            }
            #[cfg(unix)]
            Listener::Unix(listener, path) => {
                let peer = UnixStream::connect(path)?;
                let (hub_side, _) = listener.accept()?;
                Ok((Stream::Unix(peer), Stream::Unix(hub_side)))
            }
        }
    }
}

/// The write half of one route's connection. `write_frame` serialises
/// concurrent senders; `close` bypasses the writer lock via a cloned
/// handle so it also unblocks a writer stuck on a full socket buffer.
#[derive(Debug)]
pub(crate) struct Conn {
    writer: Mutex<Stream>,
    ctrl: Stream,
    pinned: bool,
}

impl Conn {
    /// Wraps the network-side stream of a pair. `pinned` connections
    /// (a mux's shared socket) survive individual detaches and close
    /// only when the network or mux goes away.
    pub(crate) fn new(stream: Stream, pinned: bool) -> io::Result<Conn> {
        let ctrl = stream.try_clone()?;
        Ok(Conn { writer: Mutex::new(stream), ctrl, pinned })
    }

    pub(crate) fn pinned(&self) -> bool {
        self.pinned
    }

    /// Writes one complete frame. Errors mean the endpoint side is
    /// gone — the caller treats that like a send into a dropped
    /// channel.
    pub(crate) fn write_frame(&self, frame: &[u8]) -> io::Result<()> {
        self.writer.lock().write_all(frame)
    }

    /// Shuts the connection down in both directions: the endpoint-side
    /// reader sees EOF (its channel closes, `recv` errors — crash-stop
    /// semantics) and any in-flight write fails.
    pub(crate) fn close(&self) {
        self.ctrl.shutdown();
    }
}
