//! Client actors: honest participants and the attacker.

use crate::message::{Message, NodeId};
use crate::transport::Endpoint;
use baffle_attack::voting::{Vote, VoterBehavior};
use baffle_attack::ModelReplacement;
use baffle_core::Validator;
use baffle_data::Dataset;
use baffle_fl::history_sync::ModelId;
use baffle_fl::LocalTrainer;
use baffle_nn::{wire, Mlp, Model};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A client's role in the protocol.
#[derive(Debug, Clone)]
pub enum ClientRole {
    /// Trains honestly and votes per the validation function.
    Honest,
    /// Submits model-replacement updates and votes per the configured
    /// behaviour.
    Malicious {
        /// The attack used to craft poisoned updates.
        attack: ModelReplacement,
        /// The attacker's backdoor training set.
        backdoor_data: Dataset,
        /// How the client votes when selected as a validator.
        voting: VoterBehavior,
    },
}

/// One federated client actor: local data, a cached slice of the
/// accepted-model history (filled incrementally by the server), the
/// validation function, and a role.
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    data: Dataset,
    trainer: LocalTrainer,
    validator: Validator,
    role: ClientRole,
    /// Cached history: `(id, model)` pairs, oldest first.
    history_cache: Vec<(ModelId, Mlp)>,
    history_window: usize,
    template: Mlp,
    rng: StdRng,
    rounds_participated: u64,
}

impl Client {
    /// Creates a client actor. `template` is any model with the right
    /// architecture (used to decode incoming parameter vectors).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        endpoint: Endpoint,
        data: Dataset,
        trainer: LocalTrainer,
        validator: Validator,
        role: ClientRole,
        history_window: usize,
        template: Mlp,
        seed: u64,
    ) -> Self {
        Self {
            endpoint,
            data,
            trainer,
            validator,
            role,
            history_cache: Vec::new(),
            history_window,
            template,
            rng: StdRng::seed_from_u64(seed),
            rounds_participated: 0,
        }
    }

    /// Number of rounds this client was asked to train or validate in.
    pub fn rounds_participated(&self) -> u64 {
        self.rounds_participated
    }

    /// Runs the actor loop until a [`Message::Shutdown`] arrives (or the
    /// network disconnects).
    pub fn run(&mut self) {
        while let Ok(env) = self.endpoint.recv() {
            match env.message {
                Message::TrainRequest { round, global } => {
                    self.rounds_participated += 1;
                    self.handle_train(round, &global);
                }
                Message::ValidateRequest { round, candidate, history_delta } => {
                    self.rounds_participated += 1;
                    for entry in history_delta {
                        if let Ok(params) = wire::decode_f32(&entry.params) {
                            let mut m = self.template.clone();
                            m.set_params(&params);
                            self.history_cache.push((entry.id, m));
                        }
                    }
                    self.history_cache.sort_by_key(|(id, _)| *id);
                    self.history_cache.dedup_by_key(|(id, _)| *id);
                    while self.history_cache.len() > self.history_window {
                        self.history_cache.remove(0);
                    }
                    self.handle_validate(round, &candidate);
                }
                Message::RoundResult { .. } => {
                    // Nothing to do: history updates arrive with the next
                    // ValidateRequest delta.
                }
                Message::UpdateSubmission { .. } | Message::VoteSubmission { .. } => {
                    // Client-to-server messages; ignore if misrouted.
                }
                Message::Shutdown => break,
            }
        }
    }

    fn handle_train(&mut self, round: u64, global_bytes: &Bytes) {
        let Ok(params) = wire::decode_f32(global_bytes) else { return };
        let mut global = self.template.clone();
        global.set_params(&params);
        let update = match &self.role {
            ClientRole::Honest => self.trainer.train_update(&global, &self.data, &mut self.rng),
            ClientRole::Malicious { attack, backdoor_data, .. } => {
                let mut atk_rng = StdRng::seed_from_u64(0xBAD ^ round);
                attack.poisoned_update(&global, &self.data, backdoor_data, &mut atk_rng)
            }
        };
        self.endpoint.send(
            NodeId::SERVER,
            Message::UpdateSubmission {
                round,
                from: self.endpoint.id(),
                update: Bytes::from(wire::encode_f32(&update)),
            },
        );
    }

    fn handle_validate(&mut self, round: u64, candidate_bytes: &Bytes) {
        let Ok(params) = wire::decode_f32(candidate_bytes) else { return };
        let mut candidate = self.template.clone();
        candidate.set_params(&params);
        let history: Vec<Mlp> = self.history_cache.iter().map(|(_, m)| m.clone()).collect();
        let honest_vote = match self.validator.validate(&candidate, &history, &self.data) {
            Ok(verdict) => verdict.vote(),
            Err(_) => Vote::Accept, // cannot judge: abstain (footnote 1)
        };
        let vote = match &self.role {
            ClientRole::Honest => honest_vote,
            ClientRole::Malicious { voting, .. } => voting.cast(honest_vote),
        };
        self.endpoint.send(
            NodeId::SERVER,
            Message::VoteSubmission { round, from: self.endpoint.id(), vote },
        );
    }
}
