//! Regenerates **Figure 3**: FP/FN rates of BAFFLE-C and BAFFLE for
//! quorum threshold q ∈ [3..9] and the three data splits, on both
//! datasets (ℓ = 20). The server-only configuration is reported once per
//! split — it does not depend on q.
//!
//! Run with `cargo run --release -p baffle-core --bin fig3_quorum`.

use baffle_core::exp::{
    base_config, cell, repeat_rates, server_shares, split_label, ExpArgs, Table,
};
use baffle_core::{DatasetKind, DefenseMode};

fn main() {
    let args = ExpArgs::from_env();
    let quorums: &[usize] = if args.fast { &[3, 5, 7] } else { &[3, 4, 5, 6, 7, 8, 9] };

    for dataset in [DatasetKind::CifarLike, DatasetKind::FemnistLike] {
        for share in server_shares(dataset) {
            let mut table = Table::new(
                &format!(
                    "Figure 3 ({dataset:?}, split {}): detection rates vs quorum q, ℓ = 20",
                    split_label(share)
                ),
                &["q", "FP C", "FP C+S", "FN C", "FN C+S"],
            );
            for &q in quorums {
                let mut row = vec![q.to_string()];
                let mut fps = Vec::new();
                let mut fns = Vec::new();
                for mode in [DefenseMode::ClientsOnly, DefenseMode::Both] {
                    let mut config = base_config(dataset, args.seed);
                    config.server_share = share;
                    config.quorum = q;
                    config.defense = mode;
                    if args.fast {
                        config.rounds = 20;
                        config.poison_rounds = vec![10, 15];
                    }
                    let (fp, fnr) = repeat_rates(&config, &args);
                    fps.push(cell(&fp));
                    fns.push(cell(&fnr));
                }
                row.extend(fps);
                row.extend(fns);
                table.row(row);
            }
            // Server-only reference line (independent of q).
            let mut config = base_config(dataset, args.seed);
            config.server_share = share;
            config.defense = DefenseMode::ServerOnly;
            if args.fast {
                config.rounds = 20;
                config.poison_rounds = vec![10, 15];
            }
            let (fp, fnr) = repeat_rates(&config, &args);
            table.row(vec!["S".into(), cell(&fp), "-".into(), cell(&fnr), "-".into()]);
            table.emit(&args);
        }
    }
}
