//! Gamma sampling via the Marsaglia–Tsang method.
//!
//! Implemented locally (rather than pulling `rand_distr`) because the only
//! consumer is the Dirichlet partitioner and the offline dependency list is
//! deliberately small.

use rand::Rng;

/// Draws one sample from `Gamma(shape, 1)` using Marsaglia–Tsang squeeze
//  rejection (2000), with the `shape < 1` boost `G(a) = G(a+1) · U^{1/a}`.
///
/// # Panics
///
/// Panics if `shape` is not finite and positive.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = baffle_data::gamma::sample_gamma(&mut rng, 0.9);
/// assert!(g > 0.0);
/// ```
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape.is_finite() && shape > 0.0, "sample_gamma: shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: G(a) = G(a + 1) * U^(1/a).
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (f64 precision).
        let u1: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();

        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen();
        // Squeeze acceptance.
        if u < 1.0 - 0.0331 * z.powi(4) {
            return d * v3;
        }
        if u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(shape: f64, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(17);
        let xs: Vec<f64> = (0..n).map(|_| sample_gamma(&mut rng, shape)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn gamma_mean_and_variance_shape_2() {
        // Gamma(k, 1) has mean k and variance k.
        let (mean, var) = sample_stats(2.0, 50_000);
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 2.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn gamma_mean_shape_below_one() {
        let (mean, _) = sample_stats(0.5, 50_000);
        assert!((mean - 0.5).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn gamma_mean_shape_point_nine() {
        // The paper's Dirichlet hyperparameter.
        let (mean, var) = sample_stats(0.9, 50_000);
        assert!((mean - 0.9).abs() < 0.04, "mean = {mean}");
        assert!((var - 0.9).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(sample_gamma(&mut rng, 0.1) > 0.0);
            assert!(sample_gamma(&mut rng, 5.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn non_positive_shape_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_gamma(&mut rng, 0.0);
    }
}
