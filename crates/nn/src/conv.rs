//! 1-D convolution with manual backpropagation.
//!
//! The synthetic substrate represents samples as feature vectors; the
//! convolutional model family treats them as 1-D signals (one input
//! channel), the closest analogue of the paper's ResNet18 this crate
//! supports. Shapes follow a channels-major layout: a batch row of a
//! `c`-channel, length-`L` signal is the concatenation
//! `[ch 0 | ch 1 | … | ch c−1]`, each of length `L`.

use crate::Activation;
use baffle_tensor::{rng as trng, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A same-padded, stride-1 1-D convolution layer with a pointwise
/// activation: `y[o][p] = act(Σᵢ Σₖ w[o][i][k] · x[i][p+k−⌊K/2⌋] + b[o])`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    length: usize,
    /// Weights, `out_channels × (in_channels · kernel)` row-major.
    w: Matrix,
    b: Vec<f32>,
    activation: Activation,
    #[serde(skip)]
    cached_input: Option<Matrix>,
    #[serde(skip)]
    cached_pre: Option<Matrix>,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Option<Vec<f32>>,
}

impl Conv1d {
    /// Creates a conv layer for signals of length `length`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel is even (same
    /// padding needs an odd kernel).
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        length: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "Conv1d: channels must be positive");
        assert!(length > 0, "Conv1d: length must be positive");
        assert!(kernel % 2 == 1, "Conv1d: kernel must be odd for same padding, got {kernel}");
        let fan_in = in_channels * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            length,
            w: trng::he_init_transposed(rng, fan_in, out_channels),
            b: vec![0.0; out_channels],
            activation,
            cached_input: None,
            cached_pre: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Input width this layer expects (`in_channels · length`).
    pub fn in_dim(&self) -> usize {
        self.in_channels * self.length
    }

    /// Output width (`out_channels · length`).
    pub fn out_dim(&self) -> usize {
        self.out_channels * self.length
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Signal length.
    pub fn length(&self) -> usize {
        self.length
    }

    #[inline]
    fn weight(&self, o: usize, i: usize, k: usize) -> f32 {
        self.w[(o, i * self.kernel + k)]
    }

    fn convolve(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "Conv1d: input width {} != expected {}",
            x.cols(),
            self.in_dim()
        );
        let pad = self.kernel / 2;
        let len = self.length;
        let mut out = Matrix::zeros(x.rows(), self.out_dim());
        for bi in 0..x.rows() {
            let row = x.row(bi);
            let out_row = out.row_mut(bi);
            for o in 0..self.out_channels {
                for p in 0..len {
                    let mut acc = self.b[o];
                    for i in 0..self.in_channels {
                        let base = i * len;
                        for k in 0..self.kernel {
                            let q = p + k;
                            if q < pad || q - pad >= len {
                                continue;
                            }
                            acc += self.weight(o, i, k) * row[base + q - pad];
                        }
                    }
                    out_row[o * len + p] = acc;
                }
            }
        }
        out
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let act = self.activation;
        self.convolve(x).map(|v| act.apply(v))
    }

    /// Training forward pass (caches state for [`Conv1d::backward`]).
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let pre = self.convolve(x);
        self.cached_input = Some(x.clone());
        let act = self.activation;
        let out = pre.map(|v| act.apply(v));
        self.cached_pre = Some(pre);
        out
    }

    /// Backward pass: returns ∂L/∂x and stores parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_train` or with a wrong-shaped
    /// gradient.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("Conv1d::backward before forward_train");
        let pre = self.cached_pre.as_ref().expect("pre-activation cache missing");
        assert_eq!(grad_out.shape(), pre.shape(), "Conv1d::backward: gradient shape mismatch");

        let act = self.activation;
        let mut delta = pre.map(|v| act.derivative(v));
        delta.hadamard_assign(grad_out);

        let pad = self.kernel / 2;
        let len = self.length;
        let mut grad_w = Matrix::zeros(self.out_channels, self.in_channels * self.kernel);
        let mut grad_b = vec![0.0_f32; self.out_channels];
        let mut dx = Matrix::zeros(input.rows(), self.in_dim());

        for bi in 0..input.rows() {
            let x_row = input.row(bi);
            let d_row = delta.row(bi);
            let dx_row = dx.row_mut(bi);
            for o in 0..self.out_channels {
                for p in 0..len {
                    let d = d_row[o * len + p];
                    if d == 0.0 {
                        continue;
                    }
                    grad_b[o] += d;
                    for i in 0..self.in_channels {
                        let base = i * len;
                        for k in 0..self.kernel {
                            let q = p + k;
                            if q < pad || q - pad >= len {
                                continue;
                            }
                            grad_w[(o, i * self.kernel + k)] += d * x_row[base + q - pad];
                            dx_row[base + q - pad] += d * self.weight(o, i, k);
                        }
                    }
                }
            }
        }
        self.grad_w = Some(grad_w);
        self.grad_b = Some(grad_b);
        dx
    }

    /// Applies the stored gradients through the caller's update rule.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv1d::backward`].
    pub fn apply_grads(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        let gw = self.grad_w.take().expect("Conv1d::apply_grads before backward");
        let gb = self.grad_b.take().expect("bias gradient missing");
        for (p, &g) in self.w.as_mut_slice().iter_mut().zip(gw.as_slice()) {
            f(p, g);
        }
        for (p, &g) in self.b.iter_mut().zip(&gb) {
            f(p, g);
        }
    }

    /// Appends parameters (weights row-major, then bias).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Reads parameters from the front of `p`, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is too short.
    pub fn read_params<'a>(&mut self, p: &'a [f32]) -> &'a [f32] {
        let nw = self.w.len();
        let nb = self.b.len();
        assert!(p.len() >= nw + nb, "Conv1d::read_params: need {} values", nw + nb);
        self.w.as_mut_slice().copy_from_slice(&p[..nw]);
        self.b.copy_from_slice(&p[nw..nw + nb]);
        &p[nw + nb..]
    }
}

/// Global average pooling over the signal axis: collapses
/// `channels × length` to `channels` by averaging each channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalAvgPool1d {
    channels: usize,
    length: usize,
}

impl GlobalAvgPool1d {
    /// Creates the pool for `channels` channels of `length` samples.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(channels: usize, length: usize) -> Self {
        assert!(channels > 0 && length > 0, "GlobalAvgPool1d: dimensions must be positive");
        Self { channels, length }
    }

    /// Forward pass: `batch × (channels·length)` → `batch × channels`.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.channels * self.length, "GlobalAvgPool1d: width mismatch");
        let mut out = Matrix::zeros(x.rows(), self.channels);
        for bi in 0..x.rows() {
            let row = x.row(bi);
            let out_row = out.row_mut(bi);
            for (c, o) in out_row.iter_mut().enumerate() {
                let seg = &row[c * self.length..(c + 1) * self.length];
                *o = seg.iter().sum::<f32>() / self.length as f32;
            }
        }
        out
    }

    /// Backward pass: spreads each channel gradient uniformly over the
    /// signal positions.
    pub fn backward(&self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.cols(), self.channels, "GlobalAvgPool1d: gradient width mismatch");
        let mut dx = Matrix::zeros(grad_out.rows(), self.channels * self.length);
        let inv = 1.0 / self.length as f32;
        for bi in 0..grad_out.rows() {
            let g = grad_out.row(bi);
            let dx_row = dx.row_mut(bi);
            for c in 0..self.channels {
                for p in 0..self.length {
                    dx_row[c * self.length + p] = g[c] * inv;
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv(ci: usize, co: usize, k: usize, len: usize, act: Activation) -> Conv1d {
        let mut rng = StdRng::seed_from_u64(5);
        Conv1d::new(ci, co, k, len, act, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let c = conv(2, 3, 3, 7, Activation::Identity);
        let x = Matrix::zeros(4, 14);
        assert_eq!(c.forward(&x).shape(), (4, 21));
        assert_eq!(c.num_params(), 3 * 2 * 3 + 3);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1→1 conv, kernel 3, weights [0,1,0], bias 0 = identity.
        let mut c = conv(1, 1, 3, 5, Activation::Identity);
        c.read_params(&[0.0, 1.0, 0.0, 0.0]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0]]);
        assert_eq!(c.forward(&x), x);
    }

    #[test]
    fn shift_kernel_pads_with_zero() {
        // Kernel [1,0,0] shifts the signal right by one (same padding).
        let mut c = conv(1, 1, 3, 4, Activation::Identity);
        c.read_params(&[1.0, 0.0, 0.0, 0.0]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let y = c.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 1.0, 2.0, 3.0]]));
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut c = conv(2, 2, 3, 5, Activation::Tanh);
        let x = Matrix::from_fn(3, 10, |r, j| ((r * 10 + j) as f32 * 0.23).sin() * 0.5);
        let loss = |c: &Conv1d, x: &Matrix| c.forward(x).as_slice().iter().sum::<f32>();

        c.forward_train(&x);
        let ones = Matrix::filled(3, 10, 1.0);
        let dx = c.backward(&ones);
        let mut analytic = Vec::new();
        analytic.extend_from_slice(c.grad_w.clone().unwrap().as_slice());
        analytic.extend_from_slice(c.grad_b.as_ref().unwrap());

        let mut params = Vec::new();
        c.write_params(&mut params);
        let eps = 1e-3;
        for i in 0..params.len() {
            let mut plus = params.clone();
            plus[i] += eps;
            let mut minus = params.clone();
            minus[i] -= eps;
            let mut cp = c.clone();
            cp.read_params(&plus);
            let mut cm = c.clone();
            cm.read_params(&minus);
            let fd = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 3e-2,
                "param {i}: fd {fd} vs analytic {}",
                analytic[i]
            );
        }
        // Input gradient, one entry.
        let mut xp = x.clone();
        xp[(1, 3)] += eps;
        let mut xm = x.clone();
        xm[(1, 3)] -= eps;
        let fd = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
        assert!((fd - dx[(1, 3)]).abs() < 3e-2, "dx fd {fd} vs {}", dx[(1, 3)]);
    }

    #[test]
    fn param_roundtrip() {
        let c1 = conv(2, 3, 3, 4, Activation::Relu);
        let mut c2 = conv(2, 3, 3, 4, Activation::Relu);
        let mut p = Vec::new();
        c1.write_params(&mut p);
        assert_eq!(p.len(), c1.num_params());
        let rest = c2.read_params(&p);
        assert!(rest.is_empty());
        let x = Matrix::from_fn(2, 8, |r, j| (r + j) as f32 * 0.1);
        assert_eq!(c1.forward(&x), c2.forward(&x));
    }

    #[test]
    fn pool_averages_channels() {
        let pool = GlobalAvgPool1d::new(2, 3);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 10.0, 20.0, 30.0]]);
        let y = pool.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[2.0, 20.0]]));
    }

    #[test]
    fn pool_gradient_matches_finite_difference() {
        let pool = GlobalAvgPool1d::new(2, 4);
        let x = Matrix::from_fn(2, 8, |r, j| (r * 8 + j) as f32 * 0.3);
        // Loss = sum of pooled outputs; gradient w.r.t. each input is 1/len.
        let dx = pool.backward(&Matrix::filled(2, 2, 1.0));
        assert!(dx.as_slice().iter().all(|&g| (g - 0.25).abs() < 1e-6));
        let _ = x;
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn even_kernel_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Conv1d::new(1, 1, 2, 4, Activation::Relu, &mut rng);
    }
}
