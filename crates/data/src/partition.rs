//! Non-IID partitioning of a dataset across federated clients.
//!
//! Follows the paper's setup (§VI-A): data is assigned to clients
//! according to a symmetric `Dirichlet(0.9)` distribution per class, so
//! client datasets are unbalanced with respect to the classes. The
//! *C-S%* data splits of §VI (clients jointly hold C% of the data, the
//! server the remaining S%) are produced by [`client_server_split`].

use crate::{dirichlet, Dataset};
use rand::Rng;

/// Assigns each sample index to one of `num_clients` shards, class by
/// class, with per-class client proportions drawn from a symmetric
/// `Dirichlet(alpha)`.
///
/// Every index in `0..labels.len()` appears in exactly one shard. Shards
/// may be empty (that is realistic: with small `alpha` some clients hold
/// no samples of a class, or none at all).
///
/// # Panics
///
/// Panics if `num_clients == 0`, `num_classes == 0`, or a label is out of
/// range.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let labels = vec![0, 0, 1, 1, 1, 0];
/// let shards = baffle_data::partition::dirichlet_indices(&mut rng, &labels, 2, 3, 0.9);
/// let total: usize = shards.iter().map(Vec::len).sum();
/// assert_eq!(total, labels.len());
/// ```
pub fn dirichlet_indices<R: Rng + ?Sized>(
    rng: &mut R,
    labels: &[usize],
    num_classes: usize,
    num_clients: usize,
    alpha: f64,
) -> Vec<Vec<usize>> {
    assert!(num_clients > 0, "dirichlet_indices: need at least one client");
    assert!(num_classes > 0, "dirichlet_indices: need at least one class");
    assert!(
        labels.iter().all(|&l| l < num_classes),
        "dirichlet_indices: a label is out of range for {num_classes} classes"
    );
    let mut shards = vec![Vec::new(); num_clients];
    for class in 0..num_classes {
        let class_indices: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        if class_indices.is_empty() {
            continue;
        }
        let props = dirichlet::sample_symmetric(rng, alpha, num_clients);
        // Largest-remainder apportionment of this class's samples.
        let counts = apportion(&props, class_indices.len());
        let mut cursor = 0;
        for (client, &count) in counts.iter().enumerate() {
            shards[client].extend_from_slice(&class_indices[cursor..cursor + count]);
            cursor += count;
        }
    }
    shards
}

/// Largest-remainder apportionment: distributes `total` units over
/// categories proportionally to `props`, exactly.
fn apportion(props: &[f64], total: usize) -> Vec<usize> {
    let mut counts: Vec<usize> =
        props.iter().map(|&p| (p * total as f64).floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> =
        props.iter().enumerate().map(|(i, &p)| (i, p * total as f64 - counts[i] as f64)).collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for &(i, _) in remainders.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

/// Splits a dataset into `num_clients` non-IID client shards plus a
/// server-held validation share.
///
/// `server_share` is the *S* of the paper's C-S% splits: the fraction of
/// all data held by the server (e.g. `0.10` for the 90-10% split). The
/// server share is drawn uniformly at random (it is an IID sample of the
/// natural distribution — the server is assumed to hold a small benign
/// test set); the remainder is Dirichlet-partitioned across clients.
///
/// # Panics
///
/// Panics if `server_share` is not in `[0, 1)` or `num_clients == 0`.
pub fn client_server_split<R: Rng + ?Sized>(
    rng: &mut R,
    dataset: &Dataset,
    num_clients: usize,
    alpha: f64,
    server_share: f64,
) -> (Vec<Dataset>, Dataset) {
    assert!(
        (0.0..1.0).contains(&server_share),
        "client_server_split: server_share must be in [0, 1), got {server_share}"
    );
    let server_n = (server_share * dataset.len() as f64).round() as usize;
    let (server, client_pool) = dataset.split_random(rng, server_n);
    let shards =
        dirichlet_indices(rng, client_pool.labels(), client_pool.num_classes(), num_clients, alpha);
    let clients = shards.iter().map(|idx| client_pool.subset(idx)).collect();
    (clients, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize, num_classes: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 2, |r, c| (r + c) as f32);
        let y = (0..n).map(|_| rng.gen_range(0..num_classes)).collect();
        Dataset::new(x, y, num_classes)
    }

    #[test]
    fn apportion_is_exact() {
        let counts = apportion(&[0.5, 0.3, 0.2], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, vec![5, 3, 2]);
    }

    #[test]
    fn apportion_handles_rounding() {
        let counts = apportion(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn partition_covers_every_index_exactly_once() {
        let d = toy_dataset(500, 10, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let shards = dirichlet_indices(&mut rng, d.labels(), 10, 20, 0.9);
        let mut all: Vec<usize> = shards.iter().flatten().cloned().collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn low_alpha_is_more_skewed_than_high_alpha() {
        // Measure skew as the std-dev of per-client class-0 share.
        let d = toy_dataset(5000, 5, 3);
        let skew = |alpha: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let shards = dirichlet_indices(&mut rng, d.labels(), 5, 20, alpha);
            let shares: Vec<f64> = shards
                .iter()
                .map(|s| {
                    let c0 = s.iter().filter(|&&i| d.labels()[i] == 0).count();
                    c0 as f64 / s.len().max(1) as f64
                })
                .collect();
            let m = shares.iter().sum::<f64>() / shares.len() as f64;
            (shares.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / shares.len() as f64).sqrt()
        };
        assert!(skew(0.1, 4) > skew(100.0, 5), "low alpha should be skewed");
    }

    #[test]
    fn client_server_split_shares_add_up() {
        let d = toy_dataset(1000, 10, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let (clients, server) = client_server_split(&mut rng, &d, 10, 0.9, 0.1);
        assert_eq!(server.len(), 100);
        let client_total: usize = clients.iter().map(Dataset::len).sum();
        assert_eq!(client_total, 900);
        assert_eq!(clients.len(), 10);
    }

    #[test]
    fn zero_server_share_gives_empty_server_set() {
        let d = toy_dataset(100, 3, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let (clients, server) = client_server_split(&mut rng, &d, 5, 0.9, 0.0);
        assert!(server.is_empty());
        assert_eq!(clients.iter().map(Dataset::len).sum::<usize>(), 100);
    }

    #[test]
    fn partition_is_deterministic_under_seed() {
        let d = toy_dataset(200, 4, 10);
        let shards1 = dirichlet_indices(&mut StdRng::seed_from_u64(11), d.labels(), 4, 7, 0.9);
        let shards2 = dirichlet_indices(&mut StdRng::seed_from_u64(11), d.labels(), 4, 7, 0.9);
        assert_eq!(shards1, shards2);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = dirichlet_indices(&mut rng, &[0, 1], 2, 0, 0.9);
    }
}
