//! Property-based tests for the LOF implementation.

use baffle_lof::{lof_against, LofModel};
use proptest::prelude::*;

fn points_strategy(dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0_f32..100.0, dim..=dim), 3..20)
}

proptest! {
    /// LOF scores are always non-negative (possibly +inf for degenerate
    /// duplicate neighbourhoods).
    #[test]
    fn lof_is_non_negative(refs in points_strategy(3), q in prop::collection::vec(-100.0_f32..100.0, 3)) {
        let s = lof_against(&q, &refs, 3).unwrap();
        prop_assert!(s >= 0.0, "LOF = {s}");
    }

    /// A query that coincides with a reference point scores no worse than a
    /// query far outside the data: duplicating an existing point cannot be
    /// *more* outlying than leaving the data entirely.
    #[test]
    fn duplicate_scores_no_worse_than_far_point(refs in points_strategy(2)) {
        let q = refs[0].clone();
        let dup = lof_against(&q, &refs, 2).unwrap();
        let spread = refs.iter().flat_map(|p| p.iter()).fold(0.0_f32, |m, &x| m.max(x.abs())).max(1.0);
        let far = lof_against(&[spread * 100.0, spread * 100.0], &refs, 2).unwrap();
        if dup.is_finite() && far.is_finite() {
            prop_assert!(dup <= far * 1.0001 + 1e-9, "duplicate {dup} > far {far}");
        }
    }

    /// Translating the whole space leaves the score unchanged (LOF is
    /// translation invariant).
    #[test]
    fn translation_invariance(refs in points_strategy(2), q in prop::collection::vec(-50.0_f32..50.0, 2), t in -20.0_f32..20.0) {
        let s1 = lof_against(&q, &refs, 2).unwrap();
        let shifted: Vec<Vec<f32>> = refs.iter().map(|p| p.iter().map(|&x| x + t).collect()).collect();
        let qs: Vec<f32> = q.iter().map(|&x| x + t).collect();
        let s2 = lof_against(&qs, &shifted, 2).unwrap();
        if s1.is_finite() && s2.is_finite() {
            prop_assert!((s1 - s2).abs() < 1e-3 * (1.0 + s1.abs()), "{s1} vs {s2}");
        }
    }

    /// Fitting never panics and clamps k.
    #[test]
    fn fit_clamps_k(refs in points_strategy(4), k in 1usize..100) {
        let n = refs.len();
        let model = LofModel::fit(refs, k).unwrap();
        prop_assert!(model.k() < n);
        prop_assert!(model.k() >= 1);
    }

    /// Moving a query point radially away from the reference centroid never
    /// hugely decreases its LOF (monotone-ish growth; we assert a weak form:
    /// the far point scores at least half the near point's score).
    #[test]
    fn weak_radial_monotonicity(refs in points_strategy(2)) {
        let n = refs.len() as f32;
        let centroid: Vec<f32> = (0..2).map(|d| refs.iter().map(|p| p[d]).sum::<f32>() / n).collect();
        let spread = refs.iter().map(|p| ((p[0]-centroid[0]).powi(2) + (p[1]-centroid[1]).powi(2)).sqrt()).fold(0.0_f32, f32::max).max(1.0);
        let near: Vec<f32> = vec![centroid[0] + 2.0 * spread, centroid[1]];
        let far: Vec<f32> = vec![centroid[0] + 20.0 * spread, centroid[1]];
        let s_near = lof_against(&near, &refs, 2).unwrap();
        let s_far = lof_against(&far, &refs, 2).unwrap();
        if s_near.is_finite() && s_far.is_finite() {
            prop_assert!(s_far >= 0.5 * s_near, "near {s_near}, far {s_far}");
        }
    }
}
