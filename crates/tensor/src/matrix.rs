//! Row-major dense `f32` matrix.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32`.
///
/// All shape mismatches are programming errors and panic with a message that
/// names the offending operation and both shapes; see the "Panics" section
/// on each method.
///
/// # Example
///
/// ```
/// use baffle_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a matrix whose entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major view of the underlying data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major view of the underlying data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Matrix::row: row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "Matrix::row_mut: row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Borrowed view of the row range `r0..r1` — no copy. The chunked
    /// evaluation path hands these to the forward pass instead of
    /// cloning each chunk into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > self.rows()`.
    #[inline]
    pub fn view_rows(&self, r0: usize, r1: usize) -> MatrixView<'_> {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "Matrix::view_rows: range {r0}..{r1} out of bounds for {} rows",
            self.rows
        );
        MatrixView {
            rows: r1 - r0,
            cols: self.cols,
            data: &self.data[r0 * self.cols..r1 * self.cols],
        }
    }

    /// Borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatrixView<'_> {
        self.view_rows(0, self.rows)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Dispatches into the cache-blocked kernels of [`crate::gemm`],
    /// which row-band large products across the shared worker pool
    /// ([`crate::pool`]); the result is bit-identical to the naive
    /// serial triple loop for every shape and thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "Matrix::matmul: shape mismatch {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::gemm::nn(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
        out
    }

    /// Matrix product `self * otherᵀ` without materialising the
    /// transpose at the API level; large products pack `otherᵀ` once
    /// internally to reach the blocked kernel (see [`crate::gemm::nt`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::matmul_nt: shape mismatch {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::gemm::nt(self.rows, self.cols, other.rows, &self.data, &other.data, &mut out.data);
        out
    }

    /// Matrix product `selfᵀ * other` without materialising the
    /// transpose (see [`crate::gemm::tn`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::matmul_tn: shape mismatch ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::gemm::tn(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
        out
    }

    /// Adds `other` entrywise in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.zip_assign(other, "add_assign", |a, b| a + b);
    }

    /// Subtracts `other` entrywise in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign(&mut self, other: &Matrix) {
        self.zip_assign(other, "sub_assign", |a, b| a - b);
    }

    /// Entrywise (Hadamard) product in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        self.zip_assign(other, "hadamard_assign", |a, b| a * b);
    }

    fn zip_assign(&mut self, other: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Matrix::{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns a copy with every entry mapped through `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every entry in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Adds the row vector `bias` to every row, in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(
            bias.len(),
            self.cols,
            "Matrix::add_row_broadcast: bias length {} != cols {}",
            bias.len(),
            self.cols
        );
        for row in self.data.chunks_exact_mut(self.cols) {
            for (a, &b) in row.iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Sums the rows into a single vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Index of the maximum entry in each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold(
                        (0, f32::NEG_INFINITY),
                        |(bi, bv), (i, &v)| {
                            if v > bv {
                                (i, v)
                            } else {
                                (bi, bv)
                            }
                        },
                    )
                    .0
            })
            .collect()
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Whether every entry is finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Copies the rows with the given indices into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Reshapes `self` to `rows × cols`, reusing the existing allocation
    /// whenever its capacity suffices (the steady-state case in the
    /// training loop, where batch shapes repeat across steps).
    ///
    /// The contents afterwards are **unspecified**: callers must
    /// overwrite (or zero-fill) every entry before reading. Every
    /// `_into` kernel on this type does exactly that.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites `self` with a copy of `other`, reusing the allocation
    /// when possible — the allocation-free replacement for
    /// `*self = other.clone()` in buffer-reusing hot paths.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize_for_overwrite(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// [`Matrix::matmul`] into a caller-owned output buffer: `out` is
    /// reshaped (allocation-free at steady state), zero-filled and
    /// handed to the same [`crate::gemm::nn`] dispatcher, so the result
    /// is bit-identical to the allocating form for every shape, kernel
    /// tier and thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "Matrix::matmul_into: shape mismatch {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_for_overwrite(self.rows, other.cols);
        out.data.fill(0.0);
        crate::gemm::nn(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
    }

    /// [`Matrix::matmul_nt`] into a caller-owned output buffer; see
    /// [`Matrix::matmul_into`] for the reuse and bit-exactness contract.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::matmul_nt_into: shape mismatch {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_for_overwrite(self.rows, other.rows);
        out.data.fill(0.0);
        crate::gemm::nt(self.rows, self.cols, other.rows, &self.data, &other.data, &mut out.data);
    }

    /// [`Matrix::matmul_tn`] into a caller-owned output buffer; see
    /// [`Matrix::matmul_into`] for the reuse and bit-exactness contract.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::matmul_tn_into: shape mismatch ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_for_overwrite(self.cols, other.cols);
        out.data.fill(0.0);
        crate::gemm::tn(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
    }

    /// [`Matrix::map`] into a caller-owned output buffer (every entry of
    /// `out` is overwritten with `f` of the corresponding entry).
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: &mut Matrix) {
        out.resize_for_overwrite(self.rows, self.cols);
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// [`Matrix::select_rows`] into a caller-owned output buffer.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize_for_overwrite(indices.len(), self.cols);
        for (dst, &i) in out.data.chunks_exact_mut(self.cols.max(1)).zip(indices) {
            dst.copy_from_slice(self.row(i));
        }
    }

    /// [`Matrix::sum_rows`] into a caller-owned vector (cleared, resized
    /// to `cols` and accumulated from zero — bit-identical to the
    /// allocating form).
    pub fn sum_rows_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
    }
}

/// A pool of reusable scratch buffers for allocation-free hot loops.
///
/// Callers [`Workspace::take`] a matrix of the shape they need (its
/// contents are unspecified) and [`Workspace::recycle`] it when done;
/// once the pool has seen the loop's peak shapes, every subsequent
/// take/recycle cycle is allocation-free. Unlike keeping named scratch
/// fields, a workspace handles a *variable* number of simultaneous
/// buffers (e.g. per-layer activations of differing widths).
///
/// # Example
///
/// ```
/// use baffle_tensor::{Matrix, Workspace};
///
/// let mut ws = Workspace::new();
/// let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f32);
/// let mut out = ws.take(4, 4);
/// a.matmul_nt_into(&a, &mut out);
/// ws.recycle(out); // the buffer is reused by the next take
/// assert_eq!(ws.pooled(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace (no buffers pooled yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a `rows × cols` matrix with **unspecified contents**,
    /// reusing a pooled buffer when one is available (allocation-free
    /// whenever the reused buffer's capacity suffices).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut data = self.free.pop().unwrap_or_default();
        data.resize(rows * cols, 0.0);
        Matrix { rows, cols, data }
    }

    /// As [`Workspace::take`], but zero-filled — for buffers a kernel
    /// accumulates into rather than overwrites.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take(rows, cols);
        m.data.fill(0.0);
        m
    }

    /// Returns a buffer to the pool for a later [`Workspace::take`].
    pub fn recycle(&mut self, m: Matrix) {
        self.free.push(m.data);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A borrowed, row-major view of a contiguous row range of a
/// [`Matrix`] (see [`Matrix::view_rows`]). Supports exactly the
/// operations the evaluation hot path needs — products and row access —
/// without owning or copying the data.
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> MatrixView<'a> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row-major view of the underlying data.
    #[inline]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        assert!(r < self.rows, "MatrixView::row: row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &'a [f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix product `self * other` — same kernels and bit-exactness
    /// contract as [`Matrix::matmul`], so evaluating a row range
    /// through a view is bit-identical to copying the rows out first.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "MatrixView::matmul: shape mismatch {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::gemm::nn(self.rows, self.cols, other.cols, self.data, &other.data, &mut out.data);
        out
    }

    /// Copies the viewed rows into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.to_vec() }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix index ({r}, {c}) out of bounds for shape {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix index ({r}, {c}) out of bounds for shape {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_ROWS: usize = 8;
        for (i, row) in self.rows_iter().enumerate().take(MAX_ROWS) {
            writeln!(f, "  row {i}: {row:?}")?;
        }
        if self.rows > MAX_ROWS {
            writeln!(f, "  ... ({} more rows)", self.rows - MAX_ROWS)?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(5, 4, |r, c| (2 * r + c) as f32);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(4, 5, |r, c| (r + c) as f32);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    /// Regression for the old `a == 0.0 { continue }` fast path, which
    /// silently turned `0 × ∞` into `0` instead of `NaN` in `matmul` /
    /// `matmul_tn`: IEEE-754 non-finite inputs must propagate.
    #[test]
    fn matmul_propagates_nan_from_zero_times_infinity() {
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f32::INFINITY], &[1.0]]);
        assert!(a.matmul(&b)[(0, 0)].is_nan(), "matmul: 0·∞ + 1·1 must be NaN");

        let at = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(at.matmul_tn(&b)[(0, 0)].is_nan(), "matmul_tn: 0·∞ + 1·1 must be NaN");

        let bt = Matrix::from_rows(&[&[f32::INFINITY, 1.0]]);
        assert!(a.matmul_nt(&bt)[(0, 0)].is_nan(), "matmul_nt: 0·∞ + 1·1 must be NaN");
    }

    #[test]
    fn matmul_propagates_infinity_and_nan_inputs() {
        let a = Matrix::from_rows(&[&[2.0]]);
        let inf = Matrix::from_rows(&[&[f32::INFINITY]]);
        assert_eq!(a.matmul(&inf)[(0, 0)], f32::INFINITY);
        let nan = Matrix::from_rows(&[&[f32::NAN]]);
        assert!(a.matmul(&nan)[(0, 0)].is_nan());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 31 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, -2.0]);
        }
    }

    #[test]
    fn sum_rows_known() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.sum_rows(), vec![9.0, 12.0]);
    }

    #[test]
    fn argmax_rows_ties_resolve_first() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies_in_order() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[2.0], &[0.0], &[2.0]]));
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        a.add_assign(&b);
        assert_eq!(a, Matrix::from_rows(&[&[4.0, 6.0]]));
        a.sub_assign(&b);
        assert_eq!(a, Matrix::from_rows(&[&[1.0, 2.0]]));
        a.hadamard_assign(&b);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 8.0]]));
        a.scale_assign(0.5);
        assert_eq!(a, Matrix::from_rows(&[&[1.5, 4.0]]));
    }

    #[test]
    fn map_and_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.map(|x| x * 2.0), Matrix::from_rows(&[&[6.0, 8.0]]));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Matrix::default());
        assert!(!s.is_empty());
    }

    #[test]
    fn view_rows_borrows_without_copying() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let v = m.view_rows(1, 4);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(0), m.row(1));
        assert_eq!(v.as_slice().as_ptr(), m.row(1).as_ptr(), "view must borrow, not copy");
        assert_eq!(v.to_matrix(), m.select_rows(&[1, 2, 3]));
        assert_eq!(m.view().to_matrix(), m);
    }

    #[test]
    fn view_matmul_is_bit_identical_to_copied_rows() {
        let x = Matrix::from_fn(6, 4, |r, c| (r as f32 - 2.5) * 0.25 + c as f32);
        let w = Matrix::from_fn(4, 3, |r, c| 0.125 * (r as f32 + 1.0) - c as f32);
        let v = x.view_rows(2, 5);
        let got = v.matmul(&w);
        let want = x.select_rows(&[2, 3, 4]).matmul(&w);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_rows_out_of_bounds_panics() {
        let _ = Matrix::zeros(2, 2).view_rows(1, 3);
    }

    #[test]
    fn into_kernels_are_bit_identical_to_allocating_forms() {
        let a = Matrix::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let b = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.19).cos());
        let bt = Matrix::from_fn(6, 4, |r, c| ((r + 3 * c) as f32 * 0.23).sin());
        let a2 = Matrix::from_fn(5, 6, |r, c| ((r * 6 + c) as f32 * 0.41).cos());

        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.matmul_nt_into(&bt, &mut out);
        assert_eq!(out, a.matmul_nt(&bt));
        a.matmul_tn_into(&a2, &mut out);
        assert_eq!(out, a.matmul_tn(&a2));
        a.map_into(|x| x * 2.0 - 1.0, &mut out);
        assert_eq!(out, a.map(|x| x * 2.0 - 1.0));
        a.select_rows_into(&[4, 0, 2], &mut out);
        assert_eq!(out, a.select_rows(&[4, 0, 2]));
        let mut sums = vec![7.0; 11]; // stale, wrong-sized contents
        a.sum_rows_into(&mut sums);
        assert_eq!(sums, a.sum_rows());
    }

    #[test]
    fn into_kernels_reuse_the_allocation_at_steady_state() {
        let a = Matrix::from_fn(6, 6, |r, c| (r * 6 + c) as f32);
        let mut out = Matrix::default();
        a.matmul_into(&a, &mut out);
        let ptr = out.as_slice().as_ptr();
        let cap = out.data.capacity();
        a.matmul_into(&a, &mut out);
        assert_eq!(out.as_slice().as_ptr(), ptr, "same-shape reuse must not reallocate");
        // Shrinking shapes keep the allocation too.
        a.select_rows_into(&[1, 2], &mut out);
        assert_eq!(out.data.capacity(), cap);
        assert_eq!(out.shape(), (2, 6));
    }

    #[test]
    fn copy_from_matches_clone() {
        let a = Matrix::from_fn(3, 5, |r, c| (r as f32) - (c as f32) * 0.5);
        let mut b = Matrix::zeros(9, 9);
        b.copy_from(&a);
        assert_eq!(b, a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_into_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn workspace_recycles_buffers() {
        let mut ws = Workspace::new();
        let m = ws.take(4, 4);
        let ptr = m.as_slice().as_ptr();
        ws.recycle(m);
        assert_eq!(ws.pooled(), 1);
        let m2 = ws.take_zeroed(2, 2);
        assert_eq!(m2.as_slice().as_ptr(), ptr, "take must reuse the recycled buffer");
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
    }
}
