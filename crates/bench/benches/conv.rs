//! Conv1d benchmarks: the packed im2col/GEMM path against the retained
//! naive scalar loops, at the channel mixes the default CNN hits.
//!
//! Two views per shape: `forward` (inference) and `train` (forward_train
//! + backward + a no-op gradient drain, the per-batch training cost).
//! Both paths are bit-identical by construction, so any gap here is pure
//! speed, never accuracy. Set `BAFFLE_NO_SIMD=1` to see how much of the
//! im2col win survives without the 8-wide GEMM micro-kernel.

use baffle_nn::conv::Conv1d;
use baffle_nn::Activation;
use baffle_tensor::rng as trng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// (in_channels, out_channels, kernel, length, batch): the two conv
/// layers of the default CNN (`CnnSpec::new(24, &[6, 6], 3, _)`) over a
/// training batch, plus a full-validation-set sized batch.
const SHAPES: &[(usize, usize, usize, usize, usize)] =
    &[(1, 6, 3, 24, 64), (6, 6, 3, 24, 64), (6, 6, 3, 24, 512)];

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv");
    group.sample_size(20);
    for &(ic, oc, k, len, batch) in SHAPES {
        let mut rng = StdRng::seed_from_u64(42);
        let conv = Conv1d::new(ic, oc, k, len, Activation::Relu, &mut rng);
        let x = trng::uniform_matrix(&mut rng, batch, ic * len, -1.0, 1.0);
        let g = trng::uniform_matrix(&mut rng, batch, oc * len, -1.0, 1.0);
        let id = format!("{ic}x{oc}x{k}x{len}b{batch}");

        group.bench_function(BenchmarkId::new("naive_forward", &id), |bch| {
            bch.iter(|| conv.naive_forward(black_box(&x)))
        });
        group.bench_function(BenchmarkId::new("im2col_forward", &id), |bch| {
            bch.iter(|| conv.forward(black_box(&x)))
        });

        let mut naive = conv.clone();
        naive.force_naive(true);
        group.bench_function(BenchmarkId::new("naive_train", &id), |bch| {
            bch.iter(|| {
                let _ = naive.forward_train(black_box(&x));
                let dx = naive.backward(black_box(&g));
                naive.apply_grads(|_, _| {});
                dx
            })
        });
        let mut packed = conv.clone();
        group.bench_function(BenchmarkId::new("im2col_train", &id), |bch| {
            bch.iter(|| {
                let _ = packed.forward_train(black_box(&x));
                let dx = packed.backward(black_box(&g));
                packed.apply_grads(|_, _| {});
                dx
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
