//! Mini-batch SGD with momentum and weight decay.

use serde::{Deserialize, Serialize};

/// Stochastic gradient descent with classical momentum and (decoupled)
/// weight decay, matching the optimiser used by the paper's FL setup
/// (`lr = 0.1` for local training).
///
/// The velocity buffer is keyed by parameter *position*, so one `Sgd`
/// instance must only ever be used with a single model.
///
/// # Example
///
/// ```
/// use baffle_nn::Sgd;
/// let mut opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(1e-4);
/// assert_eq!(opt.learning_rate(), 0.1);
/// opt.set_learning_rate(0.05);
/// assert_eq!(opt.learning_rate(), 0.05);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
    cursor: usize,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate (no momentum, no
    /// weight decay).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "Sgd::new: learning rate must be positive, got {lr}");
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new(), cursor: 0 }
    }

    /// Sets the momentum coefficient (0 disables momentum).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1), got {momentum}");
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative, got {weight_decay}");
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for a decay schedule).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Begins a new optimisation step over all parameters. Must be called
    /// once before the per-layer [`Sgd::update`] closures run for a batch.
    pub fn begin_step(&mut self, num_params: usize) {
        if self.velocity.len() != num_params {
            self.velocity = vec![0.0; num_params];
        }
        self.cursor = 0;
    }

    /// Updates a single parameter given its gradient. Parameters must be
    /// visited in the same order every step (the layer iteration order),
    /// which the model guarantees.
    ///
    /// # Panics
    ///
    /// Panics if more parameters are updated than announced to
    /// [`Sgd::begin_step`].
    #[inline]
    pub fn update(&mut self, param: &mut f32, grad: f32) {
        assert!(
            self.cursor < self.velocity.len(),
            "Sgd::update: more parameters than begin_step announced ({})",
            self.velocity.len()
        );
        let g = grad + self.weight_decay * *param;
        let v = &mut self.velocity[self.cursor];
        *v = self.momentum * *v + g;
        *param -= self.lr * *v;
        self.cursor += 1;
    }

    /// Updates a contiguous slice of parameters given their gradients —
    /// the slice-wise form of [`Sgd::update`], with elementwise-identical
    /// arithmetic (so a chunked walk over the parameter vector is
    /// bit-identical to the per-scalar one). The chunk occupies the next
    /// `params.len()` velocity slots, so chunks must be visited in the
    /// same order every step, which the model's layer order guarantees.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length, or the chunk
    /// overruns the count announced to [`Sgd::begin_step`].
    pub fn update_chunk(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "Sgd::update_chunk: {} params vs {} grads",
            params.len(),
            grads.len()
        );
        assert!(
            self.cursor + params.len() <= self.velocity.len(),
            "Sgd::update_chunk: more parameters than begin_step announced ({})",
            self.velocity.len()
        );
        let vel = &mut self.velocity[self.cursor..self.cursor + params.len()];
        for ((p, &grad), v) in params.iter_mut().zip(grads).zip(vel) {
            let g = grad + self.weight_decay * *p;
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
        self.cursor += params.len();
    }

    /// Clears the momentum buffer (e.g. when reusing the optimiser for a
    /// freshly reset model).
    pub fn reset(&mut self) {
        self.velocity.clear();
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1);
        opt.begin_step(1);
        let mut p = 1.0;
        opt.update(&mut p, 2.0);
        assert!((p - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut p = 0.0;
        opt.begin_step(1);
        opt.update(&mut p, 1.0); // v = 1, p = -0.1
        opt.begin_step(1);
        opt.update(&mut p, 1.0); // v = 1.9, p = -0.29
        assert!((p + 0.29).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let mut p = 1.0;
        opt.begin_step(1);
        opt.update(&mut p, 0.0);
        assert!(p < 1.0);
    }

    #[test]
    fn begin_step_resizes_velocity_on_model_change() {
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        opt.begin_step(2);
        let mut a = 0.0;
        opt.update(&mut a, 1.0);
        opt.begin_step(3); // new model size: velocity must reset
        let mut b = 0.0;
        opt.update(&mut b, 1.0);
        assert!((b + 0.1).abs() < 1e-6, "velocity leaked across resize");
    }

    #[test]
    fn update_chunk_is_bit_identical_to_per_scalar_updates() {
        let mut scalar = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(1e-3);
        let mut chunked = scalar.clone();
        let mut pa: Vec<f32> = (0..13).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut pb = pa.clone();
        let grads: Vec<f32> = (0..13).map(|i| (i as f32 * 1.3).cos()).collect();
        for _ in 0..5 {
            scalar.begin_step(13);
            for (p, &g) in pa.iter_mut().zip(&grads) {
                scalar.update(p, g);
            }
            chunked.begin_step(13);
            // Uneven chunk split, as layer boundaries produce.
            let (lo, hi) = pb.split_at_mut(5);
            chunked.update_chunk(lo, &grads[..5]);
            chunked.update_chunk(hi, &grads[5..]);
        }
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    /// Regression: `begin_step` with an unchanged parameter count must
    /// reuse the velocity buffer (no reallocation in the steady-state
    /// training loop), while `reset` forces the next step to re-zero it.
    #[test]
    fn begin_step_reuses_velocity_buffer_and_reset_rezeroes() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        opt.begin_step(8);
        let ptr = opt.velocity.as_ptr();
        let mut p = 1.0;
        opt.update(&mut p, 1.0);
        assert!(opt.velocity.iter().any(|&v| v != 0.0), "momentum must have accumulated");
        opt.begin_step(8);
        assert_eq!(opt.velocity.as_ptr(), ptr, "same-size begin_step must not reallocate");
        assert!(
            opt.velocity.iter().any(|&v| v != 0.0),
            "same-size begin_step must keep momentum (it is not a reset)"
        );
        opt.reset();
        opt.begin_step(8);
        assert!(opt.velocity.iter().all(|&v| v == 0.0), "reset must force re-zeroed velocity");
        assert_eq!(opt.velocity.len(), 8);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "more parameters")]
    fn too_many_updates_panics() {
        let mut opt = Sgd::new(0.1);
        opt.begin_step(1);
        let mut p = 0.0;
        opt.update(&mut p, 1.0);
        opt.update(&mut p, 1.0);
    }
}
