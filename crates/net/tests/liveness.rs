//! Phase-ledger liveness tests: a round must terminate as soon as every
//! sampled node is *accounted for* (answered, rejected at intake, or
//! explicitly abstained) — never burn the full `phase_timeout` on a node
//! that already responded badly. Only genuinely silent nodes may cost
//! wall-clock.
//!
//! The timing assertions use a deliberately huge `phase_timeout` (10 s)
//! and require completion in under 25% of it, so they fail loudly
//! against a server that waits out the clock while staying robust on
//! loaded CI runners.

use baffle_core::{ValidationConfig, Validator, Vote};
use baffle_data::{Dataset, SyntheticVision, VisionSpec};
use baffle_fl::{FlConfig, LocalTrainer, WireProfile};
use baffle_net::client::{Client, ClientRole};
use baffle_net::message::{AbstainReason, Message, NodeId};
use baffle_net::server::{Server, ServerConfig};
use baffle_net::transport::{Endpoint, Network};
use baffle_nn::{wire, Mlp, MlpSpec, Model};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_CLIENTS: usize = 3;
/// The deliberately huge per-phase budget the ledger must never burn.
const PHASE_TIMEOUT: Duration = Duration::from_secs(10);
/// The acceptance bar: a fully-accounted round finishes well under 25%
/// of the phase timeout (it actually takes milliseconds).
const EARLY_EXIT_BUDGET: Duration = Duration::from_millis(2_500);

fn tiny_model(seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
}

/// A server sampling every client as contributor and validator each
/// round, with the huge phase timeout the ledger must sidestep.
fn make_server(network: &Network, initial: &Mlp) -> Server {
    let endpoint = network.register(NodeId::SERVER);
    let config = ServerConfig {
        fl: FlConfig::new(NUM_CLIENTS, NUM_CLIENTS),
        validators_per_round: NUM_CLIENTS,
        quorum: 2,
        phase_timeout: PHASE_TIMEOUT,
        server_votes: false,
        seed: 7,
        bootstrap_rounds: 0,
        bootstrap_trusted: Vec::new(),
        wire: WireProfile::lossless(),
    };
    Server::new(
        endpoint,
        config,
        initial.clone(),
        5,
        Validator::new(ValidationConfig::new(3)),
        Dataset::empty(2, 2),
    )
}

/// Scripted actor: replies to train requests with `update`, to validate
/// requests with `on_validate`, exits on shutdown.
fn run_scripted_client(endpoint: Endpoint, update: Vec<f32>, on_validate: impl Fn(&Endpoint, u64)) {
    while let Ok(env) = endpoint.recv() {
        match env.message {
            Message::TrainRequest { round, .. } => {
                endpoint.send(
                    NodeId::SERVER,
                    Message::UpdateSubmission {
                        round,
                        from: endpoint.id(),
                        update: wire::encode_f32(&update),
                    },
                );
            }
            Message::ValidateRequest { round, .. } => on_validate(&endpoint, round),
            Message::Shutdown => break,
            _ => {}
        }
    }
}

fn accept_vote(endpoint: &Endpoint, round: u64) {
    endpoint.send(
        NodeId::SERVER,
        Message::VoteSubmission { round, from: endpoint.id(), vote: Vote::Accept },
    );
}

fn abstain(endpoint: &Endpoint, round: u64, reason: AbstainReason) {
    endpoint.send(NodeId::SERVER, Message::Abstain { round, from: endpoint.id(), reason });
}

/// The ISSUE's acceptance scenario: one contributor submits a
/// wrong-length update; the round must complete in a small fraction of
/// `phase_timeout` because the bad submitter is *accounted for*, not
/// waited on. Fails against a collector that compares `updates.len()`
/// to the sample size.
#[test]
fn wrong_length_update_round_completes_in_fraction_of_timeout() {
    let network = Network::new();
    let initial = tiny_model(1);
    let mut server = make_server(&network, &initial);

    let (round, elapsed) = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let update = if c == 2 {
                vec![0.0f32; initial.num_params() / 2] // wrong length
            } else {
                vec![0.0f32; initial.num_params()]
            };
            scope.spawn(move |_| run_scripted_client(endpoint, update, accept_vote));
        }
        let start = Instant::now();
        let round = server.run_round();
        let elapsed = start.elapsed();
        server.shutdown();
        (round, elapsed)
    })
    .expect("client thread panicked");

    assert!(
        elapsed < EARLY_EXIT_BUDGET,
        "round burned the phase timeout on a rejected update: {elapsed:?}"
    );
    assert_eq!(round.rejected_submissions, 1);
    assert_eq!(round.updates_received, NUM_CLIENTS - 1);
    assert!(round.accepted);
    assert!(round.update_phase < EARLY_EXIT_BUDGET, "update phase: {:?}", round.update_phase);
    assert!(round.vote_phase < EARLY_EXIT_BUDGET, "vote phase: {:?}", round.vote_phase);
}

#[test]
fn all_contributors_rejected_skips_round_without_waiting() {
    let network = Network::new();
    let initial = tiny_model(2);
    let mut server = make_server(&network, &initial);

    let (round, elapsed) = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let wrong = vec![0.0f32; initial.num_params() + 1];
            scope.spawn(move |_| run_scripted_client(endpoint, wrong, accept_vote));
        }
        let start = Instant::now();
        let round = server.run_round();
        let elapsed = start.elapsed();
        server.shutdown();
        (round, elapsed)
    })
    .expect("client thread panicked");

    assert!(elapsed < EARLY_EXIT_BUDGET, "skipped round still waited: {elapsed:?}");
    assert_eq!(round.rejected_submissions, NUM_CLIENTS);
    assert_eq!(round.updates_received, 0);
    assert!(!round.accepted, "a round with no surviving updates is skipped");
    assert_eq!(round.vote_phase, Duration::ZERO, "the vote phase must never start");
}

#[test]
fn abstaining_validator_ends_vote_phase_early() {
    let network = Network::new();
    let initial = tiny_model(3);
    let mut server = make_server(&network, &initial);

    let (round, elapsed) = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let zeros = vec![0.0f32; initial.num_params()];
            scope.spawn(move |_| {
                run_scripted_client(endpoint, zeros, |endpoint, round| {
                    if endpoint.id() == NodeId(2) {
                        abstain(endpoint, round, AbstainReason::HistoryTooShort);
                    } else {
                        accept_vote(endpoint, round);
                    }
                });
            });
        }
        let start = Instant::now();
        let round = server.run_round();
        let elapsed = start.elapsed();
        server.shutdown();
        (round, elapsed)
    })
    .expect("client thread panicked");

    assert!(elapsed < EARLY_EXIT_BUDGET, "round waited on an abstainer: {elapsed:?}");
    assert_eq!(round.abstentions, 1);
    assert_eq!(round.votes_received, NUM_CLIENTS - 1);
    assert_eq!(round.rejected_votes, 0, "an abstention is not an intake violation");
    assert!(round.accepted);
}

/// Every validator abstains: the decision falls back to the paper's
/// implicit-accept semantics (no Reject votes → accept), and the phase
/// exits as soon as all abstentions are in.
#[test]
fn abstain_only_vote_phase_is_an_implicit_accept() {
    let network = Network::new();
    let initial = tiny_model(4);
    let mut server = make_server(&network, &initial);

    let (round, elapsed) = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let zeros = vec![0.0f32; initial.num_params()];
            scope.spawn(move |_| {
                run_scripted_client(endpoint, zeros, |endpoint, round| {
                    abstain(endpoint, round, AbstainReason::NoValidationData);
                });
            });
        }
        let start = Instant::now();
        let round = server.run_round();
        let elapsed = start.elapsed();
        server.shutdown();
        (round, elapsed)
    })
    .expect("client thread panicked");

    assert!(elapsed < EARLY_EXIT_BUDGET, "round waited on abstainers: {elapsed:?}");
    assert_eq!(round.abstentions, NUM_CLIENTS);
    assert_eq!(round.votes_received, 0);
    assert_eq!(round.reject_votes, 0);
    assert!(round.accepted, "abstentions are implicit accepts (footnote 1)");
}

/// An abstention cannot be forged: a spoofed or unsolicited abstain is
/// rejected at intake and must not settle a sampled validator's slot
/// (otherwise a rogue could silence honest voters).
#[test]
fn spoofed_abstention_cannot_settle_an_honest_validator() {
    let network = Network::new();
    let initial = tiny_model(5);
    let mut server = make_server(&network, &initial);

    // Queued before the round starts, so the server sees it first.
    let rogue = network.register(NodeId(9));
    rogue.send(
        NodeId::SERVER,
        Message::Abstain {
            round: 1,
            from: NodeId(0), // claims to be sampled validator 0
            reason: AbstainReason::HistoryTooShort,
        },
    );
    // Train-phase reasons must not leak into the vote ledger either.
    rogue.send(
        NodeId::SERVER,
        Message::Abstain { round: 1, from: NodeId(9), reason: AbstainReason::EmptyShard },
    );

    let round = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let zeros = vec![0.0f32; initial.num_params()];
            scope.spawn(move |_| run_scripted_client(endpoint, zeros, accept_vote));
        }
        let round = server.run_round();
        server.shutdown();
        round
    })
    .expect("client thread panicked");

    assert_eq!(round.abstentions, 0, "no forged abstention may be counted");
    assert_eq!(round.votes_received, NUM_CLIENTS, "client 0's real vote still counts");
    assert!(round.accepted);
}

// ---------------------------------------------------------------------
// Real-client abstention behaviour (the other half of the handshake).
// ---------------------------------------------------------------------

fn spawn_real_client(
    network: &Network,
    id: NodeId,
    data: Dataset,
    template: &Mlp,
) -> impl FnOnce() + Send {
    let endpoint = network.register(id);
    let mut client = Client::new(
        endpoint.outbox(),
        Arc::new(data),
        LocalTrainer::new(1, 0.1, 16),
        Validator::new(ValidationConfig::new(3)),
        ClientRole::Honest,
        5,
        Arc::new(template.clone()),
        WireProfile::lossless(),
        11,
    );
    move || {
        client.run(&endpoint);
    }
}

fn small_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = SyntheticVision::new(&VisionSpec::new(2, 2, 1), &mut rng);
    gen.generate(&mut rng, 30)
}

#[test]
fn real_client_abstains_instead_of_going_silent() {
    let network = Network::new();
    let template = {
        let mut rng = StdRng::seed_from_u64(1);
        Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
    };
    let server = network.register(NodeId::SERVER);
    let run = spawn_real_client(&network, NodeId(0), small_dataset(2), &template);

    crossbeam::thread::scope(|scope| {
        scope.spawn(move |_| run());
        let garbage = Bytes::from_static(&[1, 2, 3]);

        // Undecodable global: previously the client just returned,
        // leaving the server to wait out the whole update phase.
        server.send(NodeId(0), Message::TrainRequest { round: 1, global: garbage.clone() });
        let env = server.recv_timeout(Duration::from_secs(5)).expect("client went silent");
        assert_eq!(
            env.message,
            Message::Abstain {
                round: 1,
                from: NodeId(0),
                reason: AbstainReason::UndecodableGlobal
            }
        );

        // Undecodable candidate: same, for the vote phase.
        server.send(
            NodeId(0),
            Message::ValidateRequest { round: 2, candidate: garbage, history_delta: vec![] },
        );
        let env = server.recv_timeout(Duration::from_secs(5)).expect("client went silent");
        assert_eq!(
            env.message,
            Message::Abstain {
                round: 2,
                from: NodeId(0),
                reason: AbstainReason::UndecodableCandidate
            }
        );

        // Decodable candidate but an empty history cache: the VALIDATE
        // function cannot run, so the client abstains explicitly.
        let candidate = Bytes::from(wire::encode_f32(&template.params()));
        server.send(
            NodeId(0),
            Message::ValidateRequest { round: 3, candidate, history_delta: vec![] },
        );
        let env = server.recv_timeout(Duration::from_secs(5)).expect("client went silent");
        assert_eq!(
            env.message,
            Message::Abstain { round: 3, from: NodeId(0), reason: AbstainReason::HistoryTooShort }
        );

        server.send(NodeId(0), Message::Shutdown);
    })
    .expect("client thread panicked");
}

#[test]
fn real_client_with_empty_shard_abstains_from_training() {
    let network = Network::new();
    let template = {
        let mut rng = StdRng::seed_from_u64(1);
        Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
    };
    let server = network.register(NodeId::SERVER);
    let run = spawn_real_client(&network, NodeId(0), Dataset::empty(2, 2), &template);

    crossbeam::thread::scope(|scope| {
        scope.spawn(move |_| run());
        let global = Bytes::from(wire::encode_f32(&template.params()));
        server.send(NodeId(0), Message::TrainRequest { round: 1, global });
        let env = server.recv_timeout(Duration::from_secs(5)).expect("client went silent");
        assert_eq!(
            env.message,
            Message::Abstain { round: 1, from: NodeId(0), reason: AbstainReason::EmptyShard }
        );
        server.send(NodeId(0), Message::Shutdown);
    })
    .expect("client thread panicked");
}

/// End-to-end: real server, real clients. The validators' history caches
/// are empty in round 1, so every validator abstains — and the vote
/// phase must end early instead of waiting out the huge timeout.
#[test]
fn e2e_abstaining_validators_do_not_stall_the_round() {
    let network = Network::new();
    let template = {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
    };
    let mut server = make_server(&network, &template);

    let (round, elapsed) = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let run = spawn_real_client(
                &network,
                NodeId(c as u32),
                small_dataset(10 + c as u64),
                &template,
            );
            scope.spawn(move |_| run());
        }
        let start = Instant::now();
        let round = server.run_round();
        let elapsed = start.elapsed();
        server.shutdown();
        (round, elapsed)
    })
    .expect("client thread panicked");

    assert!(elapsed < EARLY_EXIT_BUDGET, "abstaining validators stalled the round: {elapsed:?}");
    assert_eq!(round.updates_received, NUM_CLIENTS);
    // Round 1 ships only the initial model, far below the VALIDATE
    // minimum — every validator abstains with HistoryTooShort.
    assert_eq!(round.abstentions, NUM_CLIENTS);
    assert_eq!(round.votes_received, 0);
    assert!(round.accepted, "abstentions are implicit accepts");
    assert!(!round.quorum_clamped);
}
