//! Chaos soak suite: the full deployment (clients multiplexed on the
//! event-driven scheduler) under combined transport faults — i.i.d.
//! drop, delay+jitter, reordering, duplication, payload corruption —
//! plus scripted crash/restart and partition events.
//!
//! The standing invariants these runs must uphold, per DESIGN.md §14:
//!
//! - the server completes every configured round (faults cost wall-clock
//!   and participation, never liveness);
//! - phase-ledger counts stay bounded by the sampled sets;
//! - **zero** intake rejections: every fault an honest deployment
//!   suffers is booked as loss, corruption or duplication — never as
//!   sender misbehaviour;
//! - no client ever ends up holding a gapped history window (corrupted
//!   or lost deltas are repaired by truncation + acknowledged re-ship);
//! - with an attacker in the population, poisoned rounds are still
//!   rejected — the defense survives a faulty wire.
//!
//! The failover scenario extends the suite to the durability layer
//! (DESIGN.md §19): a scripted primary crash mid-round with hot-standby
//! takeover must uphold every invariant above, and the promoted
//! standby's state must be byte-identical to the primary's pre-crash
//! checkpoint.

use baffle::net::deployment::{Deployment, DeploymentConfig, DeploymentOutcome};
use baffle::net::fault::{FaultEvent, FaultPlan, LinkPolicy};
use baffle::net::message::NodeId;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Runs `f` and, on panic, prints the seed and the full fault-plan
/// summary before resuming — a chaos failure reproduces from the log
/// alone, without reverse-engineering the plan from the seed.
fn with_plan_context<T>(seed: u64, plan: &FaultPlan, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => value,
        Err(payload) => {
            eprintln!("chaos failure under seed {seed}; {}", plan.summary());
            resume_unwind(payload);
        }
    }
}

/// A per-test scratch directory for durability state, unique per
/// process so parallel test binaries never collide.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("baffle-chaos-{}-{}", tag, std::process::id()))
}

/// Every probabilistic fault at once, plus one crash/restart and one
/// round-long partition. Node 3 crashes at round 3 and rejoins with an
/// empty history cache at round 5; node 5 is unreachable during round 4.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::uniform(
        LinkPolicy::lossless()
            .with_drop(0.03)
            .with_delay(Duration::from_millis(1), Duration::from_millis(2))
            .with_duplicate(0.05)
            .with_reorder(0.08, Duration::from_millis(4))
            .with_corrupt(0.03),
        seed ^ 0xC4A0_5EED,
    )
    .event(FaultEvent::Crash { node: NodeId(3), at_round: 3, restart_round: Some(5) })
    .event(FaultEvent::Partition { node: NodeId(5), rounds: 4..=4 })
}

/// An all-honest deployment under the chaos plan. The short phase
/// timeout keeps lost-message rounds cheap; everything else matches the
/// stock small deployment.
fn chaos_config(seed: u64) -> DeploymentConfig {
    let mut config = DeploymentConfig::small(seed);
    config.malicious_clients = 0;
    config.rounds = 7;
    config.phase_timeout = Duration::from_millis(1200);
    config.faults = Some(chaos_plan(seed));
    config
}

fn assert_invariants(seed: u64, config: &DeploymentConfig, outcome: &DeploymentOutcome) {
    // Liveness: every round completes, in order.
    assert_eq!(outcome.rounds.len(), config.rounds as usize, "seed {seed}: rounds missing");
    for (i, r) in outcome.rounds.iter().enumerate() {
        assert_eq!(r.round, i as u64 + 1, "seed {seed}: round sequence gapped");
        assert!(!r.transport_lost, "seed {seed}: the in-process transport never dies");

        // Ledger bounds: nothing is ever counted twice, so each phase's
        // tallies fit inside its sampled set.
        assert!(
            r.updates_received <= config.clients_per_round,
            "seed {seed} round {}: {} updates from {} contributors",
            r.round,
            r.updates_received,
            config.clients_per_round,
        );
        assert!(
            r.votes_received <= config.validators_per_round,
            "seed {seed} round {}: {} votes from {} validators",
            r.round,
            r.votes_received,
            config.validators_per_round,
        );
        assert!(
            r.abstentions + r.votes_received
                <= config.clients_per_round + config.validators_per_round,
            "seed {seed} round {}: ledger over-counted",
            r.round,
        );

        // The core taxonomy invariant: an all-honest deployment suffers
        // drops, corruption and duplication — but never an intake
        // rejection. An honest node must not be booked as misbehaving
        // because the network chewed its message.
        assert_eq!(
            r.rejected_submissions, 0,
            "seed {seed} round {}: honest contributor booked as rejected",
            r.round
        );
        assert_eq!(
            r.rejected_votes, 0,
            "seed {seed} round {}: honest validator booked as rejected",
            r.round
        );
    }

    // Every client incarnation — including the crashed one and its
    // restarted replacement — exits holding a contiguous history window.
    assert_eq!(
        outcome.client_reports.len(),
        config.num_clients + 1,
        "seed {seed}: one report per incarnation (8 clients + 1 restart)"
    );
    let crashed = outcome.client_reports.iter().filter(|r| r.id == NodeId(3)).count();
    assert_eq!(crashed, 2, "seed {seed}: node 3 must report twice (crash + restart)");
    for report in &outcome.client_reports {
        assert!(
            report.window_contiguous,
            "seed {seed}: client {:?} exited with a gapped history window: {report:?}",
            report.id
        );
    }
}

/// The main soak: three fixed seeds, all faults at once. Any invariant
/// violation names its seed so a failure reproduces deterministically.
#[test]
fn soak_all_faults_uphold_invariants_across_seeds() {
    let mut total_dropped = 0u64;
    let mut total_duplicated = 0u64;
    let mut total_corrupted = 0u64;
    for seed in [5u64, 6, 7] {
        let config = chaos_config(seed);
        let outcome = with_plan_context(seed, &chaos_plan(seed), || {
            let outcome = Deployment::run(config.clone());
            assert_invariants(seed, &config, &outcome);
            outcome
        });
        total_dropped += outcome.messages_dropped;
        total_duplicated += outcome.messages_duplicated;
        total_corrupted += outcome.messages_corrupted;
    }
    // The chaos must actually have happened — a plan that injects
    // nothing would make the invariants above vacuous.
    assert!(total_dropped > 0, "drop faults never fired");
    assert!(total_duplicated > 0, "duplication faults never fired");
    assert!(total_corrupted > 0, "corruption faults never fired");
}

/// The defense keeps working on a faulty wire: with an attacker in the
/// population and the transport delaying, reordering and duplicating
/// (but not losing) messages, poisoned rounds are still rejected and the
/// backdoor does not survive. Mirrors the lossless
/// `attacker_rounds_are_rejected_once_history_matures` test.
#[test]
fn poisoned_rounds_are_still_rejected_under_chaos() {
    let seed = 2u64;
    let mut config = DeploymentConfig::small(seed);
    config.rounds = 14;
    let plan = FaultPlan::uniform(
        LinkPolicy::lossless()
            .with_delay(Duration::from_millis(1), Duration::from_millis(2))
            .with_duplicate(0.05)
            .with_reorder(0.1, Duration::from_millis(4)),
        0xFEED,
    );
    config.faults = Some(plan.clone());
    with_plan_context(seed, &plan, || {
        let outcome = Deployment::run(config.clone());
        assert_eq!(outcome.rounds.len(), 14, "seed {seed}: rounds missing");
        let rejected = outcome.rounds.iter().filter(|r| !r.accepted).count();
        assert!(rejected >= 1, "seed {seed}: no poisoned round was rejected under chaos");
        assert!(
            outcome.final_backdoor_accuracy < 0.5,
            "seed {seed}: backdoor persisted under chaos: {}",
            outcome.final_backdoor_accuracy
        );
        // No message was ever dropped or damaged, so rejections can only
        // be the defense's verdicts — and the intake must stay clean.
        assert_eq!(outcome.messages_dropped, 0, "seed {seed}: a lossless link loses nothing");
        assert_eq!(outcome.messages_corrupted, 0, "seed {seed}: nothing corrupts");
        for r in &outcome.rounds {
            assert_eq!(r.rejected_submissions, 0, "seed {seed} round {}", r.round);
            assert_eq!(r.rejected_votes, 0, "seed {seed} round {}", r.round);
        }
    });
}

/// A crash without restart leaves the node's route gone for good: every
/// later send to it — protocol traffic while it is still sampled, the
/// final shutdown notice — is booked as **unroutable**, never as link
/// loss, so loss assertions on a lossless plan stay exact.
#[test]
fn crash_without_restart_books_unroutable_sends_not_drops() {
    let seed = 12u64;
    let mut config = DeploymentConfig::small(seed);
    config.malicious_clients = 0;
    config.rounds = 5;
    config.phase_timeout = Duration::from_millis(1200);
    let plan = FaultPlan::lossless(seed).event(FaultEvent::Crash {
        node: NodeId(2),
        at_round: 2,
        restart_round: None,
    });
    config.faults = Some(plan.clone());
    with_plan_context(seed, &plan, || {
        let outcome = Deployment::run(config.clone());
        assert_eq!(
            outcome.rounds.len(),
            5,
            "seed {seed}: a crashed client must not stall the server"
        );
        // At minimum the shutdown notice to the dead node has no route.
        assert!(outcome.messages_unroutable > 0, "seed {seed}: no-route sends must be booked");
        assert_eq!(outcome.messages_dropped, 0, "seed {seed}: a lossless link loses nothing");
        assert_eq!(outcome.messages_corrupted, 0, "seed {seed}: nothing corrupts");
        // The crashed incarnation still exits with a (banked) report,
        // and nothing doubles it up.
        assert_eq!(outcome.client_reports.len(), config.num_clients, "seed {seed}");
        let crashed = outcome.client_reports.iter().filter(|r| r.id == NodeId(2)).count();
        assert_eq!(crashed, 1, "seed {seed}: a never-restarted node reports exactly once");
    });
}

/// A total blackout towards one node is expressible (`drop_prob = 1.0`,
/// the closed-interval fix) and costs participation, not liveness.
#[test]
fn total_blackout_to_one_node_only_costs_participation() {
    use baffle::net::fault::LinkSelector;
    let seed = 9u64;
    let mut config = DeploymentConfig::small(seed);
    config.malicious_clients = 0;
    config.rounds = 5;
    config.phase_timeout = Duration::from_millis(1200);
    let plan = FaultPlan::lossless(seed)
        .link(LinkSelector::to(NodeId(6)), LinkPolicy::lossless().with_drop(1.0));
    config.faults = Some(plan.clone());
    with_plan_context(seed, &plan, || {
        let outcome = Deployment::run(config.clone());
        assert_eq!(
            outcome.rounds.len(),
            5,
            "seed {seed}: a blackholed client must not stall the server"
        );
        for r in &outcome.rounds {
            assert_eq!(r.rejected_submissions, 0, "seed {seed} round {}", r.round);
            assert_eq!(r.rejected_votes, 0, "seed {seed} round {}", r.round);
        }
        // Node 6 heard no protocol traffic at all (only the fault-exempt
        // shutdown control message, which lets its actor exit cleanly).
        let report = outcome.client_reports.iter().find(|r| r.id == NodeId(6)).expect("report");
        assert_eq!(
            report.rounds_participated, 0,
            "seed {seed}: a blackholed node cannot participate"
        );
        assert!(report.window_contiguous, "seed {seed}: gapped window on node 6");
    });
}

/// The durability tentpole end-to-end, under the full chaos plan: the
/// primary crashes **mid-round** — the torn round's `RoundStart` is
/// journaled and the round actually runs, but no outcome record ever
/// lands — and the hot standby that has been tailing the WAL takes
/// over. Every standing invariant must survive the failover: all seven
/// rounds complete in sequence (the torn round re-run by the new
/// server), zero honest-client rejections even though torn-round
/// traffic is still in flight during the re-ask, and no client exits
/// with a gapped history window. The recovery criterion is exact: the
/// promoted standby's checkpoint must be byte-identical to the one the
/// primary cut immediately before the torn round.
#[test]
fn primary_crash_mid_round_fails_over_to_hot_standby() {
    for seed in [5u64, 6, 7] {
        let config = chaos_config(seed);
        let plan = chaos_plan(seed);
        let dir = wal_dir(&format!("failover-{seed}"));
        let report = with_plan_context(seed, &plan, || {
            Deployment::build(config.clone()).run_with_failover(&dir, 4)
        });
        let _ = std::fs::remove_dir_all(&dir);
        assert_invariants(seed, &config, &report.outcome);
        assert_eq!(
            report.recovery_info.torn_round,
            Some(4),
            "seed {seed}: the torn round must be detected from the log"
        );
        assert_eq!(report.torn_round.round, 4, "seed {seed}: the doomed primary ran round 4");
        assert_eq!(
            report.recovery_info.checkpoint_round, 0,
            "seed {seed}: the standby restored from the launch checkpoint"
        );
        assert_eq!(
            report.recovery_info.replayed, 3,
            "seed {seed}: three journaled outcomes replayed on top of it"
        );
        assert_eq!(
            report.promoted_checkpoint, report.pre_crash_checkpoint,
            "seed {seed}: promoted standby must match the pre-crash state bit-for-bit"
        );
        assert!(
            report.recovery.is_some(),
            "seed {seed}: no round was accepted after the takeover"
        );
    }
}
