//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the per-round cost of each BaFFLe building block
//! at the scales used by the experiment harness, so regressions in the
//! substrates show up before they distort experiment runtimes.

use baffle_data::{Dataset, SyntheticVision, VisionSpec};
use baffle_nn::{Mlp, MlpSpec, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Heap-traffic metering for the training hot path.
///
/// Gated behind the `alloc-probe` feature because installing it swaps
/// the **process-wide** allocator: every allocation made by any thread
/// pays two relaxed atomic increments. That is noise-level for the
/// steady-state-zero assertion this exists to support, but it is not
/// something the default benchmark build should carry.
#[cfg(feature = "alloc-probe")]
pub mod alloc_probe {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// [`System`] with allocation counting. Deallocations are not
    /// counted: the probe's question is "does the steady state *request*
    /// heap memory", and frees without matching allocs cannot occur.
    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the counters never influence
    // the pointers returned.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A grow-in-place is still a heap request the steady state
            // should not be making.
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Monotonic counter snapshot; subtract two to meter a region.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct AllocStats {
        /// Allocation requests (incl. zeroed allocs and reallocs).
        pub allocs: u64,
        /// Bytes requested across those allocations.
        pub bytes: u64,
    }

    /// Current process-wide counters.
    pub fn stats() -> AllocStats {
        AllocStats { allocs: ALLOCS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
    }

    /// Runs `f` and reports the allocations made during the call — by
    /// *any* thread, so pool fan-outs (task boxing) are charged to the
    /// region that triggered them.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
        let before = stats();
        let out = f();
        let after = stats();
        (
            out,
            AllocStats { allocs: after.allocs - before.allocs, bytes: after.bytes - before.bytes },
        )
    }
}

/// A deterministic problem + model fixture shared by the benches.
pub struct Fixture {
    /// The synthetic problem instance.
    pub generator: SyntheticVision,
    /// A labelled dataset drawn from it.
    pub data: Dataset,
    /// A model trained for a few epochs on `data`.
    pub model: Mlp,
    /// A short trajectory of model snapshots (for history-based benches).
    pub history: Vec<Mlp>,
}

/// Builds the standard CIFAR-like bench fixture: 32-d inputs, 10 classes,
/// `samples` data points and a history of `history_len` model snapshots.
pub fn cifar_fixture(samples: usize, history_len: usize, seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = VisionSpec::cifar_like();
    let generator = SyntheticVision::new(&spec, &mut rng);
    let data = generator.generate(&mut rng, samples);
    let mut model = Mlp::new(&MlpSpec::new(spec.input_dim(), &[64], spec.num_classes()), &mut rng);
    let mut opt = Sgd::new(0.1).with_momentum(0.9);
    let mut history = Vec::with_capacity(history_len);
    for _ in 0..history_len {
        model.train_epoch(data.features(), data.labels(), 32, &mut opt, &mut rng);
        history.push(model.clone());
    }
    Fixture { generator, data, model, history }
}

/// Deterministic pseudo-random parameter vector of the given length.
pub fn params(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    baffle_tensor::rng::normal_vec(&mut rng, len, 0.0, 0.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_nn::Model;

    #[test]
    fn fixture_is_deterministic() {
        let a = cifar_fixture(100, 3, 9);
        let b = cifar_fixture(100, 3, 9);
        assert_eq!(a.model.params(), b.model.params());
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn fixture_history_has_requested_length() {
        let f = cifar_fixture(50, 5, 1);
        assert_eq!(f.history.len(), 5);
        assert_eq!(f.data.len(), 50);
    }

    #[test]
    fn params_are_reproducible() {
        assert_eq!(params(16, 3), params(16, 3));
        assert_eq!(params(16, 3).len(), 16);
    }
}
