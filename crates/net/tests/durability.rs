//! Durability tests: the write-ahead log, mid-round crash recovery and
//! hot-standby failover (DESIGN.md §19).
//!
//! - **Record integrity**: every WAL record survives a roundtrip; any
//!   single-bit flip is caught by the checksum, and a truncated tail
//!   reads as *incomplete* (wait for more bytes), never as garbage.
//! - **Tailing**: a torn append is left unconsumed until the rest
//!   lands; a compaction (the log shrinking) is reported so the tailer
//!   reloads the checkpoint instead of replaying a stale tail.
//! - **Replay determinism** — the CI gate: a run interrupted and
//!   recovered from `checkpoint + WAL tail` replays the uninterrupted
//!   run's `ServerRound`s exactly and ends in a **byte-identical**
//!   checkpoint.
//! - **Torn rounds**: a crash after `RoundStart` but before the outcome
//!   record recovers to the pre-round state; the re-ask of the same
//!   round is duplicate-safe (fresh ledger, identical re-shipped
//!   history deltas, zero rejections).
//! - **Streamed standby**: a standby fed the log over a socket ends in
//!   the same byte-identical state as one tailing the file.
//! - **Checkpoint v2**: the whole-body checksum catches any damage, and
//!   pre-checksum v1 blobs are refused by name.

use baffle_core::{ValidationConfig, Validator, Vote};
use baffle_data::Dataset;
use baffle_fl::{FlConfig, WireProfile};
use baffle_net::deployment::{Deployment, DeploymentConfig, DeploymentParts};
use baffle_net::message::{Message, NodeId};
use baffle_net::server::{Server, ServerConfig, ServerRound};
use baffle_net::transport::{Endpoint, Network};
use baffle_net::wal::{
    decode_record, encode_record, recover, DurableServer, RecoveryInfo, RestoreKit, Standby,
    WalRecord, WalTailer, WalWriter, CHECKPOINT_FILE, WAL_FILE,
};
use baffle_nn::{wire, Mlp, MlpSpec, Model};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

const NUM_CLIENTS: usize = 3;

fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("baffle-durability-{}-{}", tag, std::process::id()))
}

fn tiny_model(seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
}

fn validator() -> Validator {
    Validator::new(ValidationConfig::new(3))
}

/// A server config sampling every client as contributor and validator
/// each round.
fn scripted_config(seed: u64, timeout_ms: u64) -> ServerConfig {
    ServerConfig {
        fl: FlConfig::new(NUM_CLIENTS, NUM_CLIENTS),
        validators_per_round: NUM_CLIENTS,
        quorum: 2,
        phase_timeout: Duration::from_millis(timeout_ms),
        server_votes: false,
        seed,
        bootstrap_rounds: 0,
        bootstrap_trusted: Vec::new(),
        wire: WireProfile::lossless(),
    }
}

fn scripted_server(network: &Network, config: &ServerConfig, initial: &Mlp) -> Server {
    Server::new(
        network.register(NodeId::SERVER),
        config.clone(),
        initial.clone(),
        5,
        validator(),
        Dataset::empty(2, 2),
    )
}

fn kit_for(config: &ServerConfig, initial: &Mlp) -> RestoreKit {
    RestoreKit {
        config: config.clone(),
        template: initial.clone(),
        history_window: 5,
        validator: validator(),
        server_data: Dataset::empty(2, 2),
    }
}

/// Scripted client: zero update on every train request, records the
/// history-delta ids of every validate request into `deltas`, votes
/// accept.
fn run_recording_client(
    endpoint: Endpoint,
    n_params: usize,
    deltas: &Mutex<Vec<(NodeId, u64, Vec<u64>)>>,
) {
    while let Ok(env) = endpoint.recv() {
        match env.message {
            Message::TrainRequest { round, .. } => {
                endpoint.send(
                    NodeId::SERVER,
                    Message::UpdateSubmission {
                        round,
                        from: endpoint.id(),
                        update: wire::encode_f32(&vec![0.0f32; n_params]),
                    },
                );
            }
            Message::ValidateRequest { round, history_delta, .. } => {
                let ids: Vec<u64> = history_delta.iter().map(|e| e.id).collect();
                deltas.lock().unwrap().push((endpoint.id(), round, ids));
                endpoint.send(
                    NodeId::SERVER,
                    Message::VoteSubmission { round, from: endpoint.id(), vote: Vote::Accept },
                );
            }
            Message::Shutdown => break,
            _ => {}
        }
    }
}

#[test]
fn records_roundtrip_and_damage_is_detected() {
    let records = [
        WalRecord::RoundStart { round: 1, rng_stream: 0xDEAD_BEEF },
        WalRecord::RoundAccepted {
            round: 2,
            rng_stream: 42,
            model: wire::encode_f32(&[1.0, -2.5, 3.25]),
            sync_commits: vec![(0, 5), (7, 2)],
            sync_resets: vec![3],
        },
        WalRecord::RoundRejected {
            round: 3,
            rng_stream: 7,
            sync_commits: Vec::new(),
            sync_resets: vec![9],
        },
    ];
    for record in &records {
        let bytes = encode_record(record);
        let (decoded, consumed) = decode_record(&bytes).expect("decode").expect("complete");
        assert_eq!(&decoded, record);
        assert_eq!(consumed, bytes.len());
        // Truncation anywhere reads as incomplete — never as garbage,
        // so a torn append is retried rather than condemned.
        for cut in 0..bytes.len() {
            let prefix = decode_record(&bytes[..cut]).expect("a prefix is incomplete, not corrupt");
            assert!(prefix.is_none(), "cut at {cut} must read as incomplete");
        }
        // Any flip in the checksum word or the body trips validation.
        for at in 12..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[at] ^= 0x01;
            assert!(decode_record(&bad).is_err(), "flip at {at} must not decode");
        }
        // Damaged magic and version words are refused outright.
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(decode_record(&bad_magic).is_err());
        let mut bad_version = bytes.to_vec();
        bad_version[4] ^= 0xFF;
        assert!(decode_record(&bad_version).is_err());
    }
}

#[test]
fn tailer_tolerates_torn_appends_and_detects_compaction() {
    let dir = test_dir("tailer");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(WAL_FILE);
    let mut tailer = WalTailer::new(&path);

    // No file yet: reads as empty (the writer may not have started).
    let poll = tailer.poll().expect("poll missing file");
    assert!(poll.records.is_empty() && !poll.truncated);

    let mut writer = WalWriter::create(&path).expect("create log");
    let a = WalRecord::RoundStart { round: 1, rng_stream: 11 };
    writer.append(&a).expect("append");
    let poll = tailer.poll().expect("poll");
    assert_eq!(poll.records, vec![a]);

    // A torn append: half a record lands, then the rest. The tailer
    // must neither surface nor skip it.
    let b = WalRecord::RoundRejected {
        round: 1,
        rng_stream: 11,
        sync_commits: vec![(2, 1)],
        sync_resets: Vec::new(),
    };
    let bytes = encode_record(&b);
    let half = bytes.len() / 2;
    let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
    file.write_all(&bytes[..half]).unwrap();
    file.sync_data().unwrap();
    let poll = tailer.poll().expect("poll with torn tail");
    assert!(poll.records.is_empty() && !poll.truncated, "a torn append must not surface");
    file.write_all(&bytes[half..]).unwrap();
    file.sync_data().unwrap();
    let poll = tailer.poll().expect("poll completed tail");
    assert_eq!(poll.records, vec![b]);

    // Compaction: the writer truncates the log. The tailer reports it
    // (so its owner reloads the checkpoint) and rewinds; the next poll
    // reads the fresh log from the start.
    let mut writer = WalWriter::create(&path).expect("truncate log");
    let c = WalRecord::RoundStart { round: 2, rng_stream: 22 };
    writer.append(&c).expect("append after compaction");
    let poll = tailer.poll().expect("poll after truncation");
    assert!(poll.truncated && poll.records.is_empty(), "truncation must be reported");
    let poll = tailer.poll().expect("re-poll");
    assert_eq!(poll.records, vec![c]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Zeroes the wall-clock fields so two runs can be compared bit-for-bit
/// on everything the protocol actually decided.
fn normalized(r: &ServerRound) -> ServerRound {
    ServerRound { update_phase: Duration::ZERO, vote_phase: Duration::ZERO, ..r.clone() }
}

/// Drives a built deployment by hand with the server under the
/// durability protocol. If `interrupt_before` is set, the server is
/// dropped right before that round and recovered from
/// `checkpoint + WAL tail` — the clients keep running across the swap,
/// as they would across a real server restart.
fn drive_durable(
    parts: DeploymentParts,
    dir: &Path,
    compact_every: u64,
    interrupt_before: Option<u64>,
) -> (Vec<ServerRound>, Bytes, Option<RecoveryInfo>) {
    let total = parts.config.rounds;
    let kit = parts.restore_kit();
    let clients: Vec<_> = (0..parts.specs.len()).map(|i| parts.client_actor(i)).collect();
    let mut durable =
        DurableServer::create(dir, compact_every, parts.server).expect("create durability dir");
    let mut info = None;
    let (rounds, blob) = crossbeam::thread::scope(|scope| {
        for (endpoint, mut client) in clients {
            scope.spawn(move |_| {
                client.run(&endpoint);
            });
        }
        let mut rounds = Vec::new();
        for r in 1..=total {
            if interrupt_before == Some(r) {
                // The primary dies between rounds; its endpoint survives
                // as the route and the recovered server adopts it.
                let endpoint = durable.into_inner().into_endpoint();
                let (server, ri) = recover(dir, endpoint, kit.clone()).expect("recover");
                info = Some(ri);
                durable = DurableServer::create(dir, compact_every, server)
                    .expect("takeover compaction");
            }
            rounds.push(durable.run_round().expect("journal round"));
        }
        let server = durable.into_inner();
        let blob = server.checkpoint();
        server.shutdown();
        (rounds, blob)
    })
    .expect("client actor panicked");
    (rounds, blob, info)
}

/// The CI determinism gate: recovery from the latest compacted
/// checkpoint plus the WAL tail replays the uninterrupted run's rounds
/// exactly and the recovered server's next checkpoint is
/// **byte-identical** to the uninterrupted one.
#[test]
fn replayed_server_produces_byte_identical_next_checkpoint() {
    let config = DeploymentConfig::small(11);
    let dir_a = test_dir("replay-a");
    let dir_b = test_dir("replay-b");
    let (rounds_a, blob_a, info_a) =
        drive_durable(Deployment::build(config.clone()), &dir_a, 0, None);
    let (rounds_b, blob_b, info_b) = drive_durable(Deployment::build(config), &dir_b, 2, Some(4));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    assert!(info_a.is_none(), "the uninterrupted run never recovers");
    // Compaction ran after round 2, so recovery loads that checkpoint
    // and replays exactly round 3 from the tail. Nothing was torn.
    assert_eq!(
        info_b,
        Some(RecoveryInfo { checkpoint_round: 2, replayed: 1, torn_round: None })
    );
    let a: Vec<ServerRound> = rounds_a.iter().map(normalized).collect();
    let b: Vec<ServerRound> = rounds_b.iter().map(normalized).collect();
    assert_eq!(a, b, "a recovered server must replay the uninterrupted run exactly");
    assert_eq!(
        blob_a, blob_b,
        "replay from checkpoint + WAL tail must reproduce the state byte-for-byte"
    );
}

/// A crash *inside* a round — `RoundStart` journaled, outcome never —
/// recovers to the pre-round state and re-runs the round. The re-ask is
/// duplicate-safe: clients answer the same round twice, the re-shipped
/// history delta is identical to the torn ask's, and nobody is booked
/// as rejected.
#[test]
fn torn_round_is_re_asked_and_duplicate_safe() {
    let dir = test_dir("torn");
    let network = Network::new();
    let initial = tiny_model(7);
    let config = scripted_config(7, 2_000);
    let server = scripted_server(&network, &config, &initial);
    let kit = kit_for(&config, &initial);
    let deltas = Mutex::new(Vec::new());

    let (rounds, info) = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let n_params = initial.num_params();
            let deltas = &deltas;
            scope.spawn(move |_| run_recording_client(endpoint, n_params, deltas));
        }
        let mut durable = DurableServer::create(&dir, 0, server).expect("create durability dir");
        let mut rounds = Vec::new();
        for r in 1..=2 {
            network.begin_round(r);
            rounds.push(durable.run_round().expect("journal round"));
        }
        // Round 3 runs to completion, but its outcome record never
        // lands — the process "dies" holding an undurable decision.
        network.begin_round(3);
        let torn = durable.run_round_torn().expect("journal torn start");
        assert_eq!(torn.round, 3);
        assert_eq!(torn.votes_received, NUM_CLIENTS, "the doomed round really ran");

        let endpoint = durable.into_inner().into_endpoint();
        let (mut server, info) = recover(&dir, endpoint, kit).expect("recover");
        assert_eq!(server.round(), 2, "recovered to the state entering the torn round");
        // Re-ask: same round number, fresh ledger, clients answer again.
        rounds.push(server.run_round());
        network.begin_round(4);
        rounds.push(server.run_round());
        server.shutdown();
        (rounds, info)
    })
    .expect("client thread panicked");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(info, RecoveryInfo { checkpoint_round: 0, replayed: 2, torn_round: Some(3) });
    let round_numbers: Vec<u64> = rounds.iter().map(|r| r.round).collect();
    assert_eq!(round_numbers, vec![1, 2, 3, 4], "the torn round is re-run under its own number");
    for r in &rounds {
        assert!(r.accepted, "round {}: all-honest rounds accept", r.round);
        assert_eq!(r.votes_received, NUM_CLIENTS, "round {}", r.round);
        // The duplicate-safety criterion: straggling or repeated
        // submissions from the torn ask are never booked as rejections.
        assert_eq!(r.rejected_submissions, 0, "round {}", r.round);
        assert_eq!(r.rejected_votes, 0, "round {}", r.round);
    }
    // Both asks of round 3 shipped the identical history delta: the
    // recovered sync state equals the pre-round state, so the re-ask
    // re-ships exactly what the torn ask shipped.
    let log = deltas.into_inner().unwrap();
    for c in 0..NUM_CLIENTS as u32 {
        let round3: Vec<Vec<u64>> = log
            .iter()
            .filter(|(id, r, _)| *id == NodeId(c) && *r == 3)
            .map(|(_, _, ids)| ids.clone())
            .collect();
        assert_eq!(
            round3,
            vec![vec![2], vec![2]],
            "client {c}: torn ask and re-ask must ship the same delta"
        );
    }
}

/// A standby fed the primary's log **over a socket** — instead of
/// tailing the shared file — ends in the same byte-identical state.
#[test]
fn standby_ingests_wal_over_a_socket_stream() {
    let dir = test_dir("stream-src");
    let dir2 = test_dir("stream-dst");
    let network = Network::new();
    let initial = tiny_model(7);
    let config = scripted_config(7, 2_000);
    let server = scripted_server(&network, &config, &initial);
    let kit = kit_for(&config, &initial);
    let deltas = Mutex::new(Vec::new());

    let final_blob = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let n_params = initial.num_params();
            let deltas = &deltas;
            scope.spawn(move |_| run_recording_client(endpoint, n_params, deltas));
        }
        let mut durable = DurableServer::create(&dir, 0, server).expect("create durability dir");
        for r in 1..=3 {
            network.begin_round(r);
            durable.run_round().expect("journal round");
        }
        let server = durable.into_inner();
        let blob = server.checkpoint();
        server.shutdown();
        blob
    })
    .expect("client thread panicked");

    // The standby starts from the checkpoint as shipped (cut at launch —
    // the primary never compacted) and receives the log over loopback.
    std::fs::create_dir_all(&dir2).unwrap();
    std::fs::copy(dir.join(CHECKPOINT_FILE), dir2.join(CHECKPOINT_FILE)).unwrap();
    let mut standby = Standby::attach(&dir2, kit).expect("attach standby");
    assert_eq!(standby.round(), 0, "the shipped checkpoint predates every round");

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let writer = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        sock.write_all(&wal_bytes).unwrap();
    });
    let stream = TcpStream::connect(addr).unwrap();
    let applied = standby.ingest_stream(stream).expect("ingest log over socket");
    writer.join().unwrap();

    assert_eq!(applied, 6, "three round starts + three outcomes");
    assert_eq!(standby.round(), 3);
    assert_eq!(standby.torn_round(), None);
    let (server, info) = standby.promote(Network::new().register(NodeId::SERVER));
    assert_eq!(info.replayed, 3);
    assert_eq!(
        server.checkpoint(),
        final_blob,
        "a socket-fed standby must reproduce the primary's state byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// The checkpoint's whole-body checksum catches any damage, and the
/// unchecksummed v1 layout is refused with an error naming the version
/// instead of being misparsed.
#[test]
fn checkpoint_v2_rejects_damage_and_v1_blobs() {
    let network = Network::new();
    let initial = tiny_model(3);
    let config = scripted_config(7, 500);
    let server = scripted_server(&network, &config, &initial);
    let blob = server.checkpoint();
    let attempt = |id: u32, blob: &[u8]| {
        Server::restore(
            network.register(NodeId(id)),
            config.clone(),
            initial.clone(),
            5,
            validator(),
            Dataset::empty(2, 2),
            blob,
        )
    };

    assert!(attempt(90, &blob).is_ok());
    // Any body flip trips the whole-blob checksum — including in fields
    // the v1 layout would have parsed without complaint.
    for (i, at) in [12usize, 16, blob.len() / 2, blob.len() - 1].into_iter().enumerate() {
        let mut bad = blob.to_vec();
        bad[at] ^= 0x01;
        let err =
            attempt(91 + i as u32, &bad).expect_err("damaged blob must not restore").to_string();
        assert!(err.contains("checksum"), "flip at {at}: {err}");
    }
    // A v1 blob (no checksum word) is refused by name.
    let mut v1 = Vec::new();
    v1.extend_from_slice(&blob[..4]);
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&blob[12..]);
    let err = attempt(99, &v1).expect_err("v1 blob must not restore").to_string();
    assert!(err.contains("version 1"), "{err}");
}
