//! In-process transport with deterministic fault injection.
//!
//! Each node owns an unbounded receiving channel; a shared [`Network`]
//! handle routes [`Envelope`]s to their destination. A seeded
//! [`FaultPlan`] decides, per message, whether to drop, delay, reorder,
//! duplicate or corrupt it, and round-scoped scripted events partition
//! nodes or target specific message kinds — so the recovery machinery
//! (acknowledged history sync, abstentions, checkpointing) is exercised
//! against the conditions the paper's footnote 1 glosses over.
//!
//! Deferred delivery (delay, jitter, reordering) runs on a single lazy
//! **pump thread** draining a monotonic-deadline queue; it exits on its
//! own when the last [`Network`] handle is dropped.
//!
//! # Transport modes
//!
//! Routing, fault injection and the ledger counters live in the shared
//! [`Network`] regardless of mode; what varies is the last hop from the
//! delivery step into a node's inbox. Under
//! [`TransportMode::InProcess`] (the default) envelopes cross a
//! crossbeam channel untouched. Under [`TransportMode::Socket`] every
//! route is a loopback TCP or Unix-socket connection: delivery encodes
//! the envelope with the [`crate::frame`] codec and writes the bytes,
//! and a per-connection reader thread on the endpoint side decodes
//! frames back into the same channel the in-process mode uses. Both
//! directions of every exchange cross a real socket, endpoints and
//! schedulers are byte-for-byte unaware of the mode, and
//! [`Network::wire_bytes`] / [`Network::wire_frames`] meter the traffic.

use crate::fault::{self, FaultPlan, LinkPolicy};
use crate::frame::{self, FrameReader};
use crate::message::{Message, NodeId};
use crate::socket::{self, TransportMode};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A routed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub message: Message,
}

/// A message scheduled for future delivery, ordered by deadline then by
/// send order (so equal deadlines keep FIFO semantics).
struct Delayed {
    due: Instant,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// The deferred-delivery queue shared between senders and the pump.
struct DelayQueue {
    heap: Mutex<BinaryHeap<Reverse<Delayed>>>,
    wakeup: Condvar,
    closed: AtomicBool,
}

impl DelayQueue {
    fn new() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    fn push(&self, item: Delayed) {
        self.heap.lock().push(Reverse(item));
        self.wakeup.notify_one();
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.wakeup.notify_all();
    }
}

/// The last hop from delivery into a node's inbox.
#[derive(Clone)]
enum Route {
    /// In-process mode: straight into the endpoint's channel.
    Local(Sender<Envelope>),
    /// Socket mode: frame-encoded over the node's loopback connection; a
    /// reader thread on the far side feeds the endpoint's channel.
    Remote(Arc<socket::Conn>),
}

struct NetworkInner {
    routes: Mutex<HashMap<NodeId, Route>>,
    mode: TransportMode,
    /// Socket factory, present only in socket mode.
    hub: Option<socket::Hub>,
    plan: FaultPlan,
    /// Fault RNG — locked only when a link policy actually draws
    /// randomness; lossless sends never touch it.
    rng: Mutex<StdRng>,
    /// Protocol round the scripted events are scoped to (set by the
    /// round driver via [`Network::begin_round`]).
    round: AtomicU64,
    sent: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    deferred: AtomicU64,
    /// Sends whose destination had no registered route at delivery time
    /// (crashed node, shutdown after disconnect). Booked separately from
    /// `dropped` so fault-injection assertions on link loss stay exact.
    unroutable: AtomicU64,
    /// Monotone sequence for FIFO tie-breaking in the delay queue.
    seq: AtomicU64,
    delay_queue: Arc<DelayQueue>,
    /// Frame bytes written to sockets (zero in in-process mode).
    wire_bytes: AtomicU64,
    /// Frames written to sockets (zero in in-process mode).
    wire_frames: AtomicU64,
}

impl NetworkInner {
    /// Hands an envelope to its destination, if registered. No fault is
    /// ever applied here — faults are decided once, at send time. A
    /// missing route (the destination crashed or never registered) is
    /// booked as unroutable, not as a network drop.
    ///
    /// The route is cloned out so the socket write happens outside the
    /// routing lock; per-connection write order is serialised by the
    /// connection's own writer lock instead.
    fn deliver(&self, envelope: Envelope) {
        let route = self.routes.lock().get(&envelope.to).cloned();
        match route {
            Some(Route::Local(tx)) => {
                let _ = tx.send(envelope);
            }
            Some(Route::Remote(conn)) => {
                let bytes = frame::encode_frame(&envelope);
                self.wire_frames.fetch_add(1, Ordering::Relaxed);
                self.wire_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                // A failed write means the endpoint side is gone — same
                // outcome as sending into a dropped channel.
                let _ = conn.write_frame(&bytes);
            }
            None => {
                self.unroutable.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for NetworkInner {
    fn drop(&mut self) {
        self.delay_queue.close();
        // Close every socket route so the endpoint-side reader threads
        // see EOF and exit instead of lingering in a blocked read.
        for route in self.routes.get_mut().values() {
            if let Route::Remote(conn) = route {
                conn.close();
            }
        }
    }
}

/// Shared handle to the in-process network.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("transport", &self.inner.mode.label())
            .field("nodes", &self.inner.routes.lock().len())
            .field("round", &self.inner.round.load(Ordering::Relaxed))
            .field("plan", &self.inner.plan)
            .finish()
    }
}

/// Drains the delay queue, delivering messages as their deadlines pass.
/// Exits when every [`Network`] handle is gone (the queue is closed and
/// upgrades fail), so tests never leak a busy thread.
fn run_pump(queue: Arc<DelayQueue>, inner: Weak<NetworkInner>) {
    loop {
        let next = {
            let mut heap = queue.heap.lock();
            loop {
                if queue.closed.load(Ordering::SeqCst) {
                    return;
                }
                match heap.peek() {
                    Some(Reverse(d)) => {
                        let now = Instant::now();
                        if d.due <= now {
                            break;
                        }
                        let wait = d.due - now;
                        queue.wakeup.wait_for(&mut heap, wait);
                    }
                    None => {
                        queue.wakeup.wait(&mut heap);
                    }
                }
            }
            heap.pop().expect("peeked item present").0
        };
        match inner.upgrade() {
            Some(inner) => inner.deliver(next.envelope),
            None => return,
        }
    }
}

impl Network {
    /// Creates a lossless network.
    pub fn new() -> Self {
        Self::with_faults(FaultPlan::lossless(0))
    }

    /// Creates a network that drops each message with probability
    /// `drop_prob`, using `seed` for reproducibility. `1.0` is a valid
    /// total blackout.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is not in `[0, 1]`.
    pub fn with_loss(drop_prob: f64, seed: u64) -> Self {
        Self::with_faults(FaultPlan::uniform(LinkPolicy::lossless().with_drop(drop_prob), seed))
    }

    /// Creates a network governed by the given fault plan, in the
    /// transport mode selected by `BAFFLE_TRANSPORT` (see
    /// [`TransportMode::from_env`]). The delivery pump thread is spawned
    /// only when the plan can defer messages.
    pub fn with_faults(plan: FaultPlan) -> Self {
        Self::with_transport(plan, TransportMode::from_env())
    }

    /// Creates a network governed by the given fault plan over an
    /// explicit transport. In socket mode a loopback hub is bound and
    /// every subsequent registration gets its own connection.
    ///
    /// # Panics
    ///
    /// Panics if the socket hub cannot bind its loopback listener.
    pub fn with_transport(plan: FaultPlan, mode: TransportMode) -> Self {
        let hub = match mode {
            TransportMode::InProcess => None,
            TransportMode::Socket(kind) => {
                Some(socket::Hub::bind(kind).expect("socket transport: bind loopback hub"))
            }
        };
        let needs_pump = plan.needs_pump();
        let seed = plan.seed;
        let delay_queue = Arc::new(DelayQueue::new());
        let inner = Arc::new(NetworkInner {
            routes: Mutex::new(HashMap::new()),
            mode,
            hub,
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            round: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            unroutable: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            delay_queue: Arc::clone(&delay_queue),
            wire_bytes: AtomicU64::new(0),
            wire_frames: AtomicU64::new(0),
        });
        if needs_pump {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("baffle-net-pump".into())
                .spawn(move || run_pump(delay_queue, weak))
                .expect("spawn delivery pump");
        }
        Self { inner }
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the node id is currently registered. A node removed by
    /// [`Network::disconnect`] may register again — that is how a
    /// crashed client rejoins.
    pub fn register(&self, id: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        {
            let mut routes = self.inner.routes.lock();
            assert!(!routes.contains_key(&id), "node {id} registered twice");
            let route = match &self.inner.hub {
                None => Route::Local(tx),
                Some(hub) => {
                    // Pair creation happens under the routing lock, so
                    // connect/accept pairs can never interleave.
                    let (peer, net_side) =
                        hub.connect_pair().expect("socket transport: connect endpoint");
                    let conn =
                        socket::Conn::new(net_side, false).expect("socket transport: clone stream");
                    spawn_wire_reader(format!("baffle-wire-rx-{id}"), peer, tx);
                    Route::Remote(Arc::new(conn))
                }
            };
            routes.insert(id, route);
        }
        Endpoint { id, network: self.clone(), receiver: rx }
    }

    /// Creates a multiplexed endpoint: one shared inbound channel that
    /// any number of node ids can be attached to via
    /// [`MuxEndpoint::attach`]. This is the transport half of the
    /// event-driven scheduler — 10k+ clients share a single queue
    /// instead of 10k channels and 10k blocked receiver threads. In
    /// socket mode the mux likewise holds a single shared connection:
    /// attached ids route frames through it, and one reader thread
    /// demuxes them into the shared inbox.
    pub fn register_mux(&self) -> MuxEndpoint {
        let (tx, rx) = unbounded();
        let wire = self.inner.hub.as_ref().map(|hub| {
            let (peer, net_side) = hub.connect_pair().expect("socket transport: connect mux");
            let conn = Arc::new(
                socket::Conn::new(net_side, true).expect("socket transport: clone stream"),
            );
            spawn_wire_reader("baffle-wire-mux".into(), peer, tx.clone());
            conn
        });
        MuxEndpoint { network: self.clone(), sender: tx, receiver: rx, wire }
    }

    /// Removes `id`'s route, modelling a crash-stop: undelivered and
    /// future messages to it vanish, and its actor's blocking `recv`
    /// returns an error (all senders gone) so the actor loop exits.
    /// Returns whether the node was registered.
    ///
    /// In socket mode the node's connection is closed as well (EOF ends
    /// the reader thread, which closes the channel) — unless the route
    /// goes through a mux's shared pinned connection, which stays open
    /// for the ids still attached.
    pub fn disconnect(&self, id: NodeId) -> bool {
        let removed = self.inner.routes.lock().remove(&id);
        match removed {
            Some(Route::Remote(conn)) => {
                if !conn.pinned() {
                    conn.close();
                }
                true
            }
            Some(Route::Local(_)) => true,
            None => false,
        }
    }

    /// Whether `id` currently has a registered route.
    pub fn is_connected(&self, id: NodeId) -> bool {
        self.inner.routes.lock().contains_key(&id)
    }

    /// Declares the start of protocol round `round`, scoping the plan's
    /// scripted events (partitions, targeted drops). Called by the round
    /// driver before each [`crate::server::Server::run_round`].
    pub fn begin_round(&self, round: u64) {
        self.inner.round.store(round, Ordering::SeqCst);
    }

    /// Sends a message, subject to the fault plan: it may be dropped
    /// (link loss, partition, scripted filter), delayed, reordered,
    /// duplicated, or have its wire payload corrupted in flight. A send
    /// to an unknown destination is fire-and-forget (UDP-like) and is
    /// booked under [`Network::messages_unroutable`], not as a drop.
    ///
    /// [`Message::Shutdown`] is exempt from every fault: it is a control
    /// message delivered out of band (a real deployment would retry it),
    /// and dropping it would leak actor threads.
    pub fn send(&self, from: NodeId, to: NodeId, message: Message) {
        let inner = &*self.inner;
        inner.sent.fetch_add(1, Ordering::Relaxed);
        if matches!(message, Message::Shutdown) {
            inner.deliver(Envelope { from, to, message });
            return;
        }
        let round = inner.round.load(Ordering::SeqCst);
        if inner.plan.is_partitioned(round, from)
            || inner.plan.is_partitioned(round, to)
            || inner.plan.drops_kind(round, to, message.kind())
        {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let policy = inner.plan.policy(from, to);
        if !policy.is_active() {
            inner.deliver(Envelope { from, to, message });
            return;
        }

        // All random draws for this message happen under one lock, in
        // send order, so a seeded plan replays identical decisions for
        // an identical send sequence.
        let mut message = message;
        let mut copies = 1usize;
        let mut delays = [Duration::ZERO; 2];
        {
            let mut rng = inner.rng.lock();
            if policy.drop_prob > 0.0 && rng.gen_bool(policy.drop_prob) {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if policy.corrupt_prob > 0.0
                && rng.gen_bool(policy.corrupt_prob)
                && fault::corrupt_message(&mut message, &mut rng)
            {
                inner.corrupted.fetch_add(1, Ordering::Relaxed);
            }
            if policy.duplicate_prob > 0.0 && rng.gen_bool(policy.duplicate_prob) {
                copies = 2;
                inner.duplicated.fetch_add(1, Ordering::Relaxed);
            }
            for delay in delays.iter_mut().take(copies) {
                let mut d = policy.delay;
                if policy.jitter > Duration::ZERO {
                    d += Duration::from_nanos(rng.gen_range(0..=policy.jitter.as_nanos() as u64));
                }
                if policy.reorder_prob > 0.0
                    && policy.reorder_window > Duration::ZERO
                    && rng.gen_bool(policy.reorder_prob)
                {
                    // Hold the message back so later sends overtake it.
                    d += Duration::from_nanos(
                        rng.gen_range(1..=policy.reorder_window.as_nanos() as u64),
                    );
                }
                *delay = d;
            }
        }
        for &delay in delays.iter().take(copies) {
            let envelope = Envelope { from, to, message: message.clone() };
            if delay.is_zero() {
                inner.deliver(envelope);
            } else {
                inner.deferred.fetch_add(1, Ordering::Relaxed);
                inner.delay_queue.push(Delayed {
                    due: Instant::now() + delay,
                    seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                    envelope,
                });
            }
        }
    }

    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }

    /// Messages lost to the simulated link (probabilistic drops,
    /// partitions and scripted filters).
    pub fn messages_dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Messages delivered twice by the duplication fault.
    pub fn messages_duplicated(&self) -> u64 {
        self.inner.duplicated.load(Ordering::Relaxed)
    }

    /// Messages whose wire payload was corrupted in flight.
    pub fn messages_corrupted(&self) -> u64 {
        self.inner.corrupted.load(Ordering::Relaxed)
    }

    /// Message copies routed through the deferred-delivery queue.
    pub fn messages_deferred(&self) -> u64 {
        self.inner.deferred.load(Ordering::Relaxed)
    }

    /// Sends that reached delivery with no registered route — shutdown
    /// notices to crashed nodes, mid-round sends racing a disconnect.
    /// Disjoint from [`Network::messages_dropped`], which counts only
    /// messages the simulated link itself lost.
    pub fn messages_unroutable(&self) -> u64 {
        self.inner.unroutable.load(Ordering::Relaxed)
    }

    /// The transport mode this network was created with.
    pub fn transport(&self) -> TransportMode {
        self.inner.mode
    }

    /// Frame bytes written to sockets. Zero in in-process mode; in
    /// socket mode this is the exact bytes-on-the-wire cost of every
    /// delivered message (header and payload, after fault injection).
    pub fn wire_bytes(&self) -> u64 {
        self.inner.wire_bytes.load(Ordering::Relaxed)
    }

    /// Frames written to sockets (one per delivered message copy in
    /// socket mode; zero in in-process mode).
    pub fn wire_frames(&self) -> u64 {
        self.inner.wire_frames.load(Ordering::Relaxed)
    }
}

/// Decodes frames off `stream` into `tx` until the connection closes
/// (clean EOF or error) or the receiving endpoint is dropped. One such
/// thread exists per socket-mode connection, on the endpoint side.
fn spawn_wire_reader(name: String, stream: socket::Stream, tx: Sender<Envelope>) {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let mut reader = FrameReader::new(stream);
            loop {
                match reader.read_frame() {
                    Ok(Some(envelope)) => {
                        if tx.send(envelope).is_err() {
                            return; // endpoint dropped its receiver
                        }
                    }
                    Ok(None) | Err(_) => return,
                }
            }
        })
        .expect("spawn wire reader");
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

/// A node's connection: its inbox plus a sending handle.
#[derive(Debug)]
pub struct Endpoint {
    id: NodeId,
    network: Network,
    receiver: Receiver<Envelope>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `message` to `to`.
    pub fn send(&self, to: NodeId, message: Message) {
        self.network.send(self.id, to, message);
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns an error when the network shut down (all senders gone).
    pub fn recv(&self) -> Result<Envelope, crossbeam::channel::RecvError> {
        self.receiver.recv()
    }

    /// Waits up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// Returns an error on timeout or disconnection.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Envelope, crossbeam::channel::RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }

    /// A send-only handle for this endpoint's node id — what a state
    /// machine keeps when its inbox is owned by a [`MuxEndpoint`].
    pub fn outbox(&self) -> Outbox {
        Outbox { id: self.id, network: self.network.clone() }
    }
}

/// A send-only network handle bound to one node id. State machines hold
/// an `Outbox` instead of a full [`Endpoint`]: their inbound traffic is
/// delivered by the scheduler, so they never block on a receiver.
#[derive(Debug, Clone)]
pub struct Outbox {
    id: NodeId,
    network: Network,
}

impl Outbox {
    /// The node id this outbox sends as.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `message` to `to` as this node.
    pub fn send(&self, to: NodeId, message: Message) {
        self.network.send(self.id, to, message);
    }
}

/// A multiplexed inbox: many node ids, one channel. Created by
/// [`Network::register_mux`]; ids are attached and detached dynamically
/// as clients join, crash and restart. Messages for every attached id
/// arrive interleaved on the shared receiver in delivery order, tagged
/// with their destination (`Envelope::to`), so a scheduler can demux
/// them without per-node threads.
#[derive(Debug)]
pub struct MuxEndpoint {
    network: Network,
    sender: Sender<Envelope>,
    receiver: Receiver<Envelope>,
    /// The mux's shared socket connection (socket mode only). Pinned:
    /// detaching one id must not sever the other attached ids, so it
    /// closes only when the mux or the network goes away.
    wire: Option<Arc<socket::Conn>>,
}

impl MuxEndpoint {
    /// Routes `id`'s traffic into this shared inbox and returns the
    /// node's send-only handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is currently registered (same contract as
    /// [`Network::register`]). A node removed by [`MuxEndpoint::detach`]
    /// or [`Network::disconnect`] may attach again.
    pub fn attach(&self, id: NodeId) -> Outbox {
        let route = match &self.wire {
            Some(conn) => Route::Remote(Arc::clone(conn)),
            None => Route::Local(self.sender.clone()),
        };
        let previous = self.network.inner.routes.lock().insert(id, route);
        assert!(previous.is_none(), "node {id} registered twice");
        Outbox { id, network: self.network.clone() }
    }

    /// Removes `id`'s route (crash-stop semantics, like
    /// [`Network::disconnect`]). Messages for `id` already queued in the
    /// shared inbox are *not* purged — the scheduler discards envelopes
    /// addressed to detached ids as it drains. Returns whether the node
    /// was registered.
    pub fn detach(&self, id: NodeId) -> bool {
        self.network.disconnect(id)
    }

    /// The underlying network handle.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The raw shared receiver — lets the scheduler `select!` over
    /// envelopes and its command channel in one blocking wait.
    pub(crate) fn raw_receiver(&self) -> &Receiver<Envelope> {
        &self.receiver
    }

    /// Takes the next queued envelope without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.receiver.try_recv().ok()
    }

    /// Waits up to `timeout` for the next envelope.
    ///
    /// # Errors
    ///
    /// Returns an error on timeout or disconnection.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Envelope, crossbeam::channel::RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }
}

impl Drop for MuxEndpoint {
    fn drop(&mut self) {
        // Close the shared connection so its reader thread exits; the
        // network side treats subsequent writes like sends into a
        // dropped channel.
        if let Some(conn) = &self.wire {
            conn.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, LinkSelector};
    use crate::socket::SocketKind;
    use baffle_nn::wire;

    #[test]
    fn point_to_point_delivery() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        a.send(NodeId(1), Message::Shutdown);
        let env = b.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.message, Message::Shutdown);
    }

    #[test]
    fn unknown_destination_is_booked_as_unroutable_not_dropped() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        a.send(NodeId(99), Message::Shutdown); // must not panic
        a.send(NodeId(99), Message::RoundResult { round: 1, accepted: true });
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.messages_unroutable(), 2);
        assert_eq!(net.messages_dropped(), 0, "no-route sends are not link loss");
    }

    #[test]
    fn mux_endpoint_demuxes_many_ids_over_one_channel() {
        let net = Network::new();
        let server = net.register(NodeId(0));
        let mux = net.register_mux();
        let out1 = mux.attach(NodeId(1));
        let _out2 = mux.attach(NodeId(2));
        server.send(NodeId(1), Message::RoundResult { round: 1, accepted: true });
        server.send(NodeId(2), Message::RoundResult { round: 2, accepted: true });
        let first = mux.recv_timeout(Duration::from_millis(200)).unwrap();
        let second = mux.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(first.to, NodeId(1));
        assert_eq!(second.to, NodeId(2));
        // The outbox sends as its attached id.
        out1.send(NodeId(0), Message::RoundResult { round: 3, accepted: false });
        assert_eq!(server.recv_timeout(Duration::from_millis(200)).unwrap().from, NodeId(1));
    }

    #[test]
    fn mux_detach_makes_the_id_unroutable_and_reattachable() {
        let net = Network::new();
        let server = net.register(NodeId(0));
        let mux = net.register_mux();
        let _out = mux.attach(NodeId(1));
        assert!(mux.detach(NodeId(1)));
        assert!(!mux.detach(NodeId(1)), "double detach reports absence");
        server.send(NodeId(1), Message::RoundResult { round: 1, accepted: true });
        assert!(mux.try_recv().is_none());
        assert_eq!(net.messages_unroutable(), 1);
        // Restart: the id attaches again and traffic flows.
        let _out = mux.attach(NodeId(1));
        server.send(NodeId(1), Message::RoundResult { round: 2, accepted: true });
        assert!(mux.recv_timeout(Duration::from_millis(200)).is_ok());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn mux_attach_of_a_registered_id_panics() {
        let net = Network::new();
        let _a = net.register(NodeId(3));
        let mux = net.register_mux();
        let _ = mux.attach(NodeId(3));
    }

    #[test]
    fn lossy_network_drops_roughly_the_configured_fraction() {
        let net = Network::with_loss(0.3, 42);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let n = 2000;
        for round in 0..n {
            a.send(NodeId(1), Message::RoundResult { round, accepted: true });
        }
        let mut received = 0;
        // Generous drain timeout: under the socket transport delivery
        // crosses a kernel buffer and a reader thread, so back-to-back
        // messages may be more than a millisecond apart.
        while b.recv_timeout(Duration::from_millis(50)).is_ok() {
            received += 1;
        }
        let drop_rate = 1.0 - received as f64 / n as f64;
        assert!((0.25..0.35).contains(&drop_rate), "drop rate {drop_rate}");
        assert_eq!(net.messages_dropped() + received, n);
    }

    #[test]
    fn total_blackout_is_expressible() {
        let net = Network::with_loss(1.0, 3);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for round in 0..20 {
            a.send(NodeId(1), Message::RoundResult { round, accepted: true });
        }
        assert!(b.recv_timeout(Duration::from_millis(5)).is_err());
        assert_eq!(net.messages_dropped(), 20);
    }

    #[test]
    fn shutdown_is_never_dropped() {
        let net = Network::with_loss(1.0, 7);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        for _ in 0..50 {
            a.send(NodeId(1), Message::Shutdown);
        }
        let mut got = 0;
        while b.recv_timeout(Duration::from_millis(50)).is_ok() {
            got += 1;
        }
        assert_eq!(got, 50);
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        assert!(a.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let net = Network::new();
        let _a = net.register(NodeId(0));
        let _b = net.register(NodeId(0));
    }

    #[test]
    fn disconnect_unblocks_the_receiver_and_allows_reregistration() {
        let net = Network::new();
        let a = net.register(NodeId(0));
        assert!(net.is_connected(NodeId(0)));
        let handle = std::thread::spawn(move || a.recv().is_err());
        assert!(net.disconnect(NodeId(0)));
        assert!(handle.join().unwrap(), "recv must error once the route is gone");
        assert!(!net.disconnect(NodeId(0)), "double disconnect reports absence");
        // A crashed node rejoins with a fresh endpoint.
        let a2 = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        b.send(NodeId(0), Message::RoundResult { round: 1, accepted: true });
        assert!(a2.recv_timeout(Duration::from_millis(200)).is_ok());
    }

    #[test]
    fn delayed_messages_arrive_later_but_intact() {
        let plan = FaultPlan::uniform(
            LinkPolicy::lossless().with_delay(Duration::from_millis(30), Duration::from_millis(10)),
            5,
        );
        let net = Network::with_faults(plan);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let start = Instant::now();
        a.send(NodeId(1), Message::RoundResult { round: 9, accepted: false });
        assert!(
            b.recv_timeout(Duration::from_millis(5)).is_err(),
            "a delayed message must not arrive immediately"
        );
        let env = b.recv_timeout(Duration::from_secs(5)).expect("delayed message lost");
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(env.message, Message::RoundResult { round: 9, accepted: false });
        assert_eq!(net.messages_deferred(), 1);
    }

    #[test]
    fn reordering_overtakes_held_messages() {
        // Every message is held back 20–40ms with probability 1; sending
        // a held message followed by an instant one on a lossless side
        // channel shows the overtake.
        let plan = FaultPlan::lossless(11).link(
            LinkSelector::to(NodeId(1)),
            LinkPolicy::lossless().with_reorder(1.0, Duration::from_millis(40)),
        );
        let net = Network::with_faults(plan);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        a.send(NodeId(1), Message::RoundResult { round: 1, accepted: true });
        // Second message: bypasses the holdback only if its own draw is
        // small — instead route it through a different policy by sending
        // many and checking arrival order is not send order.
        for round in 2..=20 {
            a.send(NodeId(1), Message::RoundResult { round, accepted: true });
        }
        let mut order = Vec::new();
        while order.len() < 20 {
            let env = b.recv_timeout(Duration::from_secs(5)).expect("message lost");
            if let Message::RoundResult { round, .. } = env.message {
                order.push(round);
            }
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "random holdbacks must reorder at least one pair");
        assert_eq!(sorted, (1..=20).collect::<Vec<_>>(), "nothing may be lost");
    }

    #[test]
    fn duplication_delivers_twice() {
        let plan = FaultPlan::uniform(LinkPolicy::lossless().with_duplicate(1.0), 13);
        let net = Network::with_faults(plan);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        a.send(NodeId(1), Message::RoundResult { round: 4, accepted: true });
        let mut got = 0;
        while b.recv_timeout(Duration::from_millis(50)).is_ok() {
            got += 1;
        }
        assert_eq!(got, 2, "a duplicated message arrives exactly twice");
        assert_eq!(net.messages_duplicated(), 1);
        assert_eq!(net.messages_sent(), 1, "duplication does not inflate the send count");
    }

    #[test]
    fn corruption_damages_payloads_detectably() {
        let plan = FaultPlan::uniform(LinkPolicy::lossless().with_corrupt(1.0), 17);
        let net = Network::with_faults(plan);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let params = vec![1.0f32; 50];
        a.send(NodeId(1), Message::TrainRequest { round: 1, global: wire::encode_f32(&params) });
        let env = b.recv_timeout(Duration::from_millis(500)).expect("corrupted, not dropped");
        let Message::TrainRequest { global, .. } = env.message else { panic!("wrong kind") };
        let err = wire::decode_f32(&global).expect_err("payload must be damaged");
        assert!(err.is_corruption());
        assert_eq!(net.messages_corrupted(), 1);
    }

    #[test]
    fn partition_drops_everything_during_its_rounds() {
        let plan =
            FaultPlan::lossless(0).event(FaultEvent::Partition { node: NodeId(1), rounds: 2..=2 });
        let net = Network::with_faults(plan);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.begin_round(2);
        a.send(NodeId(1), Message::RoundResult { round: 2, accepted: true });
        b.send(NodeId(0), Message::RoundResult { round: 2, accepted: true });
        assert!(b.recv_timeout(Duration::from_millis(5)).is_err());
        assert!(a.recv_timeout(Duration::from_millis(5)).is_err());
        assert_eq!(net.messages_dropped(), 2);
        // The partition heals on the next round.
        net.begin_round(3);
        a.send(NodeId(1), Message::RoundResult { round: 3, accepted: true });
        assert!(b.recv_timeout(Duration::from_millis(200)).is_ok());
    }

    #[test]
    fn scripted_kind_filter_drops_only_that_kind() {
        let plan = FaultPlan::lossless(0).event(FaultEvent::DropKind {
            to: Some(NodeId(1)),
            rounds: 1..=1,
            kind: "validate-request",
        });
        let net = Network::with_faults(plan);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.begin_round(1);
        a.send(
            NodeId(1),
            Message::ValidateRequest {
                round: 1,
                candidate: bytes::Bytes::new(),
                history_delta: vec![],
            },
        );
        a.send(NodeId(1), Message::RoundResult { round: 1, accepted: true });
        let env = b.recv_timeout(Duration::from_millis(200)).expect("other kinds pass");
        assert_eq!(env.message.kind(), "round-result");
        assert!(b.recv_timeout(Duration::from_millis(5)).is_err());
    }

    const RECV: Duration = Duration::from_secs(5);

    #[test]
    fn socket_transport_delivers_and_meters_wire_traffic() {
        let net =
            Network::with_transport(FaultPlan::lossless(0), TransportMode::Socket(SocketKind::Tcp));
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let params = vec![0.5f32; 32];
        a.send(NodeId(1), Message::TrainRequest { round: 7, global: wire::encode_f32(&params) });
        b.send(NodeId(0), Message::RoundResult { round: 7, accepted: true });
        let env = b.recv_timeout(RECV).expect("frame lost over loopback");
        let Message::TrainRequest { round, global } = env.message else { panic!("wrong kind") };
        assert_eq!(round, 7);
        assert_eq!(wire::decode_f32(&global).unwrap(), params);
        assert_eq!(a.recv_timeout(RECV).unwrap().from, NodeId(1));
        assert_eq!(net.wire_frames(), 2, "both directions cross the socket");
        assert!(net.wire_bytes() > 2 * frame::FRAME_HEADER as u64);
        assert_eq!(net.messages_sent(), 2);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_transport_delivers() {
        let net = Network::with_transport(
            FaultPlan::lossless(0),
            TransportMode::Socket(SocketKind::Unix),
        );
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        a.send(NodeId(1), Message::RoundResult { round: 3, accepted: false });
        let env = b.recv_timeout(RECV).unwrap();
        assert_eq!(env.message, Message::RoundResult { round: 3, accepted: false });
        assert_eq!(net.wire_frames(), 1);
    }

    #[test]
    fn socket_transport_mux_demuxes_and_survives_detach() {
        let net =
            Network::with_transport(FaultPlan::lossless(0), TransportMode::Socket(SocketKind::Tcp));
        let server = net.register(NodeId(0));
        let mux = net.register_mux();
        let _out1 = mux.attach(NodeId(1));
        let out2 = mux.attach(NodeId(2));
        server.send(NodeId(1), Message::RoundResult { round: 1, accepted: true });
        server.send(NodeId(2), Message::RoundResult { round: 2, accepted: true });
        assert_eq!(mux.recv_timeout(RECV).unwrap().to, NodeId(1));
        assert_eq!(mux.recv_timeout(RECV).unwrap().to, NodeId(2));
        // Detaching one id must not sever the mux's shared connection.
        assert!(mux.detach(NodeId(1)));
        server.send(NodeId(2), Message::RoundResult { round: 3, accepted: true });
        assert_eq!(mux.recv_timeout(RECV).unwrap().to, NodeId(2));
        out2.send(NodeId(0), Message::RoundResult { round: 4, accepted: false });
        assert_eq!(server.recv_timeout(RECV).unwrap().from, NodeId(2));
    }

    #[test]
    fn socket_disconnect_closes_the_connection_and_allows_rejoin() {
        let net =
            Network::with_transport(FaultPlan::lossless(0), TransportMode::Socket(SocketKind::Tcp));
        let a = net.register(NodeId(0));
        let handle = std::thread::spawn(move || a.recv().is_err());
        assert!(net.disconnect(NodeId(0)));
        assert!(handle.join().unwrap(), "recv must error once the connection closes");
        let a2 = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        b.send(NodeId(0), Message::RoundResult { round: 1, accepted: true });
        assert!(a2.recv_timeout(RECV).is_ok());
    }

    #[test]
    fn socket_transport_preserves_detectable_corruption() {
        // A payload corrupted by the fault injector must arrive over the
        // socket still framed intact (the frame checksum covers what was
        // actually sent) and still detectably damaged at the codec layer.
        let plan = FaultPlan::uniform(LinkPolicy::lossless().with_corrupt(1.0), 17);
        let net = Network::with_transport(plan, TransportMode::Socket(SocketKind::Tcp));
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let params = vec![1.0f32; 50];
        a.send(NodeId(1), Message::TrainRequest { round: 1, global: wire::encode_f32(&params) });
        let env = b.recv_timeout(RECV).expect("corrupted, not dropped");
        let Message::TrainRequest { global, .. } = env.message else { panic!("wrong kind") };
        assert!(wire::decode_f32(&global).expect_err("payload must be damaged").is_corruption());
        assert_eq!(net.messages_corrupted(), 1);
    }
}
