//! Cache-blocked GEMM kernels with pool-parallel, SIMD-aware dispatch.
//!
//! All three matmul orientations used by backpropagation live here:
//!
//! - [`nn`]  — `C += A·B` (forward pass),
//! - [`tn`]  — `C += Aᵀ·B` (weight gradients),
//! - [`nt`]  — `C += A·Bᵀ` (input deltas),
//!
//! each as a *dispatcher* that picks, by problem size, between a serial
//! kernel and a row-banded parallel run on the shared worker pool
//! ([`crate::pool`]). The serial kernel is the explicit 8-wide
//! micro-kernel ([`simd_nn`] / [`simd_tn`], built on
//! [`crate::simd::F32x8`] lanes) unless `BAFFLE_NO_SIMD` is set, in
//! which case the scalar cache-blocked kernels ([`blocked_nn`] /
//! [`blocked_tn`]) serve as the fallback. The naive reference kernels
//! ([`naive_nn`], [`naive_tn`], [`naive_nt`]) are retained as the
//! ground truth for property tests and benchmarks, and every dispatcher
//! call is tallied per path ([`dispatch_counts`]) so perf regressions
//! can be attributed to dispatch changes, not just kernel changes.
//!
//! # Bit-exactness
//!
//! Every path — naive, blocked, SIMD, banded-parallel at any thread
//! count — produces **bit-identical** output: for each output element
//! the products are accumulated in strictly increasing `k` order,
//! starting from the element's prior value. Blocking only reorders work
//! *between* elements (which f32 addition cannot observe), row bands
//! touch disjoint outputs, and the 8-wide kernel assigns each output
//! element to exactly one lane of one accumulator — lanes never mix and
//! no FMA contraction is emitted, so each lane performs the scalar
//! kernel's multiply-then-add sequence verbatim. This is what lets
//! seeded experiments reproduce exactly regardless of `BAFFLE_THREADS`
//! or `BAFFLE_NO_SIMD`.
//!
//! # Opt-in fast-math tier
//!
//! Setting `BAFFLE_FAST_MATH` (see [`fast_math_enabled`]) swaps the
//! dispatched serial kernel for the FMA-contracted micro-kernels
//! ([`fast_nn`] / [`fast_tn`]): fused multiply-adds (one rounding per
//! product instead of two) and a relaxed per-element accumulation order
//! (two interleaved even/odd-`k` partial sums combined at the end of
//! each sweep). The fast kernels are **not** bit-compatible with the
//! default path, but they are still *deterministic* — `f32::mul_add` is
//! correctly rounded on every platform and the chain split is a fixed
//! function of the shape — and every element stays within the proven
//! [`error_bound`] of the bit-exact oracle. The bit-exact kernels
//! remain the default and the ground truth; the fast tier is never
//! selected unless the environment (or [`set_fast_math`]) asks for it.
//!
//! The multi-model validation path adds two *batched* entry points on
//! top of the same kernels: [`concat_nn`] (one shared left operand
//! against horizontally-concatenated right operands — a plain wide
//! product, tallied separately) and [`batched_nn`] (a block-diagonal
//! product: `nb` independent same-shape products laid out
//! contiguously, parallelised across blocks). Both preserve the
//! per-element accumulation order of the equivalent per-model calls.
//!
//! # Tiling
//!
//! The scalar blocked kernels tile `MB×KB = 32×32` panels of `A`
//! against `KB×NB = 32×256` panels of `B`: one `B` panel (32 KiB) plus
//! one `A` panel (4 KiB) sit comfortably in L1/L2 while the inner loop
//! streams `NB`-wide rows the compiler autovectorizes. The SIMD kernels
//! register-block instead: 64 output columns (eight 8-lane
//! accumulators, enough independent dependency chains to hide add
//! latency) are held in registers across a `KC = 256`-deep `k` sweep,
//! so the output is loaded and stored once per sweep instead of once
//! per `k`-step while `B` streams through in 64-wide rows. On x86-64
//! the SIMD bodies are additionally compiled with AVX2 enabled and
//! selected by a run-time CPU check, so an [`F32x8`] is a single
//! 256-bit register even when the build targets baseline SSE2.

use crate::pool;
use crate::simd::{F32x8, LANES};
use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Row-tile height over `C`/`A` in the scalar blocked kernels.
const MB: usize = 32;
/// Depth-tile size over `k` in the scalar blocked kernels.
const KB: usize = 32;
/// Column-tile width over `C`/`B` in the scalar blocked kernels.
const NB: usize = 256;

/// Depth of one register-resident `k` sweep in the SIMD kernels: a
/// 32-column band of `B` over `KC` depth steps is 32 KiB (L1-sized),
/// and accumulators reload from `C` only once per sweep.
const KC: usize = 256;

/// Minimum `m·k·n` before a product is row-banded across the pool;
/// below this, thread hand-off costs more than the multiply.
const PAR_MIN_WORK: usize = 1 << 20;

/// Minimum `m·k·n` before [`nt`] packs `Bᵀ` to reach the blocked
/// kernel; tiny products just run the direct dot-product loop.
const NT_PACK_MIN_WORK: usize = 1 << 16;

#[inline]
fn work(m: usize, k: usize, n: usize) -> usize {
    m.saturating_mul(k).saturating_mul(n)
}

#[inline]
fn check(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &[f32], what: &str) {
    assert_eq!(a.len(), m * k, "gemm::{what}: A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm::{what}: B is not {k}x{n}");
    assert_eq!(out.len(), m * n, "gemm::{what}: C is not {m}x{n}");
}

static NO_SIMD: OnceLock<bool> = OnceLock::new();

/// Whether the dispatchers use the 8-wide SIMD micro-kernels.
///
/// Disabled by setting the `BAFFLE_NO_SIMD` environment variable to
/// anything but `0` or the empty string (CI re-runs tier-1 this way to
/// guard the scalar blocked fallback). Read once, at first use.
pub fn simd_enabled() -> bool {
    !*NO_SIMD.get_or_init(|| match std::env::var("BAFFLE_NO_SIMD") {
        Ok(v) => !v.trim().is_empty() && v.trim() != "0",
        Err(_) => false,
    })
}

static FAST_MATH_ENV: OnceLock<bool> = OnceLock::new();
/// `-1` = follow the environment, `0` = forced off, `1` = forced on.
static FAST_MATH_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// Whether the dispatchers use the FMA-contracted fast kernels instead
/// of the bit-exact ones.
///
/// Enabled by setting the `BAFFLE_FAST_MATH` environment variable to
/// anything but `0` or the empty string; off by default. The
/// environment is read once, at first use, but [`set_fast_math`] can
/// override it at any time (the report bins use this to measure both
/// tiers in one process). The fast tier only ever applies where the
/// SIMD kernels would run — `BAFFLE_NO_SIMD` pins the scalar blocked
/// kernels, which are always bit-exact.
pub fn fast_math_enabled() -> bool {
    match FAST_MATH_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *FAST_MATH_ENV.get_or_init(|| match std::env::var("BAFFLE_FAST_MATH") {
            Ok(v) => !v.trim().is_empty() && v.trim() != "0",
            Err(_) => false,
        }),
    }
}

/// Process-wide override of [`fast_math_enabled`]: `Some(on)` forces
/// the tier, `None` restores the environment's setting. A global (not
/// thread-local) switch so pool workers observe it too.
pub fn set_fast_math(on: Option<bool>) {
    let v = match on {
        Some(false) => 0,
        Some(true) => 1,
        None => -1,
    };
    FAST_MATH_OVERRIDE.store(v, Ordering::Relaxed);
}

static HITS_BLOCKED: AtomicU64 = AtomicU64::new(0);
static HITS_SIMD: AtomicU64 = AtomicU64::new(0);
static HITS_BANDED: AtomicU64 = AtomicU64::new(0);
static HITS_BATCHED: AtomicU64 = AtomicU64::new(0);
static HITS_FMA: AtomicU64 = AtomicU64::new(0);

/// Per-path hit counts of the [`nn`]/[`tn`]/[`nt`] dispatchers (see
/// [`dispatch_counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchCounts {
    /// Serial scalar products: the cache-blocked kernels, plus [`nt`]'s
    /// tiny direct dot-product path.
    pub blocked: u64,
    /// Serial products on the 8-wide micro-kernels.
    pub simd: u64,
    /// Products row-banded across the worker pool (each counted once,
    /// regardless of band count or which kernel the bands run).
    pub banded: u64,
    /// Multi-model batched products: [`concat_nn`] and [`batched_nn`]
    /// calls (each counted once; these calls do not additionally tally
    /// the serial/banded paths they run on).
    pub batched: u64,
    /// Serial products on the FMA-contracted fast kernels (only ever
    /// non-zero when the fast-math tier is enabled).
    pub fma: u64,
}

/// Process-wide tally of which kernel path each dispatcher call took
/// since start-up (or the last [`reset_dispatch_counts`]). Only the
/// dispatchers count; calling `blocked_*`/`simd_*`/`naive_*` directly
/// does not. Intended for perf forensics — `gemm_report` prints these so
/// a perf change can be attributed to dispatch vs kernel changes.
pub fn dispatch_counts() -> DispatchCounts {
    DispatchCounts {
        blocked: HITS_BLOCKED.load(Ordering::Relaxed),
        simd: HITS_SIMD.load(Ordering::Relaxed),
        banded: HITS_BANDED.load(Ordering::Relaxed),
        batched: HITS_BATCHED.load(Ordering::Relaxed),
        fma: HITS_FMA.load(Ordering::Relaxed),
    }
}

/// Zeroes the [`dispatch_counts`] tallies.
pub fn reset_dispatch_counts() {
    HITS_BLOCKED.store(0, Ordering::Relaxed);
    HITS_SIMD.store(0, Ordering::Relaxed);
    HITS_BANDED.store(0, Ordering::Relaxed);
    HITS_BATCHED.store(0, Ordering::Relaxed);
    HITS_FMA.store(0, Ordering::Relaxed);
}

#[inline]
fn count_serial() {
    if simd_enabled() {
        if fast_math_enabled() {
            HITS_FMA.fetch_add(1, Ordering::Relaxed);
        } else {
            HITS_SIMD.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        HITS_BLOCKED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reference kernel `C += A·B` (`A` is `m×k`, `B` is `k×n`, row-major).
///
/// Branch-free i-k-j triple loop; the correctness oracle for the
/// blocked, SIMD and parallel paths.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "naive_nn");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference kernel `C += Aᵀ·B` (`A` is `ra×ca`, `B` is `ra×n`, `C` is
/// `ca×n`), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::naive_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::naive_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::naive_tn: C is not {ca}x{n}");
    for kk in 0..ra {
        let a_row = &a[kk * ca..(kk + 1) * ca];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference kernel `C += A·Bᵀ` (`A` is `m×k`, `B` is `n×k`, `C` is
/// `m×n`), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm::naive_nt: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm::naive_nt: B is not {n}x{k}");
    assert_eq!(out.len(), m * n, "gemm::naive_nt: C is not {m}x{n}");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = out[i * n + j];
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Serial cache-blocked `C += A·B` with a k-unrolled-by-4 micro-kernel.
/// Bit-identical to [`naive_nn`] for every shape. Retained as the
/// scalar fallback behind `BAFFLE_NO_SIMD` and as the SIMD kernels'
/// perf baseline.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn blocked_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "blocked_nn");
    for jb in (0..n).step_by(NB) {
        let jw = (jb + NB).min(n) - jb;
        for ib in (0..m).step_by(MB) {
            let iend = (ib + MB).min(m);
            for kb in (0..k).step_by(KB) {
                let kend = (kb + KB).min(k);
                for i in ib..iend {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n + jb..i * n + jb + jw];
                    let mut kk = kb;
                    while kk + 4 <= kend {
                        let (a0, a1, a2, a3) =
                            (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                        let b0 = &b[kk * n + jb..kk * n + jb + jw];
                        let b1 = &b[(kk + 1) * n + jb..(kk + 1) * n + jb + jw];
                        let b2 = &b[(kk + 2) * n + jb..(kk + 2) * n + jb + jw];
                        let b3 = &b[(kk + 3) * n + jb..(kk + 3) * n + jb + jw];
                        // Sequential adds keep each element's k order.
                        for j in 0..jw {
                            let mut acc = out_row[j];
                            acc += a0 * b0[j];
                            acc += a1 * b1[j];
                            acc += a2 * b2[j];
                            acc += a3 * b3[j];
                            out_row[j] = acc;
                        }
                        kk += 4;
                    }
                    while kk < kend {
                        let av = a_row[kk];
                        let b_row = &b[kk * n + jb..kk * n + jb + jw];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                        kk += 1;
                    }
                }
            }
        }
    }
}

/// Serial cache-blocked `C += Aᵀ·B`. Bit-identical to [`naive_tn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn blocked_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::blocked_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::blocked_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::blocked_tn: C is not {ca}x{n}");
    blocked_tn_cols(ra, ca, n, a, b, 0, ca, out);
}

/// The `tn` tile loop over output rows (= `A` columns) `i0..i1` only,
/// writing into the `(i1-i0)×n` band `out`. Per-element accumulation
/// order depends only on `kb`/`kk`, so banding cannot change results.
#[allow(clippy::too_many_arguments)]
fn blocked_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    for jb in (0..n).step_by(NB) {
        let jend = (jb + NB).min(n);
        for ib in (i0..i1).step_by(MB) {
            let iend = (ib + MB).min(i1);
            for kb in (0..ra).step_by(KB) {
                let kend = (kb + KB).min(ra);
                for kk in kb..kend {
                    let a_row = &a[kk * ca..(kk + 1) * ca];
                    let b_row = &b[kk * n + jb..kk * n + jend];
                    for i in ib..iend {
                        let av = a_row[i];
                        let out_row = &mut out[(i - i0) * n + jb..(i - i0) * n + jend];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Whether the running CPU supports AVX2, checked once. The SIMD
/// kernels' bodies are compiled twice — once with the AVX2 feature
/// enabled (so [`F32x8`] becomes one 256-bit register) and once at the
/// build's baseline ISA — and this picks between them at run time.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Whether the running CPU supports AVX2 *and* FMA, checked once. Picks
/// the hardware-FMA instantiation of the fast kernels; without it the
/// baseline instantiation still runs `f32::mul_add` (correctly-rounded
/// soft-float), so results are identical either way — only speed
/// differs.
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// One register-blocked sweep: `out_row[j] += Σ_{kk=k0..k1} a_at(kk) ·
/// b[kk·n + j]` for every column `j` of the full `n`-wide row, in
/// ascending-`kk` order per column. Columns are walked 64 at a time
/// (eight 8-lane accumulators held in registers across the whole sweep
/// — enough independent add chains to hide FP-add latency, with the
/// `B` row hoisted to a fixed-size array so the inner loop carries a
/// single bounds check), then 8 at a time, then a scalar tail. A column
/// only ever lives in one lane of one accumulator, so each output
/// element sees exactly the scalar multiply-then-add sequence.
#[inline(always)]
fn simd_row(
    k0: usize,
    k1: usize,
    a_at: impl Fn(usize) -> f32,
    b: &[f32],
    n: usize,
    out_row: &mut [f32],
) {
    const JW: usize = 8 * LANES;
    let mut j = 0;
    while j + JW <= n {
        let mut c = [F32x8::default(); 8];
        for (q, cq) in c.iter_mut().enumerate() {
            *cq = F32x8::load(&out_row[j + q * LANES..]);
        }
        for kk in k0..k1 {
            let av = F32x8::splat(a_at(kk));
            let r: &[f32; JW] = b[kk * n + j..kk * n + j + JW].try_into().unwrap();
            c[0].mul_add_assign(av, F32x8::load(&r[0..]));
            c[1].mul_add_assign(av, F32x8::load(&r[LANES..]));
            c[2].mul_add_assign(av, F32x8::load(&r[2 * LANES..]));
            c[3].mul_add_assign(av, F32x8::load(&r[3 * LANES..]));
            c[4].mul_add_assign(av, F32x8::load(&r[4 * LANES..]));
            c[5].mul_add_assign(av, F32x8::load(&r[5 * LANES..]));
            c[6].mul_add_assign(av, F32x8::load(&r[6 * LANES..]));
            c[7].mul_add_assign(av, F32x8::load(&r[7 * LANES..]));
        }
        for (q, cq) in c.iter().enumerate() {
            cq.store(&mut out_row[j + q * LANES..]);
        }
        j += JW;
    }
    while j + LANES <= n {
        let mut c = F32x8::load(&out_row[j..]);
        for kk in k0..k1 {
            c.mul_add_assign(F32x8::splat(a_at(kk)), F32x8::load(&b[kk * n + j..]));
        }
        c.store(&mut out_row[j..]);
        j += LANES;
    }
    while j < n {
        let mut acc = out_row[j];
        for kk in k0..k1 {
            acc += a_at(kk) * b[kk * n + j];
        }
        out_row[j] = acc;
        j += 1;
    }
}

/// The [`simd_nn`] loop body, generic over the target features of its
/// instantiation site (see [`avx2_available`]).
#[inline(always)]
fn simd_nn_body(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            simd_row(kb, kend, |kk| a_row[kk], b, n, out_row);
        }
    }
}

/// [`simd_nn_body`] compiled with AVX2 enabled, regardless of the
/// build's baseline target features.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn simd_nn_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    simd_nn_body(m, k, n, a, b, out);
}

/// Serial 8-wide `C += A·B` micro-kernel. Bit-identical to [`naive_nn`]
/// for every shape (see the module docs on why lanes preserve the
/// per-element accumulation order — AVX2 and baseline-ISA instantiations
/// perform the same IEEE operations, so which one runs is unobservable
/// in the output).
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn simd_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "simd_nn");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at run time.
        unsafe { simd_nn_avx2(m, k, n, a, b, out) };
        return;
    }
    simd_nn_body(m, k, n, a, b, out);
}

/// Serial 8-wide `C += Aᵀ·B` micro-kernel. Bit-identical to
/// [`naive_tn`] for every shape.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn simd_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::simd_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::simd_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::simd_tn: C is not {ca}x{n}");
    simd_tn_cols(ra, ca, n, a, b, 0, ca, out);
}

/// The [`simd_tn_cols`] loop body, generic over the target features of
/// its instantiation site.
#[inline(always)]
fn simd_tn_cols_body(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    for i in i0..i1 {
        let out_row = &mut out[(i - i0) * n..(i - i0 + 1) * n];
        for kb in (0..ra).step_by(KC) {
            let kend = (kb + KC).min(ra);
            simd_row(kb, kend, |kk| a[kk * ca + i], b, n, out_row);
        }
    }
}

/// [`simd_tn_cols_body`] compiled with AVX2 enabled.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn simd_tn_cols_avx2(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    simd_tn_cols_body(ra, ca, n, a, b, i0, i1, out);
}

/// The 8-wide `tn` loop over output rows (= `A` columns) `i0..i1` only,
/// writing into the `(i1-i0)×n` band `out`. The `A` value for step `kk`
/// is the strided load `a[kk·ca + i]`; per-element order is unchanged.
#[allow(clippy::too_many_arguments)]
fn simd_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at run time.
        unsafe { simd_tn_cols_avx2(ra, ca, n, a, b, i0, i1, out) };
        return;
    }
    simd_tn_cols_body(ra, ca, n, a, b, i0, i1, out);
}

/// One FMA-contracted register sweep: like [`simd_row`], but each
/// product is a fused multiply-add (one rounding) and the 32-wide main
/// body splits each column's sum into two interleaved chains — chain 0
/// takes `kk = k0, k0+2, …` (seeded from the prior output value), chain
/// 1 takes `kk = k0+1, k0+3, …` (seeded from zero) — combined with one
/// add at the end of the sweep. The split halves the loop-carried FMA
/// latency per column. The 8-wide and scalar tails run a single
/// ascending-`k` fused chain. The chain assignment is a fixed function
/// of `(j, n, k0, k1)`, so for a given shape the result is fully
/// deterministic — just not bit-identical to the two-rounding kernels.
#[inline(always)]
fn fast_row(
    k0: usize,
    k1: usize,
    a_at: impl Fn(usize) -> f32,
    b: &[f32],
    n: usize,
    out_row: &mut [f32],
) {
    const JW: usize = 4 * LANES;
    let mut j = 0;
    while j + JW <= n {
        let mut c0 = [F32x8::default(); 4];
        for (q, cq) in c0.iter_mut().enumerate() {
            *cq = F32x8::load(&out_row[j + q * LANES..]);
        }
        let mut c1 = [F32x8::splat(0.0); 4];
        let mut kk = k0;
        while kk + 2 <= k1 {
            let av0 = F32x8::splat(a_at(kk));
            let av1 = F32x8::splat(a_at(kk + 1));
            let r0: &[f32; JW] = b[kk * n + j..kk * n + j + JW].try_into().unwrap();
            let r1: &[f32; JW] = b[(kk + 1) * n + j..(kk + 1) * n + j + JW].try_into().unwrap();
            c0[0].fma_assign(av0, F32x8::load(&r0[0..]));
            c0[1].fma_assign(av0, F32x8::load(&r0[LANES..]));
            c0[2].fma_assign(av0, F32x8::load(&r0[2 * LANES..]));
            c0[3].fma_assign(av0, F32x8::load(&r0[3 * LANES..]));
            c1[0].fma_assign(av1, F32x8::load(&r1[0..]));
            c1[1].fma_assign(av1, F32x8::load(&r1[LANES..]));
            c1[2].fma_assign(av1, F32x8::load(&r1[2 * LANES..]));
            c1[3].fma_assign(av1, F32x8::load(&r1[3 * LANES..]));
            kk += 2;
        }
        if kk < k1 {
            let av = F32x8::splat(a_at(kk));
            let r: &[f32; JW] = b[kk * n + j..kk * n + j + JW].try_into().unwrap();
            c0[0].fma_assign(av, F32x8::load(&r[0..]));
            c0[1].fma_assign(av, F32x8::load(&r[LANES..]));
            c0[2].fma_assign(av, F32x8::load(&r[2 * LANES..]));
            c0[3].fma_assign(av, F32x8::load(&r[3 * LANES..]));
        }
        for (q, cq) in c0.iter_mut().enumerate() {
            cq.add_assign(c1[q]);
            cq.store(&mut out_row[j + q * LANES..]);
        }
        j += JW;
    }
    while j + LANES <= n {
        let mut c = F32x8::load(&out_row[j..]);
        for kk in k0..k1 {
            c.fma_assign(F32x8::splat(a_at(kk)), F32x8::load(&b[kk * n + j..]));
        }
        c.store(&mut out_row[j..]);
        j += LANES;
    }
    while j < n {
        let mut acc = out_row[j];
        for kk in k0..k1 {
            acc = a_at(kk).mul_add(b[kk * n + j], acc);
        }
        out_row[j] = acc;
        j += 1;
    }
}

/// The [`fast_nn`] loop body, generic over the target features of its
/// instantiation site.
#[inline(always)]
fn fast_nn_body(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            fast_row(kb, kend, |kk| a_row[kk], b, n, out_row);
        }
    }
}

/// [`fast_nn_body`] compiled with AVX2+FMA enabled, so `f32::mul_add`
/// lowers to the `vfmadd` instructions.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fast_nn_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    fast_nn_body(m, k, n, a, b, out);
}

/// Serial FMA-contracted `C += A·B` fast kernel (see the module docs on
/// the fast-math tier). Deterministic for a given shape on every
/// platform, within [`error_bound`] of [`naive_nn`], but **not**
/// bit-identical to it. Callable directly (the error-bound property
/// tests do); the dispatchers only route here when
/// [`fast_math_enabled`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn fast_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "fast_nn");
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: AVX2+FMA support was just verified at run time.
        unsafe { fast_nn_avx2(m, k, n, a, b, out) };
        return;
    }
    fast_nn_body(m, k, n, a, b, out);
}

/// The fast `tn` loop over output rows `i0..i1`, generic over the
/// target features of its instantiation site.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fast_tn_cols_body(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    for i in i0..i1 {
        let out_row = &mut out[(i - i0) * n..(i - i0 + 1) * n];
        for kb in (0..ra).step_by(KC) {
            let kend = (kb + KC).min(ra);
            fast_row(kb, kend, |kk| a[kk * ca + i], b, n, out_row);
        }
    }
}

/// [`fast_tn_cols_body`] compiled with AVX2+FMA enabled.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn fast_tn_cols_avx2(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    fast_tn_cols_body(ra, ca, n, a, b, i0, i1, out);
}

/// The fast `tn` band kernel (output rows `i0..i1` into a band slice).
#[allow(clippy::too_many_arguments)]
fn fast_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: AVX2+FMA support was just verified at run time.
        unsafe { fast_tn_cols_avx2(ra, ca, n, a, b, i0, i1, out) };
        return;
    }
    fast_tn_cols_body(ra, ca, n, a, b, i0, i1, out);
}

/// Serial FMA-contracted `C += Aᵀ·B` fast kernel — the `tn` counterpart
/// of [`fast_nn`], with the same determinism and [`error_bound`]
/// contract.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn fast_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::fast_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::fast_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::fast_tn: C is not {ca}x{n}");
    fast_tn_cols(ra, ca, n, a, b, 0, ca, out);
}

/// Worst-case relative coefficient on `|fast − exact|` for one output
/// element of a depth-`k` product: the absolute difference is at most
/// `error_bound(k) · (|c₀| + Σᵢ |aᵢ|·|bᵢ|)` where `c₀` is the element's
/// prior value.
///
/// Standard running-error analysis (Higham, *Accuracy and Stability of
/// Numerical Algorithms*, §3.1): any summation of the `k` rounded
/// products plus the prior value — in any association order, with one
/// *or* two roundings per product — differs from the true value by at
/// most `γ_{k+2} · (|c₀| + Σ|aᵢ||bᵢ|)`, where `γ_m = m·u / (1 − m·u)`
/// and `u = 2⁻²⁴` is the `f32` unit roundoff (the `+2` absorbs the
/// fast path's final chain-combine add and the seed). The exact and
/// fast results are each within that envelope of the true value, so
/// their mutual distance is within twice it. Returned as `f64` so the
/// bound itself carries no rounding slack.
pub fn error_bound(k: usize) -> f64 {
    let u = (-24f64).exp2();
    let m = (k + 2) as f64;
    let g = m * u / (1.0 - m * u);
    2.0 * g
}

/// The serial `nn` kernel the dispatchers (and their parallel bands)
/// run: 8-wide unless `BAFFLE_NO_SIMD` pins the scalar blocked kernel,
/// FMA-contracted when the opt-in fast-math tier is on.
#[inline]
fn kernel_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    if simd_enabled() {
        if fast_math_enabled() {
            fast_nn(m, k, n, a, b, out);
        } else {
            simd_nn(m, k, n, a, b, out);
        }
    } else {
        blocked_nn(m, k, n, a, b, out);
    }
}

/// The serial `tn` band kernel the dispatchers run (see [`kernel_nn`]).
#[inline]
#[allow(clippy::too_many_arguments)]
fn kernel_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    if simd_enabled() {
        if fast_math_enabled() {
            fast_tn_cols(ra, ca, n, a, b, i0, i1, out);
        } else {
            simd_tn_cols(ra, ca, n, a, b, i0, i1, out);
        }
    } else {
        blocked_tn_cols(ra, ca, n, a, b, i0, i1, out);
    }
}

/// Transposes the row-major `rows×cols` slice `src` into `dst`
/// (`cols×rows`). Used by [`nt`] to reach the blocked kernel.
fn transpose_into(rows: usize, cols: usize, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            dst[j * rows + i] = src[i * cols + j];
        }
    }
}

/// `C += A·B` dispatcher: serial kernel (SIMD unless `BAFFLE_NO_SIMD`)
/// for small products, row-banded across the worker pool once `m·k·n`
/// reaches the parallel threshold. Always bit-identical to [`naive_nn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "nn");
    nn_dispatch(m, k, n, a, b, out, true);
}

/// The [`nn`] dispatch body; `tally` lets [`concat_nn`] reuse it while
/// counting the call under `batched` only.
fn nn_dispatch(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], tally: bool) {
    let t = pool::threads();
    if t > 1 && m >= 2 && work(m, k, n) >= PAR_MIN_WORK {
        if tally {
            HITS_BANDED.fetch_add(1, Ordering::Relaxed);
        }
        let band_rows = m.div_ceil(t.min(m));
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(band_rows * n)
            .enumerate()
            .map(|(band, chunk)| {
                let i0 = band * band_rows;
                let rows = chunk.len() / n;
                let a_band = &a[i0 * k..(i0 + rows) * k];
                Box::new(move || kernel_nn(rows, k, n, a_band, b, chunk)) as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        if tally {
            count_serial();
        }
        kernel_nn(m, k, n, a, b, out);
    }
}

/// Fused multi-model product `C += A·[B₀ | B₁ | … ]`: one shared left
/// operand against `nb` horizontally-concatenated `k×(n/nb)` right
/// operands (the caller packs them; `n` is the concatenated width).
/// Mathematically this *is* [`nn`] — column `j` of `C` depends only on
/// column `j` of the concatenated `B`, accumulated in the same
/// ascending-`k` order as a per-model call — so per-model slices of the
/// output are bit-identical to `nb` separate [`nn`] calls on the
/// default path. The point of the separate entry is amortisation (the
/// `A` traversal, cache traffic and pool hand-off are paid once for all
/// models) and attribution: calls tally under `batched` in
/// [`dispatch_counts`], not under the serial/banded counters.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn concat_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "concat_nn");
    HITS_BATCHED.fetch_add(1, Ordering::Relaxed);
    nn_dispatch(m, k, n, a, b, out, false);
}

/// Block-diagonal multi-model product: `nb` independent `C_i += A_i·B_i`
/// products (`A_i` is `m×k`, `B_i` is `k×n`), with all `A_i`, `B_i` and
/// `C_i` laid out contiguously in their respective slices. Each block
/// is computed by the serial kernel in the same per-element
/// accumulation order as a standalone [`nn`] call, so on the default
/// path every block is bit-identical to its sequential counterpart;
/// blocks are fanned out across the worker pool when the total work
/// clears the parallel threshold (blocks touch disjoint output rows).
/// Tallies under `batched` in [`dispatch_counts`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn batched_nn(nb: usize, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), nb * m * k, "gemm::batched_nn: A is not {nb}·{m}x{k}");
    assert_eq!(b.len(), nb * k * n, "gemm::batched_nn: B is not {nb}·{k}x{n}");
    assert_eq!(out.len(), nb * m * n, "gemm::batched_nn: C is not {nb}·{m}x{n}");
    HITS_BATCHED.fetch_add(1, Ordering::Relaxed);
    if nb == 0 || m * n == 0 {
        return;
    }
    let t = pool::threads();
    if t > 1 && nb >= 2 && work(m, k, n).saturating_mul(nb) >= PAR_MIN_WORK {
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(m * n)
            .enumerate()
            .map(|(bi, chunk)| {
                let a_blk = &a[bi * m * k..(bi + 1) * m * k];
                let b_blk = &b[bi * k * n..(bi + 1) * k * n];
                Box::new(move || kernel_nn(m, k, n, a_blk, b_blk, chunk)) as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        for bi in 0..nb {
            kernel_nn(
                m,
                k,
                n,
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * k * n..(bi + 1) * k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
            );
        }
    }
}

/// `C += Aᵀ·B` dispatcher: serial kernel (SIMD unless `BAFFLE_NO_SIMD`)
/// for small products, output-row-banded across the worker pool for
/// large ones. Always bit-identical to [`naive_tn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::tn: C is not {ca}x{n}");
    let t = pool::threads();
    if t > 1 && ca >= 2 && work(ra, ca, n) >= PAR_MIN_WORK {
        HITS_BANDED.fetch_add(1, Ordering::Relaxed);
        let band_rows = ca.div_ceil(t.min(ca));
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(band_rows * n)
            .enumerate()
            .map(|(band, chunk)| {
                let i0 = band * band_rows;
                let i1 = i0 + chunk.len() / n;
                Box::new(move || kernel_tn_cols(ra, ca, n, a, b, i0, i1, chunk))
                    as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        count_serial();
        kernel_tn_cols(ra, ca, n, a, b, 0, ca, out);
    }
}

/// `C += A·Bᵀ` dispatcher (`B` is `n×k`): tiny products run the direct
/// dot-product loop (tallied under `blocked` — it is the serial scalar
/// path); larger ones pack `Bᵀ` once and go through [`nn`] (and so
/// inherit its SIMD kernel, banding and tally). Always bit-identical to
/// [`naive_nt`] — the packed path performs the same per-element adds in
/// the same k order.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm::nt: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm::nt: B is not {n}x{k}");
    assert_eq!(out.len(), m * n, "gemm::nt: C is not {m}x{n}");
    if work(m, k, n) < NT_PACK_MIN_WORK {
        HITS_BLOCKED.fetch_add(1, Ordering::Relaxed);
        naive_nt(m, k, n, a, b, out);
    } else {
        // The Bᵀ pack scratch is thread-local so the training hot path
        // (Dense::backward's dx = δ·Wᵀ lands exactly at the pack
        // threshold for common shapes) stops heap-allocating per call.
        // `transpose_into` overwrites every element, so reuse cannot
        // change any result; nothing below re-enters `nt`, so the
        // RefCell can never be borrowed twice.
        NT_PACK_SCRATCH.with(|cell| {
            let mut bt = cell.borrow_mut();
            bt.resize(k * n, 0.0);
            transpose_into(n, k, b, &mut bt);
            nn(m, k, n, a, &bt, out);
        });
    }
}

thread_local! {
    /// Reusable Bᵀ pack buffer for [`nt`]'s blocked path.
    static NT_PACK_SCRATCH: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill with a sprinkling of exact zeros
    /// (the seed kernel's zero-skip made zeros a historical edge case).
    fn fill(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 33) as i32 % 1000) as f32 / 250.0;
                if v.abs() < 0.01 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn assert_bits_eq(x: &[f32], y: &[f32], what: &str) {
        assert_eq!(x.len(), y.len());
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
        }
    }

    /// Whether the dispatchers currently route to the fast kernels (the
    /// CI `BAFFLE_FAST_MATH=1` re-run flips this for the whole suite).
    fn fast_dispatch() -> bool {
        fast_math_enabled() && simd_enabled()
    }

    /// Reference for the *dispatched* `nn` path: the naive oracle by
    /// default; under the opt-in fast tier the dispatched output must
    /// instead match the (deterministic) fast kernel bitwise.
    fn dispatched_nn_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        if fast_dispatch() {
            fast_nn(m, k, n, a, b, out);
        } else {
            naive_nn(m, k, n, a, b, out);
        }
    }

    fn dispatched_tn_ref(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        if fast_dispatch() {
            fast_tn(ra, ca, n, a, b, out);
        } else {
            naive_tn(ra, ca, n, a, b, out);
        }
    }

    /// [`nt`] keeps its tiny direct path on the exact kernel even under
    /// fast math; only the packed path inherits the fast `nn` kernel.
    fn dispatched_nt_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        if fast_dispatch() && work(m, k, n) >= NT_PACK_MIN_WORK {
            let mut bt = vec![0.0f32; k * n];
            transpose_into(n, k, b, &mut bt);
            fast_nn(m, k, n, a, &bt, out);
        } else {
            naive_nt(m, k, n, a, b, out);
        }
    }

    /// Shapes covering 1×N / N×1 degeneracies, non-multiple-of-tile
    /// edges, SIMD tail widths (n ≡ 1, 7, 17 mod 8/32), and one product
    /// large enough to band across the pool.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 40, 1),
        (1, 7, 300),
        (300, 7, 1),
        (3, 5, 2),
        (33, 65, 17),
        (100, 130, 70),
        (31, 257, 129),
        (150, 70, 130),
    ];

    #[test]
    fn blocked_and_dispatched_nn_match_naive_exactly() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut want = vec![0.0f32; m * n];
            naive_nn(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            blocked_nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("blocked_nn {m}x{k}x{n}"));
            let mut got = vec![0.0f32; m * n];
            simd_nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("simd_nn {m}x{k}x{n}"));
            let mut want = vec![0.0f32; m * n];
            dispatched_nn_ref(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_and_dispatched_tn_match_naive_exactly() {
        for &(ra, ca, n) in SHAPES {
            let a = fill(ra * ca, 3);
            let b = fill(ra * n, 4);
            let mut want = vec![0.0f32; ca * n];
            naive_tn(ra, ca, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; ca * n];
            blocked_tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("blocked_tn {ra}x{ca}x{n}"));
            let mut got = vec![0.0f32; ca * n];
            simd_tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("simd_tn {ra}x{ca}x{n}"));
            let mut want = vec![0.0f32; ca * n];
            dispatched_tn_ref(ra, ca, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; ca * n];
            tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("tn {ra}x{ca}x{n}"));
        }
    }

    #[test]
    fn dispatched_nt_matches_naive_exactly() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 5);
            let b = fill(n * k, 6);
            let mut want = vec![0.0f32; m * n];
            dispatched_nt_ref(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            nt(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("nt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn kernels_accumulate_into_existing_output() {
        let (m, k, n) = (5, 9, 11);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let mut want = fill(m * n, 9);
        let mut blocked = want.clone();
        let mut simd = want.clone();
        naive_nn(m, k, n, &a, &b, &mut want);
        blocked_nn(m, k, n, &a, &b, &mut blocked);
        assert_bits_eq(&want, &blocked, "accumulate blocked");
        simd_nn(m, k, n, &a, &b, &mut simd);
        assert_bits_eq(&want, &simd, "accumulate simd");
    }

    #[test]
    fn parallel_band_boundaries_are_exact() {
        // Wide enough that every band split the pool can pick still has
        // non-multiple-of-tile rows at its edges.
        let (m, k, n) = (151, 71, 131);
        let a = fill(m * k, 10);
        let b = fill(k * n, 11);
        let mut want = vec![0.0f32; m * n];
        dispatched_nn_ref(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got, "banded nn 151x71x131");
    }

    #[test]
    fn deep_k_sweeps_are_exact_across_the_kc_boundary() {
        // k > KC forces the SIMD kernels to store and reload their
        // accumulators between sweeps; the round-trip must be invisible.
        let (m, k, n) = (3, 2 * KC + 37, 41);
        let a = fill(m * k, 12);
        let b = fill(k * n, 13);
        let mut want = vec![0.0f32; m * n];
        naive_nn(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        simd_nn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got, "simd_nn deep k");
        let mut want = vec![0.0f32; n * m];
        naive_tn(k, n, m, &b, &a, &mut want);
        let mut got = vec![0.0f32; n * m];
        simd_tn(k, n, m, &b, &a, &mut got);
        assert_bits_eq(&want, &got, "simd_tn deep k");
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut out = vec![0.0f32; 0];
        nn(0, 3, 0, &[], &fill(0, 1), &mut out);
        let mut out = vec![1.5f32; 4];
        nn(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![1.5; 4], "k = 0 leaves C untouched");
        let mut out = vec![2.5f32; 4];
        nt(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![2.5; 4], "nt with k = 0 leaves C untouched");
    }

    #[test]
    fn dispatch_counters_are_monotone_and_attributed() {
        // Counters are process-global and other tests run concurrently,
        // so assert monotone growth of the expected counter only.
        let before = dispatch_counts();
        let (m, k, n) = (4, 6, 5);
        let a = fill(m * k, 20);
        let b = fill(k * n, 21);
        let mut out = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut out);
        let after = dispatch_counts();
        let serial_before = before.blocked + before.simd + before.fma;
        let serial_after = after.blocked + after.simd + after.fma;
        assert!(serial_after >= serial_before + 1, "serial dispatch not counted");

        let (m, k, n) = (64, 64, 1024); // m·k·n = 2^22 ≥ PAR_MIN_WORK
        let a = fill(m * k, 22);
        let b = fill(k * n, 23);
        let mut out = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut out);
        let banded = dispatch_counts();
        if pool::threads() > 1 {
            assert!(banded.banded >= after.banded + 1, "banded dispatch not counted");
        } else {
            assert!(banded.blocked + banded.simd + banded.fma >= serial_after + 1);
        }
    }

    /// f64 reference for the fast-kernel error envelope: per element,
    /// `|c₀| + Σ|aᵢ|·|bᵢ|` of the `nn` product.
    fn abs_envelope_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c0: &[f32]) -> Vec<f64> {
        let mut s: Vec<f64> = c0.iter().map(|v| v.abs() as f64).collect();
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk].abs() as f64;
                for j in 0..n {
                    s[i * n + j] += av * b[kk * n + j].abs() as f64;
                }
            }
        }
        s
    }

    #[test]
    fn fast_nn_is_deterministic_and_within_the_error_bound() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 30);
            let b = fill(k * n, 31);
            let c0 = fill(m * n, 32);
            let mut exact = c0.clone();
            naive_nn(m, k, n, &a, &b, &mut exact);
            let mut got = c0.clone();
            fast_nn(m, k, n, &a, &b, &mut got);
            let mut again = c0.clone();
            fast_nn(m, k, n, &a, &b, &mut again);
            assert_bits_eq(&got, &again, &format!("fast_nn determinism {m}x{k}x{n}"));
            let env = abs_envelope_nn(m, k, n, &a, &b, &c0);
            let bound = error_bound(k);
            for i in 0..m * n {
                let diff = (got[i] as f64 - exact[i] as f64).abs();
                assert!(
                    diff <= bound * env[i],
                    "fast_nn {m}x{k}x{n} elem {i}: |{}-{}| = {diff} > {}",
                    got[i],
                    exact[i],
                    bound * env[i]
                );
            }
        }
    }

    #[test]
    fn fast_tn_is_deterministic_and_within_the_error_bound() {
        for &(ra, ca, n) in SHAPES {
            let a = fill(ra * ca, 33);
            let b = fill(ra * n, 34);
            let mut exact = vec![0.0f32; ca * n];
            naive_tn(ra, ca, n, &a, &b, &mut exact);
            let mut got = vec![0.0f32; ca * n];
            fast_tn(ra, ca, n, &a, &b, &mut got);
            let mut again = vec![0.0f32; ca * n];
            fast_tn(ra, ca, n, &a, &b, &mut again);
            assert_bits_eq(&got, &again, &format!("fast_tn determinism {ra}x{ca}x{n}"));
            // Envelope of Aᵀ·B: transpose A and reuse the nn walk.
            let mut at = vec![0.0f32; ra * ca];
            transpose_into(ra, ca, &a, &mut at);
            let env = abs_envelope_nn(ca, ra, n, &at, &b, &vec![0.0f32; ca * n]);
            let bound = error_bound(ra);
            for i in 0..ca * n {
                let diff = (got[i] as f64 - exact[i] as f64).abs();
                assert!(diff <= bound * env[i], "fast_tn {ra}x{ca}x{n} elem {i}");
            }
        }
    }

    #[test]
    fn error_bound_is_positive_tight_and_monotone() {
        assert!(error_bound(0) > 0.0);
        for k in [1usize, 7, 64, 1000, 100_000] {
            assert!(error_bound(k) > 0.0);
            assert!(error_bound(k) < error_bound(k + 1));
        }
        // Small enough to be a meaningful acceptance criterion at the
        // depths validation actually runs (k ≤ a few thousand).
        assert!(error_bound(4096) < 1e-3);
    }

    #[test]
    fn concat_nn_matches_per_model_products() {
        let (nb, m, k, ne) = (3usize, 7usize, 9usize, 11usize);
        let a = fill(m * k, 40);
        let bs: Vec<Vec<f32>> = (0..nb).map(|bi| fill(k * ne, 41 + bi as u64)).collect();
        // Pack the per-model B's side by side: row kk of the wide B is
        // [B₀[kk] | B₁[kk] | B₂[kk]].
        let n = nb * ne;
        let mut wide = vec![0.0f32; k * n];
        for kk in 0..k {
            for (bi, bm) in bs.iter().enumerate() {
                wide[kk * n + bi * ne..kk * n + (bi + 1) * ne]
                    .copy_from_slice(&bm[kk * ne..(kk + 1) * ne]);
            }
        }
        let mut got = vec![0.0f32; m * n];
        concat_nn(m, k, n, &a, &wide, &mut got);
        if fast_dispatch() {
            // The fast kernel's chain split depends on the column index
            // within the (wider) product, so per-model bit-identity is
            // deliberately relinquished; the dispatched result must
            // still equal the fast kernel on the same wide shape.
            let mut want = vec![0.0f32; m * n];
            fast_nn(m, k, n, &a, &wide, &mut want);
            assert_bits_eq(&want, &got, "concat_nn fast");
            return;
        }
        for (bi, bm) in bs.iter().enumerate() {
            let mut want = vec![0.0f32; m * ne];
            nn(m, k, ne, &a, bm, &mut want);
            for i in 0..m {
                for j in 0..ne {
                    assert_eq!(
                        got[i * n + bi * ne + j].to_bits(),
                        want[i * ne + j].to_bits(),
                        "concat_nn model {bi} elem ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_nn_blocks_match_standalone_products_exactly() {
        // Blocks run the same serial kernel at the same shape as a
        // standalone call, so this holds bitwise on every tier —
        // including fast math (the chain split is shape-determined).
        for &(nb, m, k, n) in &[(1usize, 5usize, 9usize, 11usize), (4, 33, 17, 40), (3, 1, 7, 1)] {
            let a = fill(nb * m * k, 50);
            let b = fill(nb * k * n, 51);
            let c0 = fill(nb * m * n, 52);
            let mut got = c0.clone();
            batched_nn(nb, m, k, n, &a, &b, &mut got);
            for bi in 0..nb {
                let mut want = c0[bi * m * n..(bi + 1) * m * n].to_vec();
                nn(
                    m,
                    k,
                    n,
                    &a[bi * m * k..(bi + 1) * m * k],
                    &b[bi * k * n..(bi + 1) * k * n],
                    &mut want,
                );
                assert_bits_eq(
                    &want,
                    &got[bi * m * n..(bi + 1) * m * n],
                    &format!("batched_nn block {bi}"),
                );
            }
        }
    }

    #[test]
    fn batched_nn_handles_degenerate_shapes() {
        let mut out = vec![0.0f32; 0];
        batched_nn(0, 3, 4, 5, &[], &[], &mut out);
        batched_nn(2, 0, 4, 5, &[], &fill(2 * 4 * 5, 1), &mut out);
        let mut out = vec![1.25f32; 2 * 3 * 2];
        batched_nn(2, 3, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![1.25f32; 12], "k = 0 blocks leave C untouched");
    }

    #[test]
    fn batched_entry_points_tally_under_batched() {
        let before = dispatch_counts();
        let (m, k, ne) = (4, 6, 5);
        let a = fill(m * k, 60);
        let wide = fill(k * ne * 2, 61);
        let mut out = vec![0.0f32; m * ne * 2];
        concat_nn(m, k, ne * 2, &a, &wide, &mut out);
        let b = fill(2 * k * ne, 62);
        let a2 = fill(2 * m * k, 63);
        let mut out = vec![0.0f32; 2 * m * ne];
        batched_nn(2, m, k, ne, &a2, &b, &mut out);
        let after = dispatch_counts();
        assert!(after.batched >= before.batched + 2, "batched calls not tallied");
    }
}
