//! Regenerates **Table I**: FP/FN rates of BAFFLE-C, BAFFLE-S and BAFFLE
//! for look-back window ℓ ∈ {10, 20, 30} and the paper's three data
//! splits, on both datasets, with the default quorum q = 5.
//!
//! Run with `cargo run --release -p baffle-core --bin table1_lookback`
//! (`--fast` for a smoke run, `--reps N` to change the repetition count).

use baffle_core::exp::{
    base_config, cell, repeat_rates, server_shares, split_label, ExpArgs, Table,
};
use baffle_core::{DatasetKind, DefenseMode};

fn main() {
    let args = ExpArgs::from_env();
    let lookbacks: &[usize] = if args.fast { &[10, 20] } else { &[10, 20, 30] };

    for dataset in [DatasetKind::CifarLike, DatasetKind::FemnistLike] {
        let mut table = Table::new(
            &format!("Table I ({dataset:?}): detection rates vs look-back window ℓ, q = 5"),
            &["split", "ℓ", "FP C", "FP S", "FP C+S", "FN C", "FN S", "FN C+S"],
        );
        for share in server_shares(dataset) {
            for &ell in lookbacks {
                let mut cells = vec![split_label(share), ell.to_string()];
                let mut fps = Vec::new();
                let mut fns = Vec::new();
                for mode in [DefenseMode::ClientsOnly, DefenseMode::ServerOnly, DefenseMode::Both] {
                    let mut config = base_config(dataset, args.seed);
                    config.server_share = share;
                    config.lookback = ell;
                    config.warmup_rounds = ell + 1;
                    config.defense = mode;
                    if args.fast {
                        config.rounds = 20;
                        config.poison_rounds = vec![10, 15];
                    }
                    let (fp, fnr) = repeat_rates(&config, &args);
                    fps.push(cell(&fp));
                    fns.push(cell(&fnr));
                }
                cells.extend(fps);
                cells.extend(fns);
                table.row(cells);
            }
        }
        table.emit(&args);
    }
}
