//! Pure-Rust neural-network training substrate for the BaFFLe reproduction.
//!
//! The BaFFLe defense never inspects model internals — it only consumes the
//! per-class error rates of the *global* model on validation data. This
//! crate therefore provides the smallest trainable classifier family that
//! reproduces the dynamics the paper relies on: multi-layer perceptrons
//! ([`Mlp`]) trained with mini-batch SGD on a softmax cross-entropy loss,
//! with **flat parameter access** ([`Model::params`] / [`Model::set_params`])
//! so the federated-learning layer can average, scale and mask models as
//! plain `Vec<f32>`s — exactly how FedAvg treats a PyTorch state dict.
//!
//! # Example
//!
//! ```
//! use baffle_nn::{Mlp, MlpSpec, Sgd, Model};
//! use baffle_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // XOR-ish toy problem: 2 inputs, 2 classes.
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
//! let y = vec![0, 1, 1, 0];
//! let mut model = Mlp::new(&MlpSpec::new(2, &[16], 2), &mut rng);
//! let mut opt = Sgd::new(0.5);
//! for _ in 0..500 {
//!     model.train_epoch(&x, &y, 4, &mut opt, &mut rng);
//! }
//! assert_eq!(model.predict_batch(&x), y);
//! ```

mod activation;
mod cnn;
pub mod conv;
pub mod eval;
mod layer;
mod loss;
mod mlp;
mod optimizer;
pub mod wire;

pub use activation::Activation;
pub use cnn::{Cnn, CnnSpec};
pub use eval::ConfusionMatrix;
pub use layer::Dense;
pub use loss::{softmax, softmax_cross_entropy, softmax_cross_entropy_into};
pub use mlp::{Mlp, MlpSpec};
pub use optimizer::Sgd;

use baffle_tensor::Matrix;

/// A trainable classifier whose parameters can be flattened to a single
/// `Vec<f32>` — the representation the federated-learning layer aggregates.
///
/// The trait is object-safe so heterogeneous experiment drivers can box
/// models.
pub trait Model: Send {
    /// Total number of scalar parameters.
    fn num_params(&self) -> usize;

    /// All parameters flattened into a single vector, in a stable order.
    fn params(&self) -> Vec<f32>;

    /// Overwrites all parameters from a flat vector (inverse of
    /// [`Model::params`]).
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != self.num_params()`.
    fn set_params(&mut self, p: &[f32]);

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Predicted class index for each row of `x`.
    ///
    /// Implementations must be *row-wise*: the prediction for a row may
    /// not depend on which other rows share the batch. Parallel
    /// evaluation ([`ConfusionMatrix::from_model`]) relies on this to
    /// split large datasets into chunks without changing any result.
    fn predict_batch(&self, x: &Matrix) -> Vec<usize>;

    /// Predicted class index for rows `r0..r1` of `x`.
    ///
    /// Equivalent to `predict_batch` on a copy of those rows — the default
    /// does exactly that — but implementations may evaluate the row range
    /// in place (e.g. via [`baffle_tensor::MatrixView`]) to avoid the copy.
    /// Because predictions are row-wise, the result is bit-identical to
    /// the corresponding slice of `predict_batch(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > x.rows()`.
    fn predict_rows(&self, x: &Matrix, r0: usize, r1: usize) -> Vec<usize> {
        self.predict_batch(&x.view_rows(r0, r1).to_matrix())
    }

    /// Predicted class indices for rows `r0..r1` of `x` under each of
    /// `models`, which must all share this model's architecture.
    ///
    /// Returns one prediction vector per model, in `models` order. The
    /// default evaluates each model separately; architectures with a
    /// batched forward pass (see [`Mlp`] and [`Cnn`]) override this to
    /// fuse the fan-out into wide/stacked GEMM calls whose per-model
    /// results are bit-identical to the sequential path.
    ///
    /// Not object-safe (`Self: Sized`); dynamic callers fall back to
    /// per-model [`Model::predict_rows`].
    fn predict_multi(models: &[&Self], x: &Matrix, r0: usize, r1: usize) -> Vec<Vec<usize>>
    where
        Self: Sized,
    {
        models.iter().map(|m| m.predict_rows(x, r0, r1)).collect()
    }
}
