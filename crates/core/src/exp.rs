//! Support for the experiment binaries (`src/bin/*`): CLI parsing, result
//! tables and repetition sweeps.
//!
//! Every experiment binary accepts:
//!
//! - `--seed <u64>`: base seed (default 1);
//! - `--reps <usize>`: repetitions averaged per cell (default 5, the
//!   paper's count);
//! - `--fast`: shrink the workload (fewer reps and rounds) for smoke
//!   runs;
//! - `--out <path>`: also write the printed table to a file.

use crate::metrics::mean_std;
use crate::{Simulation, SimulationConfig};
use std::fmt::Write as _;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpArgs {
    /// Base seed; repetition `i` uses `seed + 1000·i`.
    pub seed: u64,
    /// Repetitions per configuration cell.
    pub reps: usize,
    /// Smoke-test mode (binaries shrink their workload).
    pub fast: bool,
    /// Optional output file for the rendered table.
    pub out: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self { seed: 1, reps: 5, fast: false, out: None }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these binaries
    /// are developer tools; failing loudly is the right behaviour).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a u64 value"));
                }
                "--reps" => {
                    out.reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--reps needs a usize value"));
                }
                "--fast" => out.fast = true,
                "--out" => {
                    out.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
                }
                "--help" | "-h" => {
                    eprintln!("options: --seed <u64> --reps <n> --fast --out <path>");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        if out.fast {
            out.reps = out.reps.min(2);
        }
        out
    }

    /// Parses the process's actual CLI arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Effective repetition count.
    pub fn reps(&self) -> usize {
        self.reps.max(1)
    }
}

/// The paper's client/server data splits (§VI-B): the fraction of all
/// data held by the **server**, per dataset. Clients jointly hold the
/// rest (90-10%, 95-5%, 99-1% for CIFAR; 99-1%, 99.5-0.5%, 99.9-0.1% for
/// FEMNIST).
pub fn server_shares(dataset: crate::DatasetKind) -> [f64; 3] {
    match dataset {
        crate::DatasetKind::CifarLike => [0.10, 0.05, 0.01],
        crate::DatasetKind::FemnistLike => [0.01, 0.005, 0.001],
    }
}

/// Human-readable split label ("90-10%" etc.) for a server share.
pub fn split_label(server_share: f64) -> String {
    let c = 100.0 * (1.0 - server_share);
    let s = 100.0 * server_share;
    format!("{c}-{s}%")
}

/// Base per-dataset configuration used by the table/figure binaries.
pub fn base_config(dataset: crate::DatasetKind, seed: u64) -> SimulationConfig {
    match dataset {
        crate::DatasetKind::CifarLike => SimulationConfig::cifar_like(seed),
        crate::DatasetKind::FemnistLike => SimulationConfig::femnist_like(seed),
    }
}

/// Runs `reps` simulations of `config` with derived seeds and returns
/// `(fp_rates, fn_rates)` across repetitions.
pub fn repeat_rates(config: &SimulationConfig, args: &ExpArgs) -> (Vec<f64>, Vec<f64>) {
    let mut fps = Vec::with_capacity(args.reps());
    let mut fns = Vec::with_capacity(args.reps());
    for i in 0..args.reps() {
        let mut c = config.clone();
        c.seed = args.seed.wrapping_add(1000 * i as u64);
        let report = Simulation::new(c).run();
        fps.push(report.fp_rate());
        fns.push(report.fn_rate());
    }
    (fps, fns)
}

/// Formats a `mean ± std` cell like the paper's tables.
pub fn cell(values: &[f64]) -> String {
    let (m, s) = mean_std(values);
    if s < 5e-4 {
        format!("{m:.3}")
    } else {
        format!("{m:.3} ±{s:.3}")
    }
}

/// A simple fixed-width text table accumulated row by row and printed to
/// stdout (and optionally a file).
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(c.len()));
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout and, if requested, writes to the `--out` path.
    /// The first table a process emits truncates the file; subsequent
    /// tables append, so multi-table binaries keep all their output.
    pub fn emit(&self, args: &ExpArgs) {
        use std::io::Write as _;
        let rendered = self.render();
        println!("{rendered}");
        if let Some(path) = &args.out {
            static TRUNCATED: std::sync::OnceLock<
                parking_lot::Mutex<std::collections::HashSet<String>>,
            > = std::sync::OnceLock::new();
            let truncated = TRUNCATED.get_or_init(Default::default);
            let fresh = truncated.lock().insert(path.clone());
            let result = std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(fresh)
                .append(!fresh)
                .open(path)
                .and_then(|mut f| writeln!(f, "{rendered}"));
            if let Err(e) = result {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// Renders a time series as a compact ASCII chart (one row per series),
/// for figure binaries that plot accuracies over rounds.
///
/// Values are expected in `[0, 1]`; each point maps to a glyph in nine
/// height levels, with `!` marking rounds listed in `marks` (e.g.
/// injection rounds).
///
/// # Example
///
/// ```
/// use baffle_core::exp::ascii_series;
///
/// let s = ascii_series("main acc", &[0.1, 0.5, 0.9], &[2]);
/// assert!(s.contains("main acc"));
/// ```
pub fn ascii_series(label: &str, values: &[f64], marks: &[usize]) -> String {
    const GLYPHS: [char; 9] = ['_', '.', ',', '-', '~', '=', '*', '#', '@'];
    let mut line = String::new();
    for (i, &v) in values.iter().enumerate() {
        if marks.contains(&(i + 1)) {
            line.push('!');
        }
        let level = ((v.clamp(0.0, 1.0)) * (GLYPHS.len() - 1) as f64).round() as usize;
        line.push(GLYPHS[level]);
    }
    format!("{label:<22} |{line}|")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> ExpArgs {
        ExpArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a, ExpArgs::default());
        assert_eq!(a.reps(), 5);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--seed", "9", "--reps", "2", "--out", "/tmp/t.txt"]);
        assert_eq!(a.seed, 9);
        assert_eq!(a.reps, 2);
        assert_eq!(a.out.as_deref(), Some("/tmp/t.txt"));
        assert!(!a.fast);
    }

    #[test]
    fn fast_caps_reps() {
        let a = parse(&["--fast", "--reps", "10"]);
        assert!(a.fast);
        assert_eq!(a.reps, 2);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    fn cell_formats_mean_and_std() {
        assert_eq!(cell(&[0.5, 0.5]), "0.500");
        let c = cell(&[0.0, 1.0]);
        assert!(c.starts_with("0.500 ±0.5"), "{c}");
    }

    #[test]
    fn emit_truncates_once_then_appends() {
        let path =
            std::env::temp_dir().join(format!("baffle_emit_test_{}.txt", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        std::fs::write(&path, "stale content from a previous run\n").unwrap();
        let args = ExpArgs { out: Some(path_str), ..ExpArgs::default() };
        let mut t1 = Table::new("first", &["a"]);
        t1.row(vec!["1".into()]);
        t1.emit(&args);
        let mut t2 = Table::new("second", &["b"]);
        t2.row(vec!["2".into()]);
        t2.emit(&args);
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!content.contains("stale"), "first emit must truncate");
        assert!(content.contains("# first") && content.contains("# second"), "{content}");
    }

    #[test]
    fn ascii_series_marks_and_levels() {
        let s = ascii_series("x", &[0.0, 1.0], &[2]);
        assert!(s.contains("_"), "{s}");
        assert!(s.contains("!@"), "{s}");
        // Out-of-range values are clamped, not panicking.
        let s = ascii_series("y", &[-3.0, 9.0], &[]);
        assert!(s.contains("_@"), "{s}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["xxx".into(), "y".into()]);
        let r = t.render();
        assert!(r.contains("# demo"));
        assert!(r.contains("a    bbbb"));
        assert!(r.contains("xxx  y"));
    }
}
