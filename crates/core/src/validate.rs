//! The model-validation function (Algorithm 2, §V).
//!
//! Given the current global model `G`, a history of the last `ℓ+1`
//! accepted models and a local validation set `D`, the validator:
//!
//! 1. computes the error-variation vectors `v₁ … v_ℓ` between consecutive
//!    history models and `v_{ℓ+1} = v(𝒢^ℓ, G, D)` for the current model;
//! 2. scores the current variation with the Local Outlier Factor against
//!    the historical variations, `φ_{ℓ+1} = LOF_k(v_{ℓ+1}; v₁…v_ℓ)` with
//!    `k = ⌈ℓ/2⌉`;
//! 3. derives the rejection threshold `τ` as the mean outlier factor of
//!    the last `⌊ℓ/4⌋` *trusted* variations, each scored leave-one-out
//!    against the remaining historical variations;
//! 4. votes "poisoned" iff `φ_{ℓ+1} > τ`.
//!
//! The paper's pseudo-code is partially OCR-garbled; this reconstruction
//! follows the prose exactly (see `DESIGN.md` §6): `k = ⌈ℓ/2⌉`, τ from
//! the last `⌊ℓ/4⌋` trusted updates, decision by comparing the new
//! outlier factor against τ.

use crate::variation::variation_from_confusions;
use baffle_attack::voting::Vote;
use baffle_data::Dataset;
use baffle_lof::{LofError, LofModel};
use baffle_nn::{ConfusionMatrix, Model};
use baffle_tensor::pool;
use serde::{Deserialize, Serialize};

/// Fan the leave-one-out threshold loop across the worker pool only when
/// the trusted window is at least this wide: each iteration is a small
/// LOF fit, and below this point dispatch overhead dominates the work.
const LOO_PARALLEL_THRESHOLD: usize = 8;

/// Scores each of the last `tw` references leave-one-out against the
/// remaining ones, returning the per-probe results **in index order**
/// (`refs.len() - tw` first). Runs on the process-wide worker pool
/// ([`baffle_tensor::pool`], the same threads the GEMM kernels band
/// over) when the window is wide enough; `parallel_map` preserves input
/// order, so the output is identical either way and parallelism can
/// never change a verdict.
fn leave_one_out_scores(refs: &[Vec<f32>], k: usize, tw: usize) -> Vec<Result<f64, LofError>> {
    let lo = refs.len() - tw;
    let score_one = |i: usize| -> Result<f64, LofError> {
        let mut others = refs.to_vec();
        let probe = others.remove(i);
        LofModel::fit(others, k)?.score(&probe)
    };
    if tw >= LOO_PARALLEL_THRESHOLD && pool::threads() > 1 {
        pool::parallel_map((lo..refs.len()).collect(), |_, i| score_one(i))
    } else {
        (lo..refs.len()).map(score_one).collect()
    }
}

/// Parameters of the validation function.
///
/// # Example
///
/// ```
/// use baffle_core::ValidationConfig;
///
/// let c = ValidationConfig::new(20);
/// assert_eq!(c.lookback(), 20);
/// assert_eq!(c.k(), 10);           // ⌈ℓ/2⌉
/// assert_eq!(c.trust_window(), 5); // ⌊ℓ/4⌋
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    lookback: usize,
    k: Option<usize>,
    trust_window: Option<usize>,
    margin: f64,
}

impl ValidationConfig {
    /// Creates the paper-default configuration for look-back window `ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `lookback < 3` (Algorithm 2 needs enough variations to
    /// form a LOF neighbourhood).
    pub fn new(lookback: usize) -> Self {
        assert!(lookback >= 3, "ValidationConfig: lookback must be at least 3, got {lookback}");
        Self { lookback, k: None, trust_window: None, margin: 1.0 }
    }

    /// Overrides the LOF neighbourhood size `k` (default `⌈ℓ/2⌉`).
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = Some(k);
        self
    }

    /// Overrides the number of trusted updates averaged into the
    /// threshold (default `⌊ℓ/4⌋`, at least 1).
    pub fn with_trust_window(mut self, w: usize) -> Self {
        assert!(w >= 1, "trust window must be at least 1");
        self.trust_window = Some(w);
        self
    }

    /// Sets a threshold margin: reject iff `φ > margin · τ`. The paper's
    /// algorithm corresponds to `margin = 1.0` (the default); values
    /// above 1 trade false positives for false negatives.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin.is_finite() && margin > 0.0, "margin must be positive");
        self.margin = margin;
        self
    }

    /// The look-back window `ℓ`.
    pub fn lookback(&self) -> usize {
        self.lookback
    }

    /// The LOF neighbourhood size `k = ⌈ℓ/2⌉` unless overridden.
    pub fn k(&self) -> usize {
        self.k.unwrap_or(self.lookback.div_ceil(2))
    }

    /// The trusted window `⌊ℓ/4⌋` (at least 1) unless overridden.
    pub fn trust_window(&self) -> usize {
        self.trust_window.unwrap_or((self.lookback / 4).max(1))
    }

    /// The rejection-threshold margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Number of history models the validator wants: `ℓ + 1`.
    pub fn history_size(&self) -> usize {
        self.lookback + 1
    }
}

/// The outcome of validating one global model, exposing the intermediate
/// quantities so callers can analyse decisions (C-INTERMEDIATE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    vote: Vote,
    outlier_factor: f64,
    threshold: f64,
}

impl Verdict {
    /// The validator's vote.
    pub fn vote(&self) -> Vote {
        self.vote
    }

    /// Whether the validator flagged the model as poisoned.
    pub fn is_reject(&self) -> bool {
        matches!(self.vote, Vote::Reject)
    }

    /// `φ_{ℓ+1}`: the LOF of the current model's error variation.
    pub fn outlier_factor(&self) -> f64 {
        self.outlier_factor
    }

    /// `τ`: the rejection threshold derived from trusted updates.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// Error cases of [`Validator::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// The history does not contain enough models to run the analysis.
    NotEnoughHistory {
        /// Models provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The validation dataset is empty — the client cannot judge.
    EmptyDataset,
    /// The LOF computation failed (degenerate geometry).
    Lof(LofError),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::NotEnoughHistory { got, need } => {
                write!(f, "validation needs at least {need} history models, got {got}")
            }
            ValidateError::EmptyDataset => write!(f, "validation dataset is empty"),
            ValidateError::Lof(e) => write!(f, "LOF computation failed: {e}"),
        }
    }
}

impl std::error::Error for ValidateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidateError::Lof(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LofError> for ValidateError {
    fn from(e: LofError) -> Self {
        ValidateError::Lof(e)
    }
}

/// Minimum number of history models for a meaningful LOF comparison
/// (4 models → 3 variation vectors → 2 references + 1 trusted probe).
pub const MIN_HISTORY: usize = 4;

/// Maximum number of flipped predictions tolerated when the historical
/// variations are exact duplicates (see the quantisation guard in
/// [`Validator::validate`]).
pub const DUPLICATE_GUARD_FLIPS: f32 = 3.0;

/// The VALIDATE routine of Algorithm 2. Any entity holding labelled data
/// — a client or the server — can run it; the entity's data is the `data`
/// argument.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Validator {
    config: ValidationConfig,
}

impl Validator {
    /// Creates a validator with the given configuration.
    pub fn new(config: ValidationConfig) -> Self {
        Self { config }
    }

    /// The validator's configuration.
    pub fn config(&self) -> &ValidationConfig {
        &self.config
    }

    /// Validates `current` against the trusted `history` (oldest first)
    /// using the caller's validation set.
    ///
    /// Only the last `ℓ + 1` history models are used if more are given.
    ///
    /// # Errors
    ///
    /// - [`ValidateError::NotEnoughHistory`] if fewer than
    ///   [`MIN_HISTORY`] models are available;
    /// - [`ValidateError::EmptyDataset`] if `data` has no samples;
    /// - [`ValidateError::Lof`] if the LOF geometry is degenerate.
    pub fn validate<M: Model + Sync>(
        &self,
        current: &M,
        history: &[M],
        data: &Dataset,
    ) -> Result<Verdict, ValidateError> {
        self.validate_detailed(current, history, data).map(|d| d.verdict)
    }

    /// Like [`Validator::validate`], but also returns the intermediate
    /// quantities of Algorithm 2 — the error-variation vector of the
    /// candidate and the trusted outlier factors behind the threshold —
    /// for decision forensics and dashboards.
    ///
    /// # Errors
    ///
    /// Same as [`Validator::validate`].
    pub fn validate_detailed<M: Model + Sync>(
        &self,
        current: &M,
        history: &[M],
        data: &Dataset,
    ) -> Result<Diagnostics, ValidateError> {
        if history.len() < MIN_HISTORY {
            return Err(ValidateError::NotEnoughHistory { got: history.len(), need: MIN_HISTORY });
        }
        if data.is_empty() {
            return Err(ValidateError::EmptyDataset);
        }
        let start = history.len().saturating_sub(self.config.history_size());
        let window = &history[start..];

        // One confusion matrix per model (window + current).
        let confusions: Vec<ConfusionMatrix> = window
            .iter()
            .map(|m| ConfusionMatrix::from_model(m, data.features(), data.labels()))
            .collect();
        let current_cm = ConfusionMatrix::from_model(current, data.features(), data.labels());
        self.validate_confusions(&confusions, &current_cm, data.len())
    }

    /// The decision half of Algorithm 2, starting from precomputed
    /// confusion matrices — `history` holds one matrix per accepted model
    /// (oldest first) over the caller's validation set, `current` the
    /// candidate's matrix over the same set, and `num_samples` the size
    /// of that set (used by the quantisation guard).
    ///
    /// This is the entry point for callers that cache confusion matrices
    /// across rounds (see [`crate::engine::ValidationEngine`]); the
    /// model-slice API [`Validator::validate_detailed`] delegates here,
    /// so cached and uncached validation share one code path and produce
    /// bit-identical results.
    ///
    /// # Errors
    ///
    /// Same as [`Validator::validate`].
    pub fn validate_confusions(
        &self,
        history: &[ConfusionMatrix],
        current: &ConfusionMatrix,
        num_samples: usize,
    ) -> Result<Diagnostics, ValidateError> {
        if history.len() < MIN_HISTORY {
            return Err(ValidateError::NotEnoughHistory { got: history.len(), need: MIN_HISTORY });
        }
        if num_samples == 0 {
            return Err(ValidateError::EmptyDataset);
        }
        let start = history.len().saturating_sub(self.config.history_size());
        let confusions = &history[start..];

        // Historical variations v_1..v_m and the candidate's v_{m+1}.
        let refs: Vec<Vec<f32>> =
            confusions.windows(2).map(|w| variation_from_confusions(&w[0], &w[1])).collect();
        let v_new =
            variation_from_confusions(confusions.last().expect("window non-empty"), current);

        let k = self.config.k();
        let mut phi_new = LofModel::fit(refs.clone(), k)?.score(&v_new)?;

        // Quantisation guard. On a very stable model, all historical
        // variations can be *exactly* zero (no prediction on `D` changed
        // across the whole window). LOF is then +inf for any non-zero new
        // variation, no matter how small — yet a variation worth a couple
        // of prediction flips on a finite validation set is plain sampling
        // granularity, not poisoning. In that degenerate case we only keep
        // the infinite score if the new variation amounts to more than
        // `DUPLICATE_GUARD_FLIPS` flipped predictions.
        if phi_new.is_infinite() {
            // One flipped prediction changes one source-focused and one
            // target-focused entry by 1/|D| each.
            let flips = v_new.iter().map(|x| x.abs()).sum::<f32>() * num_samples as f32 / 2.0;
            if flips <= DUPLICATE_GUARD_FLIPS {
                phi_new = 1.0;
            }
        }

        // Threshold: mean LOF of the last ⌊ℓ/4⌋ trusted variations, each
        // scored leave-one-out against the remaining references.
        let tw = self.config.trust_window().min(refs.len().saturating_sub(2)).max(1);
        let mut trusted = Vec::with_capacity(tw);
        for phi in leave_one_out_scores(&refs, k, tw) {
            let phi = phi?;
            if phi.is_finite() {
                trusted.push(phi);
            }
        }
        let threshold = if trusted.is_empty() {
            // Degenerate (e.g. duplicate variations): fall back to the
            // canonical LOF inlier level.
            1.0
        } else {
            trusted.iter().sum::<f64>() / trusted.len() as f64
        };

        let vote =
            if phi_new > self.config.margin * threshold { Vote::Reject } else { Vote::Accept };
        Ok(Diagnostics {
            verdict: Verdict { vote, outlier_factor: phi_new, threshold },
            variation: v_new,
            trusted_outlier_factors: trusted,
        })
    }
}

/// Full forensics of one validation decision (see
/// [`Validator::validate_detailed`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// The decision and its headline numbers.
    pub verdict: Verdict,
    /// The candidate's error-variation vector `v_{ℓ+1}` (length
    /// `2·|Y|`: source-focused entries first, then target-focused).
    pub variation: Vec<f32>,
    /// The leave-one-out LOF values of the trusted window that were
    /// averaged into the threshold `τ`.
    pub trusted_outlier_factors: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_tensor::Matrix;

    /// A scripted model: predicts `labels[i] + shift` (mod classes) for
    /// row `i`, where `wrong` marks rows predicted incorrectly.
    #[derive(Clone)]
    struct Scripted {
        preds: Vec<usize>,
        classes: usize,
    }

    impl Model for Scripted {
        fn num_params(&self) -> usize {
            0
        }
        fn params(&self) -> Vec<f32> {
            Vec::new()
        }
        fn set_params(&mut self, _: &[f32]) {}
        fn num_classes(&self) -> usize {
            self.classes
        }
        fn predict_batch(&self, _: &Matrix) -> Vec<usize> {
            self.preds.clone()
        }
    }

    /// Dataset of `n` samples over `c` classes, labels round-robin.
    fn dataset(n: usize, c: usize) -> Dataset {
        let x = Matrix::zeros(n, 1);
        let y = (0..n).map(|i| i % c).collect();
        Dataset::new(x, y, c)
    }

    /// A model that misclassifies exactly the rows in `wrong` (sending
    /// them to `(y+1) % c`).
    fn model_with_errors(data: &Dataset, wrong: &[usize]) -> Scripted {
        let c = data.num_classes();
        let preds = data
            .labels()
            .iter()
            .enumerate()
            .map(|(i, &y)| if wrong.contains(&i) { (y + 1) % c } else { y })
            .collect();
        Scripted { preds, classes: c }
    }

    /// History with a stable, small per-round error fluctuation: model t
    /// misclassifies rows {t % n, (t+1) % n}.
    fn stable_history(data: &Dataset, len: usize) -> Vec<Scripted> {
        (0..len).map(|t| model_with_errors(data, &[t % data.len(), (t + 1) % data.len()])).collect()
    }

    #[test]
    fn clean_drift_is_accepted() {
        let data = dataset(40, 4);
        let history = stable_history(&data, 12);
        // The next model continues the same gentle drift.
        let current = model_with_errors(&data, &[12, 13]);
        let validator = Validator::new(ValidationConfig::new(10));
        let verdict = validator.validate(&current, &history, &data).unwrap();
        assert!(
            !verdict.is_reject(),
            "clean model rejected: φ={} τ={}",
            verdict.outlier_factor(),
            verdict.threshold()
        );
    }

    #[test]
    fn backdoored_shift_is_rejected() {
        let data = dataset(40, 4);
        let history = stable_history(&data, 12);
        // Poisoned model: suddenly misclassifies every class-1 sample.
        let wrong: Vec<usize> = data.indices_of_class(1);
        let current = model_with_errors(&data, &wrong);
        let validator = Validator::new(ValidationConfig::new(10));
        let verdict = validator.validate(&current, &history, &data).unwrap();
        assert!(
            verdict.is_reject(),
            "poisoned model accepted: φ={} τ={}",
            verdict.outlier_factor(),
            verdict.threshold()
        );
        assert!(verdict.outlier_factor() > verdict.threshold());
    }

    #[test]
    fn identical_model_is_not_an_outlier() {
        let data = dataset(30, 3);
        let history = stable_history(&data, 10);
        let current = history.last().unwrap().clone();
        let validator = Validator::new(ValidationConfig::new(8));
        let verdict = validator.validate(&current, &history, &data).unwrap();
        assert!(!verdict.is_reject());
    }

    #[test]
    fn too_little_history_errors() {
        let data = dataset(10, 2);
        let history = stable_history(&data, 3);
        let current = history[0].clone();
        let validator = Validator::new(ValidationConfig::new(10));
        let err = validator.validate(&current, &history, &data).unwrap_err();
        assert!(matches!(err, ValidateError::NotEnoughHistory { got: 3, need: 4 }));
        assert!(err.to_string().contains("history"));
    }

    #[test]
    fn empty_dataset_errors() {
        let data = dataset(10, 2);
        let history = stable_history(&data, 6);
        let empty = Dataset::empty(1, 2);
        let validator = Validator::new(ValidationConfig::new(5));
        let err = validator.validate(&history[0], &history, &empty).unwrap_err();
        assert_eq!(err, ValidateError::EmptyDataset);
    }

    #[test]
    fn only_the_lookback_window_is_used() {
        let data = dataset(40, 4);
        // Long history whose *early* part is wild but whose recent part is
        // stable: a validator with a short window must ignore the early part.
        let mut history: Vec<Scripted> = (0..5)
            .map(|t| {
                let wrong: Vec<usize> = (0..(t * 7) % 15).map(|i| (i * 3) % 40).collect();
                model_with_errors(&data, &wrong)
            })
            .collect();
        history.extend(stable_history(&data, 12));
        let current = model_with_errors(&data, &[12, 13]);
        let validator = Validator::new(ValidationConfig::new(8));
        let verdict = validator.validate(&current, &history, &data).unwrap();
        assert!(!verdict.is_reject());
    }

    #[test]
    fn margin_trades_fp_for_fn() {
        let data = dataset(40, 4);
        let history = stable_history(&data, 12);
        let wrong: Vec<usize> = data.indices_of_class(1);
        let current = model_with_errors(&data, &wrong);
        // With an absurdly large margin, even the poisoned model passes.
        let lax = Validator::new(ValidationConfig::new(10).with_margin(1e9));
        assert!(!lax.validate(&current, &history, &data).unwrap().is_reject());
    }

    #[test]
    fn config_defaults_match_paper() {
        let c = ValidationConfig::new(20);
        assert_eq!(c.k(), 10);
        assert_eq!(c.trust_window(), 5);
        assert_eq!(c.history_size(), 21);
        assert_eq!(c.margin(), 1.0);
        let c = ValidationConfig::new(10);
        assert_eq!(c.k(), 5);
        assert_eq!(c.trust_window(), 2);
    }

    #[test]
    fn diagnostics_expose_the_decision_internals() {
        let data = dataset(40, 4);
        let history = stable_history(&data, 12);
        let wrong: Vec<usize> = data.indices_of_class(1);
        let poisoned = model_with_errors(&data, &wrong);
        let validator = Validator::new(ValidationConfig::new(10));
        let diag = validator.validate_detailed(&poisoned, &history, &data).unwrap();
        assert_eq!(
            diag.verdict.vote(),
            validator.validate(&poisoned, &history, &data).unwrap().vote()
        );
        assert_eq!(diag.variation.len(), 2 * data.num_classes());
        assert!(!diag.trusted_outlier_factors.is_empty());
        // The threshold is exactly the mean of the trusted factors.
        let mean = diag.trusted_outlier_factors.iter().sum::<f64>()
            / diag.trusted_outlier_factors.len() as f64;
        assert!((diag.verdict.threshold() - mean).abs() < 1e-12);
        // The poisoned model's source-class variation is strongly
        // negative (its error spiked).
        assert!(diag.variation[1] < -0.1, "variation = {:?}", diag.variation);
    }

    #[test]
    fn duplicate_history_falls_back_gracefully() {
        // All history models identical → all variations are zero vectors.
        let data = dataset(20, 2);
        let same = model_with_errors(&data, &[0]);
        let history = vec![same.clone(); 8];
        let validator = Validator::new(ValidationConfig::new(6));
        // A current model with a big shift should still be rejected (LOF
        // of a distinct point vs duplicate refs is +inf > fallback τ).
        let wrong: Vec<usize> = data.indices_of_class(0);
        let poisoned = model_with_errors(&data, &wrong);
        let verdict = validator.validate(&poisoned, &history, &data).unwrap();
        assert!(verdict.is_reject());
        // And the unchanged model is accepted.
        let verdict = validator.validate(&same, &history, &data).unwrap();
        assert!(!verdict.is_reject());
    }
}
