//! FedAvg aggregation.

use baffle_tensor::{ops, pool};

/// Minimum `parameters × updates` product before the accumulation fans
/// out on the worker pool; below this the serial loop wins.
const PAR_MIN_WORK: usize = 1 << 16;

/// Accumulates `scale · Σᵢ updates[i]` into `out`, chunking `out` across
/// the worker pool when the work is large enough.
///
/// Bit-exactness: [`ops::axpy`] is elementwise (`out[j] += scale·u[j]`
/// with one rounding per update), so chunking the *output* changes
/// nothing about the value each element computes — every element still
/// accumulates the updates in the same client order as the serial loop.
/// The result is therefore bit-identical at any thread count.
///
/// # Panics
///
/// Panics if any update's length differs from `out.len()`.
pub(crate) fn scaled_accumulate(scale: f32, updates: &[Vec<f32>], out: &mut [f32]) {
    for (i, u) in updates.iter().enumerate() {
        assert_eq!(
            u.len(),
            out.len(),
            "aggregate: update {i} has {} params, expected {}",
            u.len(),
            out.len()
        );
    }
    if pool::threads() <= 1 || out.len().saturating_mul(updates.len()) < PAR_MIN_WORK {
        for u in updates {
            ops::axpy(scale, u, out);
        }
        return;
    }
    let chunk = out.len().div_ceil(pool::threads());
    let tasks: Vec<pool::ScopedTask<'_>> = out
        .chunks_mut(chunk)
        .enumerate()
        .map(|(ci, dst)| {
            let lo = ci * chunk;
            Box::new(move || {
                for u in updates {
                    ops::axpy(scale, &u[lo..lo + dst.len()], dst);
                }
            }) as pool::ScopedTask<'_>
        })
        .collect();
    pool::join_all(tasks);
}

/// FedAvg with a global learning rate (paper §II-B):
///
/// ```text
/// G' = G + (λ / N) · Σᵢ Uᵢ
/// ```
///
/// `updates` are the client deltas `Uᵢ = Lᵢ − G`. With `λ = N/n` and all
/// `n` selected clients reporting, `G'` is exactly the mean of the local
/// models.
///
/// # Panics
///
/// Panics if `updates` is empty, the lengths are inconsistent,
/// `num_clients == 0`, or `lambda` is not finite.
///
/// # Example
///
/// ```
/// use baffle_fl::fedavg;
/// let g = vec![1.0, 1.0];
/// let ups = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
/// // λ/N = 1/2: move halfway along the summed update.
/// assert_eq!(fedavg(&g, &ups, 1.0, 2), vec![2.0, 2.0]);
/// ```
pub fn fedavg(global: &[f32], updates: &[Vec<f32>], lambda: f32, num_clients: usize) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg: need at least one update");
    assert!(num_clients > 0, "fedavg: num_clients must be positive");
    assert!(lambda.is_finite(), "fedavg: lambda must be finite, got {lambda}");
    let scale = lambda / num_clients as f32;
    let mut out = global.to_vec();
    scaled_accumulate(scale, updates, &mut out);
    out
}

/// The retained serial reference implementation of [`fedavg`]. The
/// pool-chunked path is bit-identical to this at any thread count (see
/// [`scaled_accumulate`]); kept public so tests and benchmarks can pin
/// the serial side.
///
/// # Panics
///
/// As [`fedavg`].
pub fn fedavg_serial(
    global: &[f32],
    updates: &[Vec<f32>],
    lambda: f32,
    num_clients: usize,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg: need at least one update");
    assert!(num_clients > 0, "fedavg: num_clients must be positive");
    assert!(lambda.is_finite(), "fedavg: lambda must be finite, got {lambda}");
    let scale = lambda / num_clients as f32;
    let mut out = global.to_vec();
    for u in updates {
        ops::axpy(scale, u, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replacement_with_lambda_n_over_n() {
        // N = 4, n = 2 selected, λ = N/n = 2: G' = mean of local models.
        let g = vec![0.0, 10.0];
        let l1 = vec![2.0, 12.0];
        let l2 = vec![4.0, 14.0];
        let ups = vec![ops_sub(&l1, &g), ops_sub(&l2, &g)];
        let out = fedavg(&g, &ups, 2.0, 4);
        assert_eq!(out, vec![3.0, 13.0]);
    }

    fn ops_sub(a: &[f32], b: &[f32]) -> Vec<f32> {
        baffle_tensor::ops::sub(a, b)
    }

    #[test]
    fn zero_updates_leave_global_unchanged() {
        let g = vec![1.0, -2.0, 3.0];
        let ups = vec![vec![0.0; 3]; 5];
        assert_eq!(fedavg(&g, &ups, 7.0, 100), g);
    }

    #[test]
    fn single_boosted_update_replaces_model() {
        // Model-replacement algebra: attacker submits γ·(X − G) with
        // γ = N/λ (single reporting client), yielding G' = X.
        let g = vec![1.0, 1.0];
        let x = vec![5.0, -3.0];
        let n_total = 100;
        let lambda = 10.0;
        let gamma = n_total as f32 / lambda;
        let poisoned: Vec<f32> = g.iter().zip(&x).map(|(&gi, &xi)| gamma * (xi - gi)).collect();
        let out = fedavg(&g, &[poisoned], lambda, n_total);
        for (o, e) in out.iter().zip(&x) {
            assert!((o - e).abs() < 1e-4, "{o} vs {e}");
        }
    }

    #[test]
    fn aggregation_is_linear_in_updates() {
        let g = vec![0.0; 3];
        let u1 = vec![1.0, 2.0, 3.0];
        let u2 = vec![-1.0, 0.5, 2.0];
        let joint = fedavg(&g, &[u1.clone(), u2.clone()], 3.0, 6);
        let seq = {
            let mid = fedavg(&g, &[u1], 3.0, 6);
            fedavg(&mid, &[u2], 3.0, 6)
        };
        for (a, b) in joint.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn empty_updates_panics() {
        let _ = fedavg(&[0.0], &[], 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "update 1 has 2 params")]
    fn mismatched_update_length_panics() {
        let _ = fedavg(&[0.0, 0.0, 0.0], &[vec![0.0; 3], vec![0.0; 2]], 1.0, 1);
    }

    /// The pool-chunked accumulation must be bit-identical to the serial
    /// reference on a vector large enough to cross the fan-out threshold.
    #[test]
    fn parallel_fedavg_is_bit_identical_to_serial() {
        let n = 50_000; // n × 3 updates ≫ PAR_MIN_WORK
        let global: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.137).sin()).collect();
        let updates: Vec<Vec<f32>> = (0..3)
            .map(|u| (0..n).map(|i| ((u * n + i) as f32 * 0.291).cos() * 0.01).collect())
            .collect();
        let fast = fedavg(&global, &updates, 1.7, 13);
        let slow = fedavg_serial(&global, &updates, 1.7, 13);
        assert_eq!(fast.len(), slow.len());
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "param {i}: {a} vs {b}");
        }
    }

    /// Small aggregations must still be exact (they take the serial
    /// branch below the threshold — same loop as the reference).
    #[test]
    fn small_fedavg_matches_serial() {
        let g = vec![1.0, -2.0, 0.5];
        let ups = vec![vec![0.1, 0.2, 0.3], vec![-0.4, 0.5, -0.6]];
        assert_eq!(fedavg(&g, &ups, 2.0, 4), fedavg_serial(&g, &ups, 2.0, 4));
    }
}
