//! Explicit 8-wide `f32` lanes for the GEMM micro-kernels.
//!
//! [`F32x8`] is a plain `[f32; 8]` wrapper whose arithmetic is written as
//! fixed-count lane loops; rustc/LLVM lower those to the widest vector
//! unit the target offers (a pair of SSE2 registers on baseline x86-64,
//! one AVX register with `-C target-cpu=native`) without unstable
//! `portable_simd` or an external crate. Lanes never mix — there is no
//! horizontal reduction anywhere — so a kernel built on these lanes
//! performs, per output element, exactly the scalar operation sequence of
//! the naive reference and stays bit-identical to it. No fused
//! multiply-add is emitted either: [`F32x8::mul_add_assign`] is a
//! separate IEEE multiply then add, the same two roundings the scalar
//! kernels perform.

/// Number of lanes in a [`F32x8`].
pub const LANES: usize = 8;

/// Eight independent `f32` lanes.
#[derive(Clone, Copy, Debug, Default)]
#[repr(transparent)]
pub struct F32x8([f32; LANES]);

impl F32x8 {
    /// Broadcasts `v` into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Loads the first eight values of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < 8`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let mut lanes = [0.0f32; LANES];
        lanes.copy_from_slice(&s[..LANES]);
        Self(lanes)
    }

    /// Stores the lanes into the first eight slots of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() < 8`.
    #[inline(always)]
    pub fn store(self, d: &mut [f32]) {
        d[..LANES].copy_from_slice(&self.0);
    }

    /// Per lane `self[l] += a[l] * b[l]` — multiply, then add, two
    /// roundings, exactly like the scalar `acc += av * bv`.
    #[inline(always)]
    pub fn mul_add_assign(&mut self, a: Self, b: Self) {
        for l in 0..LANES {
            self.0[l] += a.0[l] * b.0[l];
        }
    }

    /// Per lane `self[l] = fma(a[l], b[l], self[l])` — one fused
    /// multiply-add with a **single** rounding. This is the contracted
    /// operation of the opt-in fast-math kernels
    /// ([`crate::gemm::fast_nn`]); it is *not* bit-compatible with
    /// [`F32x8::mul_add_assign`], which rounds twice. `f32::mul_add` is
    /// correctly rounded on every platform (hardware FMA where the
    /// instantiation site enables it, soft-float otherwise), so the fast
    /// kernels stay deterministic across ISAs — only the bit-exact
    /// contract of the default kernels is relinquished.
    #[inline(always)]
    pub fn fma_assign(&mut self, a: Self, b: Self) {
        for l in 0..LANES {
            self.0[l] = a.0[l].mul_add(b.0[l], self.0[l]);
        }
    }

    /// Per lane `self[l] += a[l]`.
    #[inline(always)]
    pub fn add_assign(&mut self, a: Self) {
        for l in 0..LANES {
            self.0[l] += a.0[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_and_exact() {
        let a = [1.5f32, -2.0, 0.25, 3.0, -0.5, 8.0, 1e-3, -7.5];
        let b = [2.0f32, 0.5, -4.0, 1.0, 1.0, 0.125, 3.0, 2.0];
        let mut acc = F32x8::splat(1.0);
        acc.mul_add_assign(F32x8::load(&a), F32x8::load(&b));
        let mut out = [0.0f32; LANES];
        acc.store(&mut out);
        for l in 0..LANES {
            let want = 1.0f32 + a[l] * b[l];
            assert_eq!(out[l].to_bits(), want.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn splat_fills_every_lane() {
        let mut out = [0.0f32; LANES];
        F32x8::splat(-3.25).store(&mut out);
        assert!(out.iter().all(|&v| v == -3.25));
    }

    #[test]
    fn fma_fuses_with_a_single_rounding() {
        // (1 + 2^-12)² − 1: the exact product 1 + 2^-11 + 2^-24 is not an
        // f32 (ties-to-even drops the 2^-24 bit), so the two-rounding path
        // yields 2^-11 while the fused path keeps the low bit.
        let a = 1.0f32 + 2.0f32.powi(-12);
        let mut two_step = F32x8::splat(-1.0);
        two_step.mul_add_assign(F32x8::splat(a), F32x8::splat(a));
        let mut fused = F32x8::splat(-1.0);
        fused.fma_assign(F32x8::splat(a), F32x8::splat(a));
        let mut x = [0.0f32; LANES];
        let mut y = [0.0f32; LANES];
        two_step.store(&mut x);
        fused.store(&mut y);
        for l in 0..LANES {
            assert_eq!(x[l], 2.0f32.powi(-11), "lane {l}: two-rounding path");
            assert_eq!(y[l], 2.0f32.powi(-11) + 2.0f32.powi(-24), "lane {l}: fused path");
        }
    }

    #[test]
    fn add_assign_adds_lanewise() {
        let mut acc = F32x8::splat(1.5);
        acc.add_assign(F32x8::splat(-0.5));
        let mut out = [0.0f32; LANES];
        acc.store(&mut out);
        assert!(out.iter().all(|&v| v == 1.0));
    }
}
