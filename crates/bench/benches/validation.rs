//! Cost of one VALIDATE call (Algorithm 2) as a function of the look-back
//! window ℓ and the validation-set size — the per-round, per-validator
//! cost a deployment pays for the feedback loop.

use baffle_bench::cifar_fixture;
use baffle_core::{ValidationConfig, ValidationEngine, Validator};
use baffle_fl::history_sync::ModelId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_validate_lookback(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_by_lookback");
    group.sample_size(20);
    for &ell in &[10usize, 20, 30] {
        let fixture = cifar_fixture(200, ell + 2, 7);
        let validator = Validator::new(ValidationConfig::new(ell));
        let (current, history) = fixture.history.split_last().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, _| {
            b.iter(|| {
                validator
                    .validate(black_box(current), black_box(history), black_box(&fixture.data))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_validate_dataset_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_by_dataset_size");
    group.sample_size(20);
    for &samples in &[50usize, 200, 1000] {
        let fixture = cifar_fixture(samples, 22, 9);
        let validator = Validator::new(ValidationConfig::new(20));
        let (current, history) = fixture.history.split_last().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, _| {
            b.iter(|| {
                validator
                    .validate(black_box(current), black_box(history), black_box(&fixture.data))
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// The pre-engine per-round cost: a plain sequential `Validator` call
/// recomputes every history confusion matrix from scratch. This is what
/// every validator paid per round before the cache existed.
fn bench_validation_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_cold");
    group.sample_size(20);
    let ell = 20usize;
    let fixture = cifar_fixture(200, ell + 2, 7);
    let validator = Validator::new(ValidationConfig::new(ell));
    let (current, history) = fixture.history.split_last().unwrap();
    group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, _| {
        b.iter(|| {
            validator
                .validate(black_box(current), black_box(history), black_box(&fixture.data))
                .unwrap()
        });
    });
    group.finish();
}

/// Same workload through a cold [`ValidationEngine`]: every history
/// matrix is missing, but the fan-out runs on scoped threads.
fn bench_validation_cold_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_cold_parallel");
    group.sample_size(20);
    let ell = 20usize;
    let fixture = cifar_fixture(200, ell + 2, 7);
    let validator = Validator::new(ValidationConfig::new(ell));
    let (current, history) = fixture.history.split_last().unwrap();
    let ids: Vec<ModelId> = (0..history.len() as ModelId).collect();
    group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, _| {
        b.iter(|| {
            let mut engine = ValidationEngine::new(validator);
            engine
                .validate(
                    black_box(current),
                    black_box(&ids),
                    black_box(history),
                    black_box(&fixture.data),
                )
                .unwrap()
        });
    });
    group.finish();
}

/// The steady-state per-round cost with the engine: the history window
/// is fully cached, so only the candidate's confusion matrix is
/// computed. Compare against `validation_cold` for the speedup the
/// cache buys at ℓ = 20.
fn bench_validation_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_cached");
    group.sample_size(20);
    let ell = 20usize;
    let fixture = cifar_fixture(200, ell + 2, 7);
    let validator = Validator::new(ValidationConfig::new(ell));
    let (current, history) = fixture.history.split_last().unwrap();
    let ids: Vec<ModelId> = (0..history.len() as ModelId).collect();
    let mut engine = ValidationEngine::new(validator);
    // Warm the cache once; every measured iteration then hits it.
    engine.validate(current, &ids, history, &fixture.data).unwrap();
    group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, _| {
        b.iter(|| {
            engine
                .validate(
                    black_box(current),
                    black_box(&ids),
                    black_box(history),
                    black_box(&fixture.data),
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_validate_lookback,
    bench_validate_dataset_size,
    bench_validation_cold,
    bench_validation_cold_parallel,
    bench_validation_cached
);
criterion_main!(benches);
