//! Cache-blocked GEMM kernels with pool-parallel, SIMD-aware dispatch.
//!
//! All three matmul orientations used by backpropagation live here:
//!
//! - [`nn`]  — `C += A·B` (forward pass),
//! - [`tn`]  — `C += Aᵀ·B` (weight gradients),
//! - [`nt`]  — `C += A·Bᵀ` (input deltas),
//!
//! each as a *dispatcher* that picks, by problem size, between a serial
//! kernel and a row-banded parallel run on the shared worker pool
//! ([`crate::pool`]). The serial kernel is the explicit 8-wide
//! micro-kernel ([`simd_nn`] / [`simd_tn`], built on
//! [`crate::simd::F32x8`] lanes) unless `BAFFLE_NO_SIMD` is set, in
//! which case the scalar cache-blocked kernels ([`blocked_nn`] /
//! [`blocked_tn`]) serve as the fallback. The naive reference kernels
//! ([`naive_nn`], [`naive_tn`], [`naive_nt`]) are retained as the
//! ground truth for property tests and benchmarks, and every dispatcher
//! call is tallied per path ([`dispatch_counts`]) so perf regressions
//! can be attributed to dispatch changes, not just kernel changes.
//!
//! # Bit-exactness
//!
//! Every path — naive, blocked, SIMD, banded-parallel at any thread
//! count — produces **bit-identical** output: for each output element
//! the products are accumulated in strictly increasing `k` order,
//! starting from the element's prior value. Blocking only reorders work
//! *between* elements (which f32 addition cannot observe), row bands
//! touch disjoint outputs, and the 8-wide kernel assigns each output
//! element to exactly one lane of one accumulator — lanes never mix and
//! no FMA contraction is emitted, so each lane performs the scalar
//! kernel's multiply-then-add sequence verbatim. This is what lets
//! seeded experiments reproduce exactly regardless of `BAFFLE_THREADS`
//! or `BAFFLE_NO_SIMD`.
//!
//! # Tiling
//!
//! The scalar blocked kernels tile `MB×KB = 32×32` panels of `A`
//! against `KB×NB = 32×256` panels of `B`: one `B` panel (32 KiB) plus
//! one `A` panel (4 KiB) sit comfortably in L1/L2 while the inner loop
//! streams `NB`-wide rows the compiler autovectorizes. The SIMD kernels
//! register-block instead: 64 output columns (eight 8-lane
//! accumulators, enough independent dependency chains to hide add
//! latency) are held in registers across a `KC = 256`-deep `k` sweep,
//! so the output is loaded and stored once per sweep instead of once
//! per `k`-step while `B` streams through in 64-wide rows. On x86-64
//! the SIMD bodies are additionally compiled with AVX2 enabled and
//! selected by a run-time CPU check, so an [`F32x8`] is a single
//! 256-bit register even when the build targets baseline SSE2.

use crate::pool;
use crate::simd::{F32x8, LANES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Row-tile height over `C`/`A` in the scalar blocked kernels.
const MB: usize = 32;
/// Depth-tile size over `k` in the scalar blocked kernels.
const KB: usize = 32;
/// Column-tile width over `C`/`B` in the scalar blocked kernels.
const NB: usize = 256;

/// Depth of one register-resident `k` sweep in the SIMD kernels: a
/// 32-column band of `B` over `KC` depth steps is 32 KiB (L1-sized),
/// and accumulators reload from `C` only once per sweep.
const KC: usize = 256;

/// Minimum `m·k·n` before a product is row-banded across the pool;
/// below this, thread hand-off costs more than the multiply.
const PAR_MIN_WORK: usize = 1 << 20;

/// Minimum `m·k·n` before [`nt`] packs `Bᵀ` to reach the blocked
/// kernel; tiny products just run the direct dot-product loop.
const NT_PACK_MIN_WORK: usize = 1 << 16;

#[inline]
fn work(m: usize, k: usize, n: usize) -> usize {
    m.saturating_mul(k).saturating_mul(n)
}

#[inline]
fn check(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &[f32], what: &str) {
    assert_eq!(a.len(), m * k, "gemm::{what}: A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm::{what}: B is not {k}x{n}");
    assert_eq!(out.len(), m * n, "gemm::{what}: C is not {m}x{n}");
}

static NO_SIMD: OnceLock<bool> = OnceLock::new();

/// Whether the dispatchers use the 8-wide SIMD micro-kernels.
///
/// Disabled by setting the `BAFFLE_NO_SIMD` environment variable to
/// anything but `0` or the empty string (CI re-runs tier-1 this way to
/// guard the scalar blocked fallback). Read once, at first use.
pub fn simd_enabled() -> bool {
    !*NO_SIMD.get_or_init(|| match std::env::var("BAFFLE_NO_SIMD") {
        Ok(v) => !v.trim().is_empty() && v.trim() != "0",
        Err(_) => false,
    })
}

static HITS_BLOCKED: AtomicU64 = AtomicU64::new(0);
static HITS_SIMD: AtomicU64 = AtomicU64::new(0);
static HITS_BANDED: AtomicU64 = AtomicU64::new(0);

/// Per-path hit counts of the [`nn`]/[`tn`]/[`nt`] dispatchers (see
/// [`dispatch_counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchCounts {
    /// Serial scalar products: the cache-blocked kernels, plus [`nt`]'s
    /// tiny direct dot-product path.
    pub blocked: u64,
    /// Serial products on the 8-wide micro-kernels.
    pub simd: u64,
    /// Products row-banded across the worker pool (each counted once,
    /// regardless of band count or which kernel the bands run).
    pub banded: u64,
}

/// Process-wide tally of which kernel path each dispatcher call took
/// since start-up (or the last [`reset_dispatch_counts`]). Only the
/// dispatchers count; calling `blocked_*`/`simd_*`/`naive_*` directly
/// does not. Intended for perf forensics — `gemm_report` prints these so
/// a perf change can be attributed to dispatch vs kernel changes.
pub fn dispatch_counts() -> DispatchCounts {
    DispatchCounts {
        blocked: HITS_BLOCKED.load(Ordering::Relaxed),
        simd: HITS_SIMD.load(Ordering::Relaxed),
        banded: HITS_BANDED.load(Ordering::Relaxed),
    }
}

/// Zeroes the [`dispatch_counts`] tallies.
pub fn reset_dispatch_counts() {
    HITS_BLOCKED.store(0, Ordering::Relaxed);
    HITS_SIMD.store(0, Ordering::Relaxed);
    HITS_BANDED.store(0, Ordering::Relaxed);
}

#[inline]
fn count_serial() {
    if simd_enabled() {
        HITS_SIMD.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS_BLOCKED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reference kernel `C += A·B` (`A` is `m×k`, `B` is `k×n`, row-major).
///
/// Branch-free i-k-j triple loop; the correctness oracle for the
/// blocked, SIMD and parallel paths.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "naive_nn");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference kernel `C += Aᵀ·B` (`A` is `ra×ca`, `B` is `ra×n`, `C` is
/// `ca×n`), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::naive_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::naive_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::naive_tn: C is not {ca}x{n}");
    for kk in 0..ra {
        let a_row = &a[kk * ca..(kk + 1) * ca];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference kernel `C += A·Bᵀ` (`A` is `m×k`, `B` is `n×k`, `C` is
/// `m×n`), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn naive_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm::naive_nt: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm::naive_nt: B is not {n}x{k}");
    assert_eq!(out.len(), m * n, "gemm::naive_nt: C is not {m}x{n}");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = out[i * n + j];
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Serial cache-blocked `C += A·B` with a k-unrolled-by-4 micro-kernel.
/// Bit-identical to [`naive_nn`] for every shape. Retained as the
/// scalar fallback behind `BAFFLE_NO_SIMD` and as the SIMD kernels'
/// perf baseline.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn blocked_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "blocked_nn");
    for jb in (0..n).step_by(NB) {
        let jw = (jb + NB).min(n) - jb;
        for ib in (0..m).step_by(MB) {
            let iend = (ib + MB).min(m);
            for kb in (0..k).step_by(KB) {
                let kend = (kb + KB).min(k);
                for i in ib..iend {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n + jb..i * n + jb + jw];
                    let mut kk = kb;
                    while kk + 4 <= kend {
                        let (a0, a1, a2, a3) =
                            (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                        let b0 = &b[kk * n + jb..kk * n + jb + jw];
                        let b1 = &b[(kk + 1) * n + jb..(kk + 1) * n + jb + jw];
                        let b2 = &b[(kk + 2) * n + jb..(kk + 2) * n + jb + jw];
                        let b3 = &b[(kk + 3) * n + jb..(kk + 3) * n + jb + jw];
                        // Sequential adds keep each element's k order.
                        for j in 0..jw {
                            let mut acc = out_row[j];
                            acc += a0 * b0[j];
                            acc += a1 * b1[j];
                            acc += a2 * b2[j];
                            acc += a3 * b3[j];
                            out_row[j] = acc;
                        }
                        kk += 4;
                    }
                    while kk < kend {
                        let av = a_row[kk];
                        let b_row = &b[kk * n + jb..kk * n + jb + jw];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                        kk += 1;
                    }
                }
            }
        }
    }
}

/// Serial cache-blocked `C += Aᵀ·B`. Bit-identical to [`naive_tn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn blocked_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::blocked_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::blocked_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::blocked_tn: C is not {ca}x{n}");
    blocked_tn_cols(ra, ca, n, a, b, 0, ca, out);
}

/// The `tn` tile loop over output rows (= `A` columns) `i0..i1` only,
/// writing into the `(i1-i0)×n` band `out`. Per-element accumulation
/// order depends only on `kb`/`kk`, so banding cannot change results.
#[allow(clippy::too_many_arguments)]
fn blocked_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    for jb in (0..n).step_by(NB) {
        let jend = (jb + NB).min(n);
        for ib in (i0..i1).step_by(MB) {
            let iend = (ib + MB).min(i1);
            for kb in (0..ra).step_by(KB) {
                let kend = (kb + KB).min(ra);
                for kk in kb..kend {
                    let a_row = &a[kk * ca..(kk + 1) * ca];
                    let b_row = &b[kk * n + jb..kk * n + jend];
                    for i in ib..iend {
                        let av = a_row[i];
                        let out_row = &mut out[(i - i0) * n + jb..(i - i0) * n + jend];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Whether the running CPU supports AVX2, checked once. The SIMD
/// kernels' bodies are compiled twice — once with the AVX2 feature
/// enabled (so [`F32x8`] becomes one 256-bit register) and once at the
/// build's baseline ISA — and this picks between them at run time.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// One register-blocked sweep: `out_row[j] += Σ_{kk=k0..k1} a_at(kk) ·
/// b[kk·n + j]` for every column `j` of the full `n`-wide row, in
/// ascending-`kk` order per column. Columns are walked 64 at a time
/// (eight 8-lane accumulators held in registers across the whole sweep
/// — enough independent add chains to hide FP-add latency, with the
/// `B` row hoisted to a fixed-size array so the inner loop carries a
/// single bounds check), then 8 at a time, then a scalar tail. A column
/// only ever lives in one lane of one accumulator, so each output
/// element sees exactly the scalar multiply-then-add sequence.
#[inline(always)]
fn simd_row(
    k0: usize,
    k1: usize,
    a_at: impl Fn(usize) -> f32,
    b: &[f32],
    n: usize,
    out_row: &mut [f32],
) {
    const JW: usize = 8 * LANES;
    let mut j = 0;
    while j + JW <= n {
        let mut c = [F32x8::default(); 8];
        for (q, cq) in c.iter_mut().enumerate() {
            *cq = F32x8::load(&out_row[j + q * LANES..]);
        }
        for kk in k0..k1 {
            let av = F32x8::splat(a_at(kk));
            let r: &[f32; JW] = b[kk * n + j..kk * n + j + JW].try_into().unwrap();
            c[0].mul_add_assign(av, F32x8::load(&r[0..]));
            c[1].mul_add_assign(av, F32x8::load(&r[LANES..]));
            c[2].mul_add_assign(av, F32x8::load(&r[2 * LANES..]));
            c[3].mul_add_assign(av, F32x8::load(&r[3 * LANES..]));
            c[4].mul_add_assign(av, F32x8::load(&r[4 * LANES..]));
            c[5].mul_add_assign(av, F32x8::load(&r[5 * LANES..]));
            c[6].mul_add_assign(av, F32x8::load(&r[6 * LANES..]));
            c[7].mul_add_assign(av, F32x8::load(&r[7 * LANES..]));
        }
        for (q, cq) in c.iter().enumerate() {
            cq.store(&mut out_row[j + q * LANES..]);
        }
        j += JW;
    }
    while j + LANES <= n {
        let mut c = F32x8::load(&out_row[j..]);
        for kk in k0..k1 {
            c.mul_add_assign(F32x8::splat(a_at(kk)), F32x8::load(&b[kk * n + j..]));
        }
        c.store(&mut out_row[j..]);
        j += LANES;
    }
    while j < n {
        let mut acc = out_row[j];
        for kk in k0..k1 {
            acc += a_at(kk) * b[kk * n + j];
        }
        out_row[j] = acc;
        j += 1;
    }
}

/// The [`simd_nn`] loop body, generic over the target features of its
/// instantiation site (see [`avx2_available`]).
#[inline(always)]
fn simd_nn_body(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            simd_row(kb, kend, |kk| a_row[kk], b, n, out_row);
        }
    }
}

/// [`simd_nn_body`] compiled with AVX2 enabled, regardless of the
/// build's baseline target features.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn simd_nn_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    simd_nn_body(m, k, n, a, b, out);
}

/// Serial 8-wide `C += A·B` micro-kernel. Bit-identical to [`naive_nn`]
/// for every shape (see the module docs on why lanes preserve the
/// per-element accumulation order — AVX2 and baseline-ISA instantiations
/// perform the same IEEE operations, so which one runs is unobservable
/// in the output).
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn simd_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "simd_nn");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at run time.
        unsafe { simd_nn_avx2(m, k, n, a, b, out) };
        return;
    }
    simd_nn_body(m, k, n, a, b, out);
}

/// Serial 8-wide `C += Aᵀ·B` micro-kernel. Bit-identical to
/// [`naive_tn`] for every shape.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn simd_tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::simd_tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::simd_tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::simd_tn: C is not {ca}x{n}");
    simd_tn_cols(ra, ca, n, a, b, 0, ca, out);
}

/// The [`simd_tn_cols`] loop body, generic over the target features of
/// its instantiation site.
#[inline(always)]
fn simd_tn_cols_body(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    for i in i0..i1 {
        let out_row = &mut out[(i - i0) * n..(i - i0 + 1) * n];
        for kb in (0..ra).step_by(KC) {
            let kend = (kb + KC).min(ra);
            simd_row(kb, kend, |kk| a[kk * ca + i], b, n, out_row);
        }
    }
}

/// [`simd_tn_cols_body`] compiled with AVX2 enabled.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn simd_tn_cols_avx2(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    simd_tn_cols_body(ra, ca, n, a, b, i0, i1, out);
}

/// The 8-wide `tn` loop over output rows (= `A` columns) `i0..i1` only,
/// writing into the `(i1-i0)×n` band `out`. The `A` value for step `kk`
/// is the strided load `a[kk·ca + i]`; per-element order is unchanged.
#[allow(clippy::too_many_arguments)]
fn simd_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at run time.
        unsafe { simd_tn_cols_avx2(ra, ca, n, a, b, i0, i1, out) };
        return;
    }
    simd_tn_cols_body(ra, ca, n, a, b, i0, i1, out);
}

/// The serial `nn` kernel the dispatchers (and their parallel bands)
/// run: 8-wide unless `BAFFLE_NO_SIMD` pins the scalar blocked kernel.
#[inline]
fn kernel_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    if simd_enabled() {
        simd_nn(m, k, n, a, b, out);
    } else {
        blocked_nn(m, k, n, a, b, out);
    }
}

/// The serial `tn` band kernel the dispatchers run (see [`kernel_nn`]).
#[inline]
#[allow(clippy::too_many_arguments)]
fn kernel_tn_cols(
    ra: usize,
    ca: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    if simd_enabled() {
        simd_tn_cols(ra, ca, n, a, b, i0, i1, out);
    } else {
        blocked_tn_cols(ra, ca, n, a, b, i0, i1, out);
    }
}

/// Transposes the row-major `rows×cols` slice `src` into `dst`
/// (`cols×rows`). Used by [`nt`] to reach the blocked kernel.
fn transpose_into(rows: usize, cols: usize, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            dst[j * rows + i] = src[i * cols + j];
        }
    }
}

/// `C += A·B` dispatcher: serial kernel (SIMD unless `BAFFLE_NO_SIMD`)
/// for small products, row-banded across the worker pool once `m·k·n`
/// reaches the parallel threshold. Always bit-identical to [`naive_nn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check(m, k, n, a, b, out, "nn");
    let t = pool::threads();
    if t > 1 && m >= 2 && work(m, k, n) >= PAR_MIN_WORK {
        HITS_BANDED.fetch_add(1, Ordering::Relaxed);
        let band_rows = m.div_ceil(t.min(m));
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(band_rows * n)
            .enumerate()
            .map(|(band, chunk)| {
                let i0 = band * band_rows;
                let rows = chunk.len() / n;
                let a_band = &a[i0 * k..(i0 + rows) * k];
                Box::new(move || kernel_nn(rows, k, n, a_band, b, chunk)) as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        count_serial();
        kernel_nn(m, k, n, a, b, out);
    }
}

/// `C += Aᵀ·B` dispatcher: serial kernel (SIMD unless `BAFFLE_NO_SIMD`)
/// for small products, output-row-banded across the worker pool for
/// large ones. Always bit-identical to [`naive_tn`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn tn(ra: usize, ca: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), ra * ca, "gemm::tn: A is not {ra}x{ca}");
    assert_eq!(b.len(), ra * n, "gemm::tn: B is not {ra}x{n}");
    assert_eq!(out.len(), ca * n, "gemm::tn: C is not {ca}x{n}");
    let t = pool::threads();
    if t > 1 && ca >= 2 && work(ra, ca, n) >= PAR_MIN_WORK {
        HITS_BANDED.fetch_add(1, Ordering::Relaxed);
        let band_rows = ca.div_ceil(t.min(ca));
        let tasks: Vec<pool::ScopedTask<'_>> = out
            .chunks_mut(band_rows * n)
            .enumerate()
            .map(|(band, chunk)| {
                let i0 = band * band_rows;
                let i1 = i0 + chunk.len() / n;
                Box::new(move || kernel_tn_cols(ra, ca, n, a, b, i0, i1, chunk))
                    as pool::ScopedTask<'_>
            })
            .collect();
        pool::join_all(tasks);
    } else {
        count_serial();
        kernel_tn_cols(ra, ca, n, a, b, 0, ca, out);
    }
}

/// `C += A·Bᵀ` dispatcher (`B` is `n×k`): tiny products run the direct
/// dot-product loop (tallied under `blocked` — it is the serial scalar
/// path); larger ones pack `Bᵀ` once and go through [`nn`] (and so
/// inherit its SIMD kernel, banding and tally). Always bit-identical to
/// [`naive_nt`] — the packed path performs the same per-element adds in
/// the same k order.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm::nt: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm::nt: B is not {n}x{k}");
    assert_eq!(out.len(), m * n, "gemm::nt: C is not {m}x{n}");
    if work(m, k, n) < NT_PACK_MIN_WORK {
        HITS_BLOCKED.fetch_add(1, Ordering::Relaxed);
        naive_nt(m, k, n, a, b, out);
    } else {
        let mut bt = vec![0.0f32; k * n];
        transpose_into(n, k, b, &mut bt);
        nn(m, k, n, a, &bt, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill with a sprinkling of exact zeros
    /// (the seed kernel's zero-skip made zeros a historical edge case).
    fn fill(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 33) as i32 % 1000) as f32 / 250.0;
                if v.abs() < 0.01 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn assert_bits_eq(x: &[f32], y: &[f32], what: &str) {
        assert_eq!(x.len(), y.len());
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
        }
    }

    /// Shapes covering 1×N / N×1 degeneracies, non-multiple-of-tile
    /// edges, SIMD tail widths (n ≡ 1, 7, 17 mod 8/32), and one product
    /// large enough to band across the pool.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 40, 1),
        (1, 7, 300),
        (300, 7, 1),
        (3, 5, 2),
        (33, 65, 17),
        (100, 130, 70),
        (31, 257, 129),
        (150, 70, 130),
    ];

    #[test]
    fn blocked_and_dispatched_nn_match_naive_exactly() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut want = vec![0.0f32; m * n];
            naive_nn(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            blocked_nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("blocked_nn {m}x{k}x{n}"));
            let mut got = vec![0.0f32; m * n];
            simd_nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("simd_nn {m}x{k}x{n}"));
            let mut got = vec![0.0f32; m * n];
            nn(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_and_dispatched_tn_match_naive_exactly() {
        for &(ra, ca, n) in SHAPES {
            let a = fill(ra * ca, 3);
            let b = fill(ra * n, 4);
            let mut want = vec![0.0f32; ca * n];
            naive_tn(ra, ca, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; ca * n];
            blocked_tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("blocked_tn {ra}x{ca}x{n}"));
            let mut got = vec![0.0f32; ca * n];
            simd_tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("simd_tn {ra}x{ca}x{n}"));
            let mut got = vec![0.0f32; ca * n];
            tn(ra, ca, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("tn {ra}x{ca}x{n}"));
        }
    }

    #[test]
    fn dispatched_nt_matches_naive_exactly() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 5);
            let b = fill(n * k, 6);
            let mut want = vec![0.0f32; m * n];
            naive_nt(m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            nt(m, k, n, &a, &b, &mut got);
            assert_bits_eq(&want, &got, &format!("nt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn kernels_accumulate_into_existing_output() {
        let (m, k, n) = (5, 9, 11);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let mut want = fill(m * n, 9);
        let mut blocked = want.clone();
        let mut simd = want.clone();
        naive_nn(m, k, n, &a, &b, &mut want);
        blocked_nn(m, k, n, &a, &b, &mut blocked);
        assert_bits_eq(&want, &blocked, "accumulate blocked");
        simd_nn(m, k, n, &a, &b, &mut simd);
        assert_bits_eq(&want, &simd, "accumulate simd");
    }

    #[test]
    fn parallel_band_boundaries_are_exact() {
        // Wide enough that every band split the pool can pick still has
        // non-multiple-of-tile rows at its edges.
        let (m, k, n) = (151, 71, 131);
        let a = fill(m * k, 10);
        let b = fill(k * n, 11);
        let mut want = vec![0.0f32; m * n];
        naive_nn(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got, "banded nn 151x71x131");
    }

    #[test]
    fn deep_k_sweeps_are_exact_across_the_kc_boundary() {
        // k > KC forces the SIMD kernels to store and reload their
        // accumulators between sweeps; the round-trip must be invisible.
        let (m, k, n) = (3, 2 * KC + 37, 41);
        let a = fill(m * k, 12);
        let b = fill(k * n, 13);
        let mut want = vec![0.0f32; m * n];
        naive_nn(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        simd_nn(m, k, n, &a, &b, &mut got);
        assert_bits_eq(&want, &got, "simd_nn deep k");
        let mut want = vec![0.0f32; n * m];
        naive_tn(k, n, m, &b, &a, &mut want);
        let mut got = vec![0.0f32; n * m];
        simd_tn(k, n, m, &b, &a, &mut got);
        assert_bits_eq(&want, &got, "simd_tn deep k");
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut out = vec![0.0f32; 0];
        nn(0, 3, 0, &[], &fill(0, 1), &mut out);
        let mut out = vec![1.5f32; 4];
        nn(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![1.5; 4], "k = 0 leaves C untouched");
        let mut out = vec![2.5f32; 4];
        nt(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![2.5; 4], "nt with k = 0 leaves C untouched");
    }

    #[test]
    fn dispatch_counters_are_monotone_and_attributed() {
        // Counters are process-global and other tests run concurrently,
        // so assert monotone growth of the expected counter only.
        let before = dispatch_counts();
        let (m, k, n) = (4, 6, 5);
        let a = fill(m * k, 20);
        let b = fill(k * n, 21);
        let mut out = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut out);
        let after = dispatch_counts();
        let serial_before = before.blocked + before.simd;
        let serial_after = after.blocked + after.simd;
        assert!(serial_after >= serial_before + 1, "serial dispatch not counted");

        let (m, k, n) = (64, 64, 1024); // m·k·n = 2^22 ≥ PAR_MIN_WORK
        let a = fill(m * k, 22);
        let b = fill(k * n, 23);
        let mut out = vec![0.0f32; m * n];
        nn(m, k, n, &a, &b, &mut out);
        let banded = dispatch_counts();
        if pool::threads() > 1 {
            assert!(banded.banded >= after.banded + 1, "banded dispatch not counted");
        } else {
            assert!(banded.blocked + banded.simd >= serial_after + 1);
        }
    }
}
