//! Synthetic federated datasets for the BaFFLe reproduction.
//!
//! The paper evaluates on CIFAR-10 and FEMNIST with a ResNet18, which is
//! out of reach for a pure-Rust laptop-scale reproduction (see
//! `DESIGN.md` §2). This crate provides the substitute: a
//! [`SyntheticVision`] generator producing image-classification-like
//! problems whose relevant structure matches the paper's setting —
//!
//! - multiple classes with **semantic subgroups** inside each class (the
//!   analogue of "cars with a striped background"), so semantic backdoors
//!   target a subpopulation honest clients rarely hold;
//! - controllable class overlap and label noise, so trained models keep a
//!   residual, round-to-round fluctuating per-class error profile (the
//!   signal BaFFLe's validation watches);
//! - a [`partition`] module implementing the paper's Dirichlet(0.9)
//!   non-IID split across clients and the client/server *C-S%* data
//!   splits of §VI.
//!
//! # Example
//!
//! ```
//! use baffle_data::{SyntheticVision, VisionSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let gen = SyntheticVision::new(&VisionSpec::cifar_like(), &mut rng);
//! let train = gen.generate(&mut rng, 1000);
//! assert_eq!(train.len(), 1000);
//! assert_eq!(train.num_classes(), 10);
//! ```

mod dataset;
pub mod dirichlet;
pub mod gamma;
pub mod partition;
mod synth;

pub use dataset::Dataset;
pub use synth::{SyntheticVision, VisionSpec};
