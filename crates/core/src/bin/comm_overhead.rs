//! Regenerates the **§VI-D communication-overhead** analysis: the cost of
//! shipping the model history (ℓ+1 models) to each validating client, and
//! the savings from the quantising codecs standing in for the paper's
//! model-compression citation (×10 reduction estimate).
//!
//! Run with `cargo run --release -p baffle-core --bin comm_overhead`.

use baffle_core::exp::{ExpArgs, Table};
use baffle_nn::{wire, Mlp, MlpSpec, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let ell = 20; // the paper's chosen look-back window
    let mut rng = StdRng::seed_from_u64(args.seed);

    let mut table = Table::new(
        "§VI-D: per-validator history transfer for ℓ = 20 (ℓ+1 models per round)",
        &["model", "params", "f32 model", "f32 history", "q8 history", "q4 history", "q4 saving"],
    );
    for (name, spec) in [
        ("cifar-like substrate", MlpSpec::new(32, &[64], 10)),
        ("femnist-like substrate", MlpSpec::new(48, &[96], 62)),
        ("resnet18-scale (paper)", MlpSpec::new(512, &[2048, 1024], 10)),
    ] {
        let model = Mlp::new(&spec, &mut rng);
        let params = model.params();
        let f32_model = wire::encode_f32(&params).len();
        let f32_history = f32_model * (ell + 1);
        let q8_history = wire::encode_q8(&params).len() * (ell + 1);
        let q4_history = wire::encode_q4(&params).len() * (ell + 1);
        table.row(vec![
            name.to_string(),
            params.len().to_string(),
            human(f32_model),
            human(f32_history),
            human(q8_history),
            human(q4_history),
            format!("{:.1}x", f32_history as f64 / q4_history as f64),
        ]);
    }
    table.emit(&args);

    // Incremental shipping simulation (HistorySync): what each selection
    // actually downloads in steady state.
    use baffle_fl::history_sync::HistorySync;
    use rand::Rng;
    let mut sync = HistorySync::new(ell + 1);
    let mut rng2 = StdRng::seed_from_u64(args.seed ^ 0xC0);
    let clients = 100;
    let rounds = if args.fast { 500 } else { 5_000 };
    let (mut sent_models, mut selections) = (0usize, 0usize);
    for _ in 0..rounds {
        sync.push_accepted();
        for c in 0..clients {
            if rng2.gen_bool(0.1) {
                sent_models += sync.models_to_send(c).count();
                sync.mark_synced(c);
                selections += 1;
            }
        }
    }
    let avg_models = sent_models as f64 / selections as f64;
    println!(
        "incremental shipping (HistorySync, {rounds} rounds, selection p=1/10):\n\
         average models per selection = {avg_models:.1} (vs {} for full-history shipping)\n",
        ell + 1
    );
    println!(
        "paper reference: ~10 MB per ResNet18 model, ~200 MB history per validator per round,\n\
         reducible to ~20 MB with compression; incremental shipping (only models accepted\n\
         since the client's last selection) further reduces steady-state cost."
    );
}
