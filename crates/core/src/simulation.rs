//! End-to-end experiment driver combining the FL substrate, attacks and
//! the BaFFLe defense — the engine behind every table and figure of the
//! paper's evaluation (§VI).
//!
//! A [`Simulation`] owns a synthetic federated problem (clients, server
//! share, attacker data), runs the FL loop round by round, injects
//! model-replacement attacks on scripted rounds, applies the configured
//! defense, and records per-round ground truth vs decisions into a
//! [`SimulationReport`].

use crate::engine::ValidationEngine;
use crate::feedback::{Decision, QuorumRule};
use crate::history::ModelHistory;
use crate::metrics::DetectionCounts;
use crate::validate::{ValidationConfig, Validator};
use baffle_attack::adaptive::dampen_until_accepted;
use baffle_attack::voting::{Vote, VoterBehavior};
use baffle_attack::{BackdoorSpec, ModelReplacement};
use baffle_data::{partition, Dataset, SyntheticVision, VisionSpec};
use baffle_fl::secagg::SecAggSession;
use baffle_fl::{fedavg, sampling, FlConfig, LocalTrainer};
use baffle_nn::{eval, Mlp, MlpSpec, Model, Sgd};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which of the paper's two evaluation settings to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// 10 classes, semantic backdoor ("striped cars → birds").
    CifarLike,
    /// 62 classes, many clients, label-flip backdoor.
    FemnistLike,
}

/// Which entities validate the global model (paper §VI-A, "defender
/// configurations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DefenseMode {
    /// No defense: every update is accepted.
    Off,
    /// BAFFLE-S: only the server validates, on its own data share.
    ServerOnly,
    /// BAFFLE-C: only randomly chosen clients validate.
    ClientsOnly,
    /// BAFFLE: clients validate and the server adds its own vote.
    #[default]
    Both,
}

/// How client datasets are materialised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ClientDataModel {
    /// Partition one honest pool with a symmetric Dirichlet over clients
    /// (the paper's §VI-A setup). For the semantic backdoor, the honest
    /// pool *excludes* the backdoor subpopulation — the paper's
    /// worst-case assumption that no validating client holds backdoor
    /// data.
    #[default]
    Dirichlet,
    /// Every client is a distinct *writer* with its own style offset
    /// (FEMNIST's natural non-IID structure). Writers draw from the full
    /// distribution, so honest clients may hold correctly-labelled
    /// backdoor-feature samples — the strictly weaker attack setting of
    /// Sun et al. that the paper contrasts itself against (§VII).
    Writers {
        /// Style-offset scale; larger = more distinct writers.
        style_std: f32,
        /// Samples generated per client.
        samples_per_client: usize,
    },
}

/// The attacker's update-crafting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AttackKind {
    /// Plain model replacement (train-and-scale).
    #[default]
    Replacement,
    /// Defense-aware: dampen the poisoned update until the attacker's
    /// local copy of VALIDATE accepts it (§VI-C).
    Adaptive,
}

/// Full configuration of one simulated experiment.
///
/// Fields are public: this is a passive experiment descriptor consumed by
/// [`Simulation::new`], which validates it. Use the presets
/// ([`SimulationConfig::cifar_like`], [`SimulationConfig::femnist_like`],
/// [`SimulationConfig::cifar_like_small`]) and adjust fields as needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Master seed; every random choice derives from it.
    pub seed: u64,
    /// Which paper scenario to emulate.
    pub dataset: DatasetKind,
    /// Total training samples generated for the honest pool.
    pub total_train: usize,
    /// Samples in the held-out main-task test set.
    pub test_samples: usize,
    /// Total number of FL clients (`N`).
    pub num_clients: usize,
    /// Contributing clients per round (`n`).
    pub clients_per_round: usize,
    /// Fraction of all data held by the server (the `S` of the paper's
    /// C-S% splits).
    pub server_share: f64,
    /// Dirichlet concentration for the non-IID client split (paper: 0.9).
    pub dirichlet_alpha: f64,
    /// Hidden-layer widths of the model substrate.
    pub hidden: Vec<usize>,
    /// Local training epochs per contributor (paper: 2).
    pub local_epochs: usize,
    /// Local SGD learning rate (paper: 0.1).
    pub local_lr: f32,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Global learning rate λ; `None` uses the full-replacement `N/n`.
    pub global_lr: Option<f32>,
    /// Central pre-training epochs emulating the paper's long
    /// stabilisation phase (0 = train from scratch, as in Fig. 4).
    pub warmup_central_epochs: usize,
    /// Clean FL rounds run before round 1 to fill the model history.
    pub warmup_rounds: usize,
    /// Number of recorded FL rounds.
    pub rounds: usize,
    /// Defender configuration.
    pub defense: DefenseMode,
    /// Look-back window `ℓ`.
    pub lookback: usize,
    /// Quorum threshold `q`.
    pub quorum: usize,
    /// Validating clients per round (paper: 10).
    pub validators_per_round: usize,
    /// Rejection-threshold margin (1.0 = the paper's Algorithm 2).
    pub margin: f64,
    /// First recorded round at which the defense is active (1-based).
    pub defense_start_round: usize,
    /// Attack strategy.
    pub attack: AttackKind,
    /// Recorded rounds (1-based) in which the attacker injects.
    pub poison_rounds: Vec<usize>,
    /// Backdoor training samples held by the attacker.
    pub backdoor_samples: usize,
    /// Backdoor test samples used to measure backdoor accuracy.
    pub backdoor_test_samples: usize,
    /// Boost factor γ; `None` uses `N/λ` (full replacement).
    pub boost: Option<f32>,
    /// Number of attacker-controlled clients (they stealth-accept when
    /// selected as validators). The attacker itself is client 0.
    pub malicious_clients: usize,
    /// Voting behaviour of attacker-controlled validators.
    pub malicious_voter_behavior: VoterBehavior,
    /// Whether updates travel through the secure-aggregation simulation.
    pub use_secagg: bool,
    /// Whether to measure main/backdoor accuracy every round (adds one
    /// test-set evaluation per round).
    pub track_accuracy: bool,
    /// Overrides the synthetic-problem spec (defaults to the dataset's
    /// preset). Used by ablations that vary task difficulty.
    pub vision_override: Option<VisionSpec>,
    /// How client shards are materialised (Dirichlet split or per-writer
    /// generation).
    pub client_data: ClientDataModel,
    /// Deferred validation (§VI-D communication optimisation): the
    /// validating clients coincide with the round's contributors, who
    /// vote on the **previous** round's model before training. Detection
    /// lags one round — a poisoned model is live until the next round's
    /// contributors roll it back.
    pub deferred_validation: bool,
}

impl SimulationConfig {
    /// The paper's CIFAR-10 setting, scaled to laptop size: 100 clients,
    /// 10 per round, semantic backdoor, stable-model scenario of §VI-B
    /// (defense enabled after 20 warm-up rounds; injections at recorded
    /// rounds 10, 15 and 20 ≙ the paper's rounds 30, 35, 40).
    pub fn cifar_like(seed: u64) -> Self {
        Self {
            seed,
            dataset: DatasetKind::CifarLike,
            total_train: 20_000,
            test_samples: 2_000,
            num_clients: 100,
            clients_per_round: 10,
            server_share: 0.10,
            dirichlet_alpha: 0.9,
            hidden: vec![64],
            local_epochs: 2,
            local_lr: 0.1,
            batch_size: 32,
            global_lr: None,
            warmup_central_epochs: 15,
            warmup_rounds: 21,
            rounds: 30,
            defense: DefenseMode::Both,
            lookback: 20,
            quorum: 5,
            validators_per_round: 10,
            // The paper's literal mean-LOF threshold (margin 1.0) is a
            // coin flip on a low-noise substrate (DESIGN.md §6); the
            // presets apply the calibrated 20% margin, which reproduces
            // the paper's per-configuration FP ordering and magnitudes.
            margin: 1.2,
            defense_start_round: 1,
            attack: AttackKind::Replacement,
            poison_rounds: vec![10, 15, 20],
            backdoor_samples: 200,
            backdoor_test_samples: 300,
            boost: None,
            malicious_clients: 1,
            malicious_voter_behavior: VoterBehavior::StealthAccept,
            use_secagg: false,
            track_accuracy: false,
            vision_override: None,
            client_data: ClientDataModel::Dirichlet,
            deferred_validation: false,
        }
    }

    /// The paper's FEMNIST setting, scaled: 62 classes, 355 clients
    /// (×0.1 of the paper's 3550), label-flip backdoor.
    pub fn femnist_like(seed: u64) -> Self {
        Self {
            dataset: DatasetKind::FemnistLike,
            total_train: 30_000,
            test_samples: 3_000,
            num_clients: 355,
            clients_per_round: 10,
            server_share: 0.01,
            hidden: vec![96],
            backdoor_samples: 250,
            backdoor_test_samples: 300,
            warmup_central_epochs: 25,
            ..Self::cifar_like(seed)
        }
    }

    /// A miniature FEMNIST-like configuration (label-flip backdoor, many
    /// classes) that finishes in seconds — used by tests and examples.
    pub fn femnist_like_small(seed: u64) -> Self {
        Self {
            dataset: DatasetKind::FemnistLike,
            total_train: 3_000,
            test_samples: 500,
            num_clients: 30,
            clients_per_round: 6,
            server_share: 0.01,
            hidden: vec![48],
            warmup_central_epochs: 20,
            backdoor_samples: 150,
            backdoor_test_samples: 150,
            ..Self::cifar_like_small(seed)
        }
    }

    /// A miniature configuration that finishes in seconds even in debug
    /// builds — used by doctests, examples and integration tests.
    pub fn cifar_like_small(seed: u64) -> Self {
        Self {
            total_train: 1_200,
            test_samples: 300,
            num_clients: 20,
            clients_per_round: 5,
            hidden: vec![24],
            warmup_central_epochs: 12,
            warmup_rounds: 8,
            rounds: 10,
            lookback: 6,
            quorum: 3,
            validators_per_round: 6,
            poison_rounds: vec![6],
            backdoor_samples: 120,
            backdoor_test_samples: 150,
            ..Self::cifar_like(seed)
        }
    }

    fn vision_spec(&self) -> VisionSpec {
        if let Some(spec) = &self.vision_override {
            return spec.clone();
        }
        match self.dataset {
            DatasetKind::CifarLike => VisionSpec::cifar_like(),
            DatasetKind::FemnistLike => VisionSpec::femnist_like(),
        }
    }

    fn fl_config(&self) -> FlConfig {
        let mut c = FlConfig::new(self.num_clients, self.clients_per_round)
            .with_local_epochs(self.local_epochs)
            .with_local_lr(self.local_lr)
            .with_batch_size(self.batch_size);
        if let Some(lr) = self.global_lr {
            c = c.with_global_lr(lr);
        }
        c
    }

    fn validation_config(&self) -> ValidationConfig {
        ValidationConfig::new(self.lookback).with_margin(self.margin)
    }
}

/// What happened in one recorded FL round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based recorded round number.
    pub round: usize,
    /// Ground truth: did the attacker inject this round?
    pub poisoned: bool,
    /// Whether the defense evaluated this round's update.
    pub defense_active: bool,
    /// The server's decision (always `Accepted` when the defense is off).
    pub decision: Decision,
    /// Reject votes received (clients + server, depending on the mode).
    pub reject_votes: usize,
    /// Total votes cast.
    pub votes_cast: usize,
    /// The server's own vote, when it validates.
    pub server_vote: Option<Vote>,
    /// Main-task accuracy of the round's *resulting* global model (only
    /// if `track_accuracy`).
    pub main_accuracy: Option<f32>,
    /// Backdoor accuracy of the round's resulting global model (only if
    /// `track_accuracy`).
    pub backdoor_accuracy: Option<f32>,
    /// For adaptive injections: did the attacker's own validator accept
    /// its damped update?
    pub adaptive_self_accepted: Option<bool>,
    /// For poison rounds: backdoor accuracy the *candidate* model would
    /// have had (measured before the accept/reject decision). Used to
    /// separate effective injections from fizzled ones.
    pub candidate_backdoor_accuracy: Option<f32>,
}

impl RoundRecord {
    /// Whether this round carried an **effective** backdoor: the attacker
    /// injected and the candidate model actually classifies the majority
    /// of backdoor instances as the target (cf. Table II's "adaptive
    /// injections", which are counted only when the attack is live).
    pub fn effectively_backdoored(&self) -> bool {
        self.poisoned && self.candidate_backdoor_accuracy.is_none_or(|a| a >= 0.5)
    }

    /// A poison-round attempt whose damped update no longer carries the
    /// backdoor — excluded from both FP and FN accounting.
    pub fn fizzled_attack(&self) -> bool {
        self.poisoned && !self.effectively_backdoored()
    }
}

/// Aggregated outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of recorded rounds.
    pub rounds_run: usize,
    /// Per-round records, in order.
    pub records: Vec<RoundRecord>,
    counts: DetectionCounts,
}

impl SimulationReport {
    /// Detection counts over rounds where the defense was active.
    pub fn counts(&self) -> &DetectionCounts {
        &self.counts
    }

    /// Clean updates wrongly rejected (defense-active rounds only).
    pub fn false_positives(&self) -> usize {
        self.counts.false_positives()
    }

    /// Poisoned updates wrongly accepted (defense-active rounds only).
    pub fn false_negatives(&self) -> usize {
        self.counts.false_negatives()
    }

    /// False-positive rate over defense-active clean rounds.
    pub fn fp_rate(&self) -> f64 {
        self.counts.false_positive_rate()
    }

    /// False-negative rate over defense-active poisoned rounds.
    pub fn fn_rate(&self) -> f64 {
        self.counts.false_negative_rate()
    }

    /// Reject-vote counts of the poisoned rounds (for Fig. 5's vote
    /// distribution).
    pub fn poison_vote_counts(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter(|r| r.poisoned && r.defense_active)
            .map(|r| r.reject_votes)
            .collect()
    }

    /// Estimates ρ — the fraction of honest validators that judge a
    /// poisoned model correctly (§IV-B) — from the reject votes cast on
    /// effective injections. Returns `None` when no defended injection
    /// was observed.
    ///
    /// Plugging the estimate into
    /// [`crate::feedback::max_tolerable_malicious`] yields the §VI-C
    /// bound on tolerable malicious clients.
    pub fn estimate_rho(&self, validators_per_round: usize) -> Option<f64> {
        let counts: Vec<usize> = self
            .records
            .iter()
            .filter(|r| r.defense_active && r.effectively_backdoored())
            .map(|r| {
                let server_reject = matches!(r.server_vote, Some(Vote::Reject)) as usize;
                r.reject_votes.saturating_sub(server_reject)
            })
            .collect();
        if counts.is_empty() || validators_per_round == 0 {
            return None;
        }
        Some(counts.iter().sum::<usize>() as f64 / (counts.len() * validators_per_round) as f64)
    }
}

/// A fully materialised experiment: data, models, attacker and defense.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    rng: StdRng,
    generator: SyntheticVision,
    client_shards: Vec<Dataset>,
    server_data: Dataset,
    test_data: Dataset,
    backdoor_train: Dataset,
    backdoor_test: Dataset,
    backdoor: BackdoorSpec,
    global: Mlp,
    history: ModelHistory,
    trainer: LocalTrainer,
    validator: Validator,
    /// One incremental validation engine per client shard: confusion
    /// matrices are a function of (model, dataset), so caches cannot be
    /// shared across shards. Mutex-wrapped because the validation phase
    /// fans out over scoped threads.
    client_engines: Vec<Mutex<ValidationEngine>>,
    /// The server's own engine over its holdout share.
    server_engine: ValidationEngine,
    fl: FlConfig,
    round_index: usize,
    /// Deferred mode: ground truth of the latest accepted (not yet
    /// validated) candidate.
    pending_poisoned: bool,
    /// Deferred mode: backdoor probe of that candidate.
    pending_bd_acc: Option<f32>,
}

impl Simulation {
    /// Materialises the experiment: draws the synthetic problem, splits
    /// data between clients/server/attacker, pre-trains the global model
    /// (the paper's "stable model" precondition) and runs the clean
    /// warm-up rounds that fill the model history.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. quorum larger
    /// than the number of voters, more malicious clients than clients).
    pub fn new(config: SimulationConfig) -> Self {
        let voters = match config.defense {
            DefenseMode::Off | DefenseMode::ServerOnly => None,
            DefenseMode::ClientsOnly => Some(config.validators_per_round),
            DefenseMode::Both => Some(config.validators_per_round + 1),
        };
        if let Some(voters) = voters {
            assert!(
                config.quorum >= 1 && config.quorum <= voters,
                "SimulationConfig: quorum {} outside 1..={voters}",
                config.quorum
            );
        }
        assert!(
            config.malicious_clients <= config.num_clients,
            "SimulationConfig: more malicious clients than clients"
        );
        assert!(
            config.validators_per_round <= config.num_clients,
            "SimulationConfig: more validators than clients"
        );

        let mut rng = StdRng::seed_from_u64(config.seed);
        let spec = config.vision_spec();
        let generator = SyntheticVision::new(&spec, &mut rng);

        // Backdoor task. CIFAR-like: a fixed semantic subtask (class 1
        // "cars" with feature 0 "striped background" → class 2 "birds").
        // FEMNIST-like: label-flip of a class the attacker has lots of,
        // towards a random other class (paper §VI-A).
        let (backdoor, honest_pool) = match config.dataset {
            DatasetKind::CifarLike => {
                let spec = BackdoorSpec::semantic(1, 0, 2);
                // Honest participants hold no backdoor-feature data
                // (worst case, §I).
                let pool = generator.generate_excluding(&mut rng, config.total_train, 1, 0);
                (spec, pool)
            }
            DatasetKind::FemnistLike => {
                let source = rng.gen_range(0..spec.num_classes());
                let target = loop {
                    let t = rng.gen_range(0..spec.num_classes());
                    if t != source {
                        break t;
                    }
                };
                let pool = generator.generate(&mut rng, config.total_train);
                (BackdoorSpec::label_flip(source, target), pool)
            }
        };

        let (client_shards, server_data) = match config.client_data {
            ClientDataModel::Dirichlet => partition::client_server_split(
                &mut rng,
                &honest_pool,
                config.num_clients,
                config.dirichlet_alpha,
                config.server_share,
            ),
            ClientDataModel::Writers { style_std, samples_per_client } => {
                let styles = generator.writer_styles(&mut rng, config.num_clients, style_std);
                let shards: Vec<Dataset> = styles
                    .iter()
                    .map(|style| generator.generate_writer(&mut rng, samples_per_client, style))
                    .collect();
                let server_n = (config.server_share * config.total_train as f64).round() as usize;
                let (server, _) = honest_pool.split_random(&mut rng, server_n);
                (shards, server)
            }
        };

        let test_data = match config.dataset {
            DatasetKind::CifarLike => generator.generate_excluding(
                &mut rng,
                config.test_samples,
                backdoor.source_class(),
                backdoor.subgroup().unwrap_or(0),
            ),
            DatasetKind::FemnistLike => generator.generate(&mut rng, config.test_samples),
        };

        let backdoor_train = match backdoor.subgroup() {
            Some(sg) => generator.generate_subgroup(
                &mut rng,
                config.backdoor_samples,
                backdoor.source_class(),
                sg,
            ),
            None => {
                generator.generate_class(&mut rng, config.backdoor_samples, backdoor.source_class())
            }
        };
        let backdoor_test = match backdoor.subgroup() {
            Some(sg) => generator.generate_subgroup(
                &mut rng,
                config.backdoor_test_samples,
                backdoor.source_class(),
                sg,
            ),
            None => generator.generate_class(
                &mut rng,
                config.backdoor_test_samples,
                backdoor.source_class(),
            ),
        };

        let mlp_spec = MlpSpec::new(spec.input_dim(), &config.hidden, spec.num_classes());
        let mut global = Mlp::new(&mlp_spec, &mut rng);

        // Stable-model warm start: central training on the pooled honest
        // data stands in for the paper's 10 000 pre-stabilisation rounds.
        if config.warmup_central_epochs > 0 {
            let mut pooled = server_data.clone();
            for shard in &client_shards {
                if !shard.is_empty() {
                    pooled = pooled.concat(shard);
                }
            }
            let mut opt = Sgd::new(config.local_lr).with_momentum(0.9);
            for _ in 0..config.warmup_central_epochs {
                global.train_epoch(
                    pooled.features(),
                    pooled.labels(),
                    config.batch_size,
                    &mut opt,
                    &mut rng,
                );
            }
        }

        let fl = config.fl_config();
        let trainer = LocalTrainer::from_config(&fl);
        let validator = Validator::new(config.validation_config());
        let client_engines =
            client_shards.iter().map(|_| Mutex::new(ValidationEngine::new(validator))).collect();
        let server_engine = ValidationEngine::new(validator);
        let mut history = ModelHistory::new(config.lookback + 1);
        history.push(global.clone());

        let mut sim = Self {
            config,
            rng,
            generator,
            client_shards,
            server_data,
            test_data,
            backdoor_train,
            backdoor_test,
            backdoor,
            global,
            history,
            trainer,
            validator,
            client_engines,
            server_engine,
            fl,
            round_index: 0,
            pending_poisoned: false,
            pending_bd_acc: None,
        };

        // Clean warm-up rounds: accepted unconditionally, filling the
        // history with genuine cross-round variations.
        for _ in 0..sim.config.warmup_rounds {
            let candidate = sim.clean_round_candidate();
            sim.global = candidate;
            sim.history.push(sim.global.clone());
        }
        sim
    }

    /// The experiment configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The backdoor task the attacker pursues.
    pub fn backdoor(&self) -> &BackdoorSpec {
        &self.backdoor
    }

    /// The current global model.
    pub fn global_model(&self) -> &Mlp {
        &self.global
    }

    /// The synthetic problem instance this experiment draws from.
    pub fn generator(&self) -> &SyntheticVision {
        &self.generator
    }

    /// The server's validation data share.
    pub fn server_data(&self) -> &Dataset {
        &self.server_data
    }

    /// The held-out main-task test set.
    pub fn test_data(&self) -> &Dataset {
        &self.test_data
    }

    /// The data shard of client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_clients`.
    pub fn client_shard(&self, i: usize) -> &Dataset {
        &self.client_shards[i]
    }

    /// The accepted-model history the validators currently see.
    pub fn history(&self) -> &ModelHistory {
        &self.history
    }

    /// Main-task accuracy of the current global model on the held-out
    /// test set.
    pub fn main_accuracy(&self) -> f32 {
        self.global.accuracy(self.test_data.features(), self.test_data.labels())
    }

    /// Backdoor accuracy (eq. 1) of the current global model.
    pub fn backdoor_accuracy(&self) -> f32 {
        eval::backdoor_accuracy(
            &self.global,
            self.backdoor_test.features(),
            self.backdoor.target_class(),
        )
    }

    /// Runs all configured rounds and returns the report.
    pub fn run(&mut self) -> SimulationReport {
        let mut records = Vec::with_capacity(self.config.rounds);
        let mut counts = DetectionCounts::default();
        for _ in 0..self.config.rounds {
            let record = self.step();
            // Fizzled attack attempts (the adaptive attacker damped its
            // update into harmlessness) are excluded from the FP/FN
            // accounting: they are neither genuine updates nor effective
            // injections.
            if record.defense_active && !record.fizzled_attack() {
                counts.record(record.effectively_backdoored(), !record.decision.is_accepted());
            }
            records.push(record);
        }
        SimulationReport { rounds_run: records.len(), records, counts }
    }

    /// Runs a single recorded round and returns its record.
    pub fn step(&mut self) -> RoundRecord {
        if self.config.deferred_validation {
            return self.step_deferred();
        }
        self.round_index += 1;
        let round = self.round_index;
        let poisoned = self.config.poison_rounds.contains(&round);

        // --- Contributor phase -----------------------------------------
        let mut contributors = sampling::select_clients(
            &mut self.rng,
            self.config.num_clients,
            self.fl.clients_per_round(),
        );
        if poisoned && !contributors.contains(&0) {
            // The attacker makes sure its client is selected this round
            // (single-shot attacks assume participation).
            contributors[0] = 0;
        }
        let mut adaptive_self_accepted = None;
        let mut updates = self.honest_updates(&contributors, poisoned);
        if poisoned {
            let (update, self_accepted) = self.poisoned_update();
            adaptive_self_accepted = self_accepted;
            updates.push(update);
        }

        // --- Aggregation (optionally through secure aggregation) -------
        let summed: Vec<f32> = if self.config.use_secagg {
            let session = SecAggSession::new(
                self.config.seed ^ round as u64,
                updates.len(),
                updates[0].len(),
            );
            let masked: Vec<Vec<f32>> =
                updates.iter().enumerate().map(|(i, u)| session.mask(i, u)).collect();
            session.aggregate(&masked)
        } else {
            let mut sum = vec![0.0; updates[0].len()];
            for u in &updates {
                baffle_tensor::ops::axpy(1.0, u, &mut sum);
            }
            sum
        };
        let candidate_params =
            fedavg(&self.global.params(), &[summed], self.fl.global_lr(), self.fl.num_clients());
        let mut candidate = self.global.clone();
        candidate.set_params(&candidate_params);

        // Ground-truth probe: did the candidate actually pick up the
        // backdoor? (Measured on the attacker's objective, before the
        // accept/reject decision; the defense never sees this.)
        let candidate_backdoor_accuracy = if poisoned {
            Some(eval::backdoor_accuracy(
                &candidate,
                self.backdoor_test.features(),
                self.backdoor.target_class(),
            ))
        } else {
            None
        };

        // --- Validation phase (Algorithm 1) -----------------------------
        let defense_active = !matches!(self.config.defense, DefenseMode::Off)
            && round >= self.config.defense_start_round
            && self.history.len() >= crate::validate::MIN_HISTORY;

        let (decision, reject_votes, votes_cast, server_vote) = if defense_active {
            self.validation_phase(&candidate)
        } else {
            (Decision::Accepted, 0, 0, None)
        };

        // --- Integration -------------------------------------------------
        if decision.is_accepted() {
            self.global = candidate;
            self.history.push(self.global.clone());
        }
        // On rejection: G^r ← G^{r−1}; history unchanged (only accepted
        // models are trusted).

        let (main_accuracy, backdoor_accuracy) = if self.config.track_accuracy {
            (Some(self.main_accuracy()), Some(self.backdoor_accuracy()))
        } else {
            (None, None)
        };

        RoundRecord {
            round,
            poisoned,
            defense_active,
            decision,
            reject_votes,
            votes_cast,
            server_vote,
            main_accuracy,
            backdoor_accuracy,
            adaptive_self_accepted,
            candidate_backdoor_accuracy,
        }
    }

    /// One round of the deferred-validation variant (§VI-D): the round's
    /// contributors first vote on the **previous** round's accepted
    /// model; a rejection rolls it back before training proceeds. The
    /// returned record's ground truth (`poisoned`,
    /// `candidate_backdoor_accuracy`) therefore refers to the model the
    /// vote was about.
    fn step_deferred(&mut self) -> RoundRecord {
        self.round_index += 1;
        let round = self.round_index;
        let poisoned_now = self.config.poison_rounds.contains(&round);

        let mut contributors = sampling::select_clients(
            &mut self.rng,
            self.config.num_clients,
            self.fl.clients_per_round(),
        );
        if poisoned_now && !contributors.contains(&0) {
            contributors[0] = 0;
        }

        // --- Deferred vote on the pending (previous) model ----------------
        // Needs the pending model plus at least MIN_HISTORY predecessors.
        let defense_active = !matches!(self.config.defense, DefenseMode::Off)
            && round >= self.config.defense_start_round
            && self.history.len() > crate::validate::MIN_HISTORY;
        let decided_poisoned = self.pending_poisoned;
        let decided_bd_acc = self.pending_bd_acc;

        let (decision, reject_votes, votes_cast, server_vote) = if defense_active {
            let models = self.history.models();
            let (pending, prefix) = models.split_last().expect("non-empty history");
            let (_, prefix_ids) = self.history.ids().split_last().expect("ids parallel to models");
            let mut votes: Vec<Vote> = Vec::new();
            if matches!(self.config.defense, DefenseMode::ClientsOnly | DefenseMode::Both) {
                for &c in &contributors {
                    let outcome = self.client_engines[c].lock().validate_batched(
                        pending,
                        prefix_ids,
                        prefix,
                        &self.client_shards[c],
                    );
                    let honest = match outcome {
                        Ok(verdict) => verdict.vote(),
                        Err(_) => Vote::Accept,
                    };
                    let vote = if c < self.config.malicious_clients {
                        self.config.malicious_voter_behavior.cast(honest)
                    } else {
                        honest
                    };
                    votes.push(vote);
                }
            }
            let server_vote =
                if matches!(self.config.defense, DefenseMode::ServerOnly | DefenseMode::Both) {
                    let outcome = self.server_engine.validate_batched(
                        pending,
                        prefix_ids,
                        prefix,
                        &self.server_data,
                    );
                    let vote = match outcome {
                        Ok(verdict) => verdict.vote(),
                        Err(_) => Vote::Accept,
                    };
                    votes.push(vote);
                    Some(vote)
                } else {
                    None
                };
            let reject_votes = votes.iter().filter(|v| matches!(v, Vote::Reject)).count();
            let quorum = match self.config.defense {
                DefenseMode::ServerOnly => 1,
                _ => self.config.quorum.min(votes.len().max(1)),
            };
            let rule = QuorumRule::new(votes.len().max(1), quorum).expect("valid quorum");
            (rule.decide(&votes), reject_votes, votes.len(), server_vote)
        } else {
            (Decision::Accepted, 0, 0, None)
        };

        // --- Rollback on rejection -----------------------------------------
        if !decision.is_accepted() {
            let (retired, _) = self.history.pop().expect("defense ran on non-empty history");
            // The popped id is retired for good; drop its cache entries
            // everywhere so the engines never serve a rolled-back model.
            for engine in &self.client_engines {
                engine.lock().invalidate(retired);
            }
            self.server_engine.invalidate(retired);
            self.global = self.history.latest().expect("history keeps its root").clone();
        }

        // --- Training phase (from the possibly rolled-back model) ----------
        let mut adaptive_self_accepted = None;
        let mut updates = self.honest_updates(&contributors, poisoned_now);
        if poisoned_now {
            let (update, self_accepted) = self.poisoned_update();
            adaptive_self_accepted = self_accepted;
            updates.push(update);
        }
        let mut sum = vec![0.0; updates[0].len()];
        for u in &updates {
            baffle_tensor::ops::axpy(1.0, u, &mut sum);
        }
        let params =
            fedavg(&self.global.params(), &[sum], self.fl.global_lr(), self.fl.num_clients());
        let mut candidate = self.global.clone();
        candidate.set_params(&params);

        // The new candidate is integrated immediately; its validation
        // happens at the start of the next round.
        self.pending_poisoned = poisoned_now;
        self.pending_bd_acc = if poisoned_now {
            Some(eval::backdoor_accuracy(
                &candidate,
                self.backdoor_test.features(),
                self.backdoor.target_class(),
            ))
        } else {
            None
        };
        self.global = candidate;
        self.history.push(self.global.clone());

        let (main_accuracy, backdoor_accuracy) = if self.config.track_accuracy {
            (Some(self.main_accuracy()), Some(self.backdoor_accuracy()))
        } else {
            (None, None)
        };

        RoundRecord {
            round,
            poisoned: decided_poisoned,
            defense_active,
            decision,
            reject_votes,
            votes_cast,
            server_vote,
            main_accuracy,
            backdoor_accuracy,
            adaptive_self_accepted,
            candidate_backdoor_accuracy: decided_bd_acc,
        }
    }

    /// Produces the candidate global model of a clean round (used for
    /// warm-up).
    fn clean_round_candidate(&mut self) -> Mlp {
        let contributors = sampling::select_clients(
            &mut self.rng,
            self.config.num_clients,
            self.fl.clients_per_round(),
        );
        let updates = self.honest_updates(&contributors, false);
        let mut sum = vec![0.0; updates[0].len()];
        for u in &updates {
            baffle_tensor::ops::axpy(1.0, u, &mut sum);
        }
        let params =
            fedavg(&self.global.params(), &[sum], self.fl.global_lr(), self.fl.num_clients());
        let mut candidate = self.global.clone();
        candidate.set_params(&params);
        candidate
    }

    /// Honest contributors' updates (parallel). On poison rounds the
    /// attacker's slot is excluded here and appended separately.
    fn honest_updates(&mut self, contributors: &[usize], poisoned: bool) -> Vec<Vec<f32>> {
        let honest: Vec<usize> =
            contributors.iter().copied().filter(|&c| !(poisoned && c == 0)).collect();
        let shards: Vec<&Dataset> = honest.iter().map(|&c| &self.client_shards[c]).collect();
        let seed = self.rng.gen::<u64>();
        baffle_fl::train_clients_parallel(&self.global, &shards, &self.trainer, seed)
    }

    /// The attacker's update for a poison round. Returns the update and,
    /// for adaptive attacks, whether the attacker's local validator
    /// accepted it.
    fn poisoned_update(&mut self) -> (Vec<f32>, Option<bool>) {
        let boost = self.config.boost.unwrap_or_else(|| self.fl.replacement_boost());
        let attack = ModelReplacement::new(self.backdoor, boost);
        let attacker_clean = self.client_shards[0].clone();
        let mut atk_rng = StdRng::seed_from_u64(self.rng.gen());
        let poison = attack.poisoned_update(
            &self.global,
            &attacker_clean,
            &self.backdoor_train,
            &mut atk_rng,
        );

        match self.config.attack {
            AttackKind::Replacement => (poison, None),
            AttackKind::Adaptive => {
                // The attacker runs VALIDATE on its own data, assuming its
                // update dominates the round: candidate = G + (λ/N)·u.
                let benign = self.trainer.train_update(&self.global, &attacker_clean, &mut atk_rng);
                let validator = self.validator;
                let history = self.history.models().to_vec();
                let global = self.global.clone();
                let lambda_over_n = self.fl.global_lr() / self.fl.num_clients() as f32;
                let attacker_view = if attacker_clean.is_empty() {
                    self.backdoor_train.clone()
                } else {
                    attacker_clean.clone()
                };
                let accepts = |u: &[f32]| {
                    let params = {
                        let mut p = global.params();
                        baffle_tensor::ops::axpy(lambda_over_n, u, &mut p);
                        p
                    };
                    let mut m = global.clone();
                    m.set_params(&params);
                    match validator.validate(&m, &history, &attacker_view) {
                        Ok(v) => !v.is_reject(),
                        Err(_) => true,
                    }
                };
                let damped = dampen_until_accepted(&benign, &poison, accepts, 8);
                (damped.update, Some(damped.self_accepted))
            }
        }
    }

    /// Runs the feedback loop for one candidate model: client votes
    /// (parallel) plus optionally the server's own vote.
    fn validation_phase(&mut self, candidate: &Mlp) -> (Decision, usize, usize, Option<Vote>) {
        let mut votes: Vec<Vote> = Vec::new();

        if matches!(self.config.defense, DefenseMode::ClientsOnly | DefenseMode::Both) {
            let validators = sampling::select_clients(
                &mut self.rng,
                self.config.num_clients,
                self.config.validators_per_round,
            );
            let history = self.history.models();
            let ids = self.history.ids();
            let engines = &self.client_engines;
            let shards = &self.client_shards;
            let malicious = self.config.malicious_clients;
            let behavior = self.config.malicious_voter_behavior;

            // One pool task per validator; `parallel_map` returns votes
            // in validator order, so tallies (and reports) are identical
            // at any thread count.
            let collected = baffle_tensor::pool::parallel_map(validators, |_, v| {
                if v < malicious && !behavior.needs_validation() {
                    behavior.cast(Vote::Accept)
                } else {
                    let outcome =
                        engines[v].lock().validate_batched(candidate, ids, history, &shards[v]);
                    let honest = match outcome {
                        Ok(verdict) => verdict.vote(),
                        // A client that cannot judge abstains
                        // (counts as accept, footnote 1).
                        Err(_) => Vote::Accept,
                    };
                    if v < malicious {
                        behavior.cast(honest)
                    } else {
                        honest
                    }
                }
            });
            votes.extend(collected);
        }

        let server_vote =
            if matches!(self.config.defense, DefenseMode::ServerOnly | DefenseMode::Both) {
                let outcome = self.server_engine.validate_batched(
                    candidate,
                    self.history.ids(),
                    self.history.models(),
                    &self.server_data,
                );
                let vote = match outcome {
                    Ok(verdict) => verdict.vote(),
                    Err(_) => Vote::Accept,
                };
                votes.push(vote);
                Some(vote)
            } else {
                None
            };

        let reject_votes = votes.iter().filter(|v| matches!(v, Vote::Reject)).count();
        let quorum = match self.config.defense {
            DefenseMode::ServerOnly => 1,
            _ => self.config.quorum,
        };
        let rule = QuorumRule::new(votes.len().max(1), quorum.min(votes.len().max(1)))
            .expect("quorum validated in new()");
        let decision = rule.decide(&votes);
        (decision, reject_votes, votes.len(), server_vote)
    }

    /// Generates a fresh batch of backdoor test instances (used by
    /// long-horizon experiments to avoid test-set reuse).
    pub fn regenerate_backdoor_test(&mut self) {
        self.backdoor_test = match self.backdoor.subgroup() {
            Some(sg) => self.generator.generate_subgroup(
                &mut self.rng,
                self.config.backdoor_test_samples,
                self.backdoor.source_class(),
                sg,
            ),
            None => self.generator.generate_class(
                &mut self.rng,
                self.config.backdoor_test_samples,
                self.backdoor.source_class(),
            ),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_simulation_detects_the_injection() {
        let mut sim = Simulation::new(SimulationConfig::cifar_like_small(1));
        let report = sim.run();
        assert_eq!(report.rounds_run, 10);
        // The scripted poison round is rejected.
        let poison_record = report.records.iter().find(|r| r.poisoned).unwrap();
        assert!(poison_record.defense_active);
        assert_eq!(poison_record.decision, Decision::Rejected);
        assert_eq!(report.false_negatives(), 0);
    }

    #[test]
    fn defense_off_accepts_everything() {
        let mut config = SimulationConfig::cifar_like_small(2);
        config.defense = DefenseMode::Off;
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert!(report.records.iter().all(|r| r.decision.is_accepted()));
        assert!(report.records.iter().all(|r| !r.defense_active));
        assert_eq!(report.counts().total(), 0);
    }

    #[test]
    fn undefended_backdoor_sticks() {
        let mut config = SimulationConfig::cifar_like_small(3);
        config.defense = DefenseMode::Off;
        config.track_accuracy = true;
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let after_poison = report.records.iter().find(|r| r.poisoned).unwrap();
        assert!(
            after_poison.backdoor_accuracy.unwrap() > 0.5,
            "backdoor accuracy after undefended injection: {:?}",
            after_poison.backdoor_accuracy
        );
    }

    #[test]
    fn defended_run_keeps_backdoor_accuracy_low() {
        let mut config = SimulationConfig::cifar_like_small(4);
        config.track_accuracy = true;
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let last = report.records.last().unwrap();
        assert!(
            last.backdoor_accuracy.unwrap() < 0.5,
            "backdoor survived the defense: {:?}",
            last.backdoor_accuracy
        );
    }

    #[test]
    fn stable_model_has_reasonable_main_accuracy() {
        let sim = Simulation::new(SimulationConfig::cifar_like_small(5));
        let acc = sim.main_accuracy();
        assert!(acc > 0.6, "warm-started model accuracy only {acc}");
    }

    #[test]
    fn secagg_path_matches_plain_path_in_outcome() {
        let mut plain_cfg = SimulationConfig::cifar_like_small(6);
        plain_cfg.rounds = 3;
        plain_cfg.poison_rounds = vec![];
        let mut secagg_cfg = plain_cfg.clone();
        secagg_cfg.use_secagg = true;

        let mut plain = Simulation::new(plain_cfg);
        let mut masked = Simulation::new(secagg_cfg);
        let rp = plain.run();
        let rm = masked.run();
        // Secure aggregation is (numerically almost) transparent: same
        // decisions on the same seed.
        let dp: Vec<_> = rp.records.iter().map(|r| r.decision).collect();
        let dm: Vec<_> = rm.records.iter().map(|r| r.decision).collect();
        assert_eq!(dp, dm);
    }

    #[test]
    fn same_seed_reproduces_the_report() {
        let r1 = Simulation::new(SimulationConfig::cifar_like_small(7)).run();
        let r2 = Simulation::new(SimulationConfig::cifar_like_small(7)).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn estimate_rho_reflects_vote_counts() {
        let mut config = SimulationConfig::cifar_like_small(10);
        config.poison_rounds = vec![6, 8];
        let mut sim = Simulation::new(config.clone());
        let report = sim.run();
        let rho = report.estimate_rho(config.validators_per_round).unwrap();
        assert!((0.0..=1.0).contains(&rho));
        // In this scripted scenario most honest validators flag the
        // boosted injection.
        assert!(rho > 0.4, "rho = {rho}");
        // No injections → no estimate.
        let mut clean_config = SimulationConfig::cifar_like_small(10);
        clean_config.poison_rounds = vec![];
        let clean = Simulation::new(clean_config).run();
        assert!(clean.estimate_rho(6).is_none());
    }

    #[test]
    fn split_injection_is_invisible_at_the_aggregate() {
        // BaFFLe only sees the aggregated model, so an attacker splitting
        // its boosted update across k colluding contributors produces
        // the *identical* candidate model — multi-client injection adds
        // nothing against aggregate-level defenses (paper §VI-A: "this is
        // not to restrict the attacker's capabilities").
        let poison = vec![4.0_f32, -2.0, 8.0];
        let honest = vec![vec![0.1, 0.2, -0.1], vec![0.0, -0.2, 0.3]];
        let global = vec![1.0, 1.0, 1.0];

        let mut single = honest.clone();
        single.push(poison.clone());
        let one = baffle_fl::fedavg(&global, &single, 2.0, 10);

        let mut split = honest;
        split.push(baffle_tensor::ops::scale(0.5, &poison));
        split.push(baffle_tensor::ops::scale(0.5, &poison));
        let two = baffle_fl::fedavg(&global, &split, 2.0, 10);

        for (a, b) in one.iter().zip(&two) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn femnist_small_detects_label_flip() {
        let mut sim = Simulation::new(SimulationConfig::femnist_like_small(11));
        let report = sim.run();
        assert_eq!(report.false_negatives(), 0);
    }

    #[test]
    fn defense_start_round_delays_activation() {
        let mut config = SimulationConfig::cifar_like_small(12);
        config.defense_start_round = 5;
        config.poison_rounds = vec![3]; // injected before the defense starts
        let mut sim = Simulation::new(config);
        let report = sim.run();
        for r in &report.records {
            assert_eq!(r.defense_active, r.round >= 5, "round {}", r.round);
        }
        // The pre-defense injection is accepted (and excluded from counts).
        let injected = report.records.iter().find(|r| r.poisoned).unwrap();
        assert!(injected.decision.is_accepted());
        assert_eq!(report.counts().poisoned(), 0);
    }

    #[test]
    fn deferred_validation_detects_with_one_round_lag() {
        let mut config = SimulationConfig::cifar_like_small(13);
        config.deferred_validation = true;
        config.track_accuracy = true;
        config.poison_rounds = vec![5];
        config.rounds = 9;
        let mut sim = Simulation::new(config);
        let report = sim.run();

        // The injection of round 5 is decided at round 6.
        let decided = report.records.iter().find(|r| r.poisoned).expect("decided record");
        assert_eq!(decided.round, 6, "deferred decision must lag one round");
        assert_eq!(decided.decision, Decision::Rejected);
        // The backdoor was live during the lag …
        let lag = report.records.iter().find(|r| r.round == 5).unwrap();
        assert!(
            lag.backdoor_accuracy.unwrap() > 0.5,
            "backdoor not live during the lag: {:?}",
            lag.backdoor_accuracy
        );
        // … and gone after the rollback.
        let after = report.records.iter().find(|r| r.round == 6).unwrap();
        assert!(
            after.backdoor_accuracy.unwrap() < 0.5,
            "rollback did not remove the backdoor: {:?}",
            after.backdoor_accuracy
        );
        assert_eq!(report.false_negatives(), 0);
    }

    #[test]
    fn deferred_validation_accepts_clean_runs() {
        let mut config = SimulationConfig::cifar_like_small(14);
        config.deferred_validation = true;
        config.poison_rounds = vec![];
        let report = Simulation::new(config).run();
        let rejected = report.records.iter().filter(|r| !r.decision.is_accepted()).count();
        assert!(rejected <= 1, "clean deferred run rejected {rejected} rounds");
    }

    #[test]
    fn writer_partition_runs_and_detects() {
        let mut config = SimulationConfig::cifar_like_small(9);
        config.client_data = ClientDataModel::Writers { style_std: 0.5, samples_per_client: 60 };
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert_eq!(report.rounds_run, 10);
        // Writers hold backdoor-feature data (Sun et al.'s weaker
        // setting), but the boosted injection still shifts per-class
        // errors and is caught.
        assert_eq!(report.false_negatives(), 0);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn invalid_quorum_panics() {
        let mut config = SimulationConfig::cifar_like_small(8);
        config.quorum = 99;
        let _ = Simulation::new(config);
    }
}
