//! The coordinating server actor (Algorithm 1, server side).

use crate::message::{HistoryEntry, Message, NodeId};
use crate::phase::PhaseLedger;
use crate::transport::Endpoint;
use baffle_attack::voting::Vote;
use baffle_core::{Decision, ModelHistory, QuorumRule, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::HistorySync;
use baffle_fl::{fedavg, sampling, FlConfig};
use baffle_nn::{wire, Mlp, Model};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Server-side protocol parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// FL hyperparameters (N, n, λ).
    pub fl: FlConfig,
    /// Validating clients per round.
    pub validators_per_round: usize,
    /// Quorum threshold `q`.
    pub quorum: usize,
    /// How long to wait for updates/votes before proceeding without the
    /// stragglers.
    pub phase_timeout: Duration,
    /// Whether the server casts its own vote (BAFFLE vs BAFFLE-C).
    pub server_votes: bool,
    /// Master seed for client selection.
    pub seed: u64,
    /// Trust-bootstrapping phase (paper §IV-B, "bootstrapping trust
    /// across rounds"): for the first `bootstrap_rounds` rounds,
    /// contributors are sampled only from `bootstrap_trusted` (an
    /// operator-vetted set), so the initial model history is known
    /// clean. Empty = no restriction.
    pub bootstrap_rounds: u64,
    /// The vetted participant set used during bootstrapping.
    pub bootstrap_trusted: Vec<usize>,
}

/// What happened in one protocol round, as observed by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerRound {
    /// Round number (1-based).
    pub round: u64,
    /// Whether the aggregated update was integrated.
    pub accepted: bool,
    /// Updates received before the timeout.
    pub updates_received: usize,
    /// Votes received before the timeout (missing votes are implicit
    /// accepts per footnote 1).
    pub votes_received: usize,
    /// Reject votes among them.
    pub reject_votes: usize,
    /// Update submissions discarded at intake: sender not in this
    /// round's sampled contributor set, claimed id not matching the
    /// transport envelope, undecodable payload, wrong parameter count,
    /// or a duplicate submission from an already-settled contributor
    /// (first submission wins). (Stale-round stragglers are silently
    /// dropped, not counted — losing a race is not an intake violation.)
    pub rejected_submissions: usize,
    /// Vote submissions discarded at intake: sender not in this round's
    /// sampled validator set, claimed id not matching the envelope, or a
    /// duplicate vote from an already-counted validator.
    pub rejected_votes: usize,
    /// Explicit [`Message::Abstain`] declarations counted this round
    /// (both phases). An abstaining validator is the paper's footnote-1
    /// implicit accept made explicit: it casts no vote, but the phase
    /// ledger stops waiting for it.
    pub abstentions: usize,
    /// Whether the effective quorum was silently lowered because fewer
    /// voters exist than the configured `q` — a misconfigured deployment
    /// that experiments should be able to detect.
    pub quorum_clamped: bool,
    /// Wall-clock spent collecting updates. With the phase ledger this
    /// approaches `phase_timeout` only when a sampled contributor is
    /// genuinely silent.
    pub update_phase: Duration,
    /// Wall-clock spent collecting votes (zero for skipped rounds).
    pub vote_phase: Duration,
    /// Bytes of history shipped to validators this round (the §VI-D
    /// overhead, measured).
    pub history_bytes_shipped: usize,
}

/// The server actor: owns the global model, the trusted history and the
/// per-client history-sync bookkeeping.
#[derive(Debug)]
pub struct Server {
    endpoint: Endpoint,
    config: ServerConfig,
    global: Mlp,
    /// Number of parameters of the global model — the only update length
    /// accepted at intake (anything else would panic `fedavg`).
    param_len: usize,
    history: ModelHistory,
    history_entries: VecDeque<HistoryEntry>,
    sync: HistorySync,
    engine: ValidationEngine,
    server_data: Dataset,
    rng: StdRng,
    round: u64,
}

impl Server {
    /// Creates the server actor with an initial (warm-started) global
    /// model. `history_window` is `ℓ + 1`.
    pub fn new(
        endpoint: Endpoint,
        config: ServerConfig,
        initial_model: Mlp,
        history_window: usize,
        validator: Validator,
        server_data: Dataset,
    ) -> Self {
        let mut history = ModelHistory::new(history_window);
        let hist_id = history.push(initial_model.clone());
        let mut sync = HistorySync::new(history_window);
        let first_id = sync.push_accepted();
        // The history's cache ids and the sync protocol's wire ids are
        // assigned in lockstep: both count acceptances from zero.
        debug_assert_eq!(hist_id, first_id);
        let history_entries = VecDeque::from(vec![HistoryEntry {
            id: first_id,
            params: wire::encode_f32(&initial_model.params()),
        }]);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            endpoint,
            config,
            param_len: initial_model.num_params(),
            global: initial_model,
            history,
            history_entries,
            sync,
            engine: ValidationEngine::new(validator),
            server_data,
            rng,
            round: 0,
        }
    }

    /// The current global model.
    pub fn global_model(&self) -> &Mlp {
        &self.global
    }

    /// Runs one full protocol round and returns what happened.
    pub fn run_round(&mut self) -> ServerRound {
        self.round += 1;
        let round = self.round;
        let n = self.config.fl.clients_per_round();

        // --- Training phase ------------------------------------------------
        let contributors: Vec<usize> =
            if round <= self.config.bootstrap_rounds && !self.config.bootstrap_trusted.is_empty() {
                let pool = &self.config.bootstrap_trusted;
                let k = n.min(pool.len());
                sampling::select_clients(&mut self.rng, pool.len(), k)
                    .into_iter()
                    .map(|i| pool[i])
                    .collect()
            } else {
                sampling::select_clients(&mut self.rng, self.config.fl.num_clients(), n)
            };
        let global_bytes = Bytes::from(wire::encode_f32(&self.global.params()));
        for &c in &contributors {
            self.endpoint.send(
                NodeId(c as u32),
                Message::TrainRequest { round, global: global_bytes.clone() },
            );
        }
        let (updates, update_tally) = self.collect_updates(round, &contributors);
        let updates_received = updates.len();

        // A round with no surviving updates is skipped entirely — and,
        // thanks to the phase ledger, without waiting out the timeout
        // when every contributor was rejected or abstained.
        if updates.is_empty() {
            return ServerRound {
                round,
                accepted: false,
                updates_received: 0,
                votes_received: 0,
                reject_votes: 0,
                rejected_submissions: update_tally.rejected,
                rejected_votes: 0,
                abstentions: update_tally.abstentions,
                quorum_clamped: false,
                update_phase: update_tally.elapsed,
                vote_phase: Duration::ZERO,
                history_bytes_shipped: 0,
            };
        }

        // --- Aggregation ---------------------------------------------------
        // Sort by client id so float summation order is deterministic.
        let mut sorted: Vec<(NodeId, Vec<f32>)> = updates.into_iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        let update_vecs: Vec<Vec<f32>> = sorted.into_iter().map(|(_, u)| u).collect();
        let candidate_params = fedavg(
            &self.global.params(),
            &update_vecs,
            self.config.fl.global_lr(),
            self.config.fl.num_clients(),
        );
        let mut candidate = self.global.clone();
        candidate.set_params(&candidate_params);

        // --- Validation phase (Algorithm 1) --------------------------------
        let validators = sampling::select_clients(
            &mut self.rng,
            self.config.fl.num_clients(),
            self.config.validators_per_round,
        );
        let candidate_bytes = Bytes::from(wire::encode_f32(&candidate_params));
        let mut history_bytes_shipped = 0usize;
        for &v in &validators {
            let delta: Vec<HistoryEntry> = self
                .sync
                .models_to_send(v)
                .filter_map(|id| self.history_entries.iter().find(|e| e.id == id).cloned())
                .collect();
            history_bytes_shipped += delta.iter().map(|e| e.params.len()).sum::<usize>();
            self.sync.mark_synced(v);
            self.endpoint.send(
                NodeId(v as u32),
                Message::ValidateRequest {
                    round,
                    candidate: candidate_bytes.clone(),
                    history_delta: delta,
                },
            );
        }
        let (mut votes, vote_tally) = self.collect_votes(round, &validators);
        if self.config.server_votes {
            let outcome = self.engine.validate(
                &candidate,
                self.history.ids(),
                self.history.models(),
                &self.server_data,
            );
            let own = match outcome {
                Ok(verdict) => verdict.vote(),
                Err(_) => Vote::Accept,
            };
            votes.push(own);
        }
        let reject_votes = votes.iter().filter(|v| matches!(v, Vote::Reject)).count();
        let voters = validators.len() + usize::from(self.config.server_votes);
        let effective_quorum = self.config.quorum.min(voters.max(1));
        let quorum_clamped = effective_quorum != self.config.quorum;
        let rule = QuorumRule::new(voters.max(1), effective_quorum).expect("valid quorum");
        let decision = rule.decide(&votes);

        // --- Integration ----------------------------------------------------
        if decision == Decision::Accepted {
            self.global = candidate;
            let hist_id = self.history.push(self.global.clone());
            let id = self.sync.push_accepted();
            debug_assert_eq!(hist_id, id, "history and sync ids must stay in lockstep");
            self.history_entries.push_back(HistoryEntry { id, params: candidate_bytes.clone() });
            if self.history_entries.len() > self.history.capacity() {
                self.history_entries.pop_front();
            }
        }
        for &c in contributors.iter().chain(&validators) {
            self.endpoint.send(
                NodeId(c as u32),
                Message::RoundResult { round, accepted: decision.is_accepted() },
            );
        }

        ServerRound {
            round,
            accepted: decision.is_accepted(),
            updates_received,
            votes_received: votes.len() - usize::from(self.config.server_votes),
            reject_votes,
            rejected_submissions: update_tally.rejected,
            rejected_votes: vote_tally.rejected,
            abstentions: update_tally.abstentions + vote_tally.abstentions,
            quorum_clamped,
            update_phase: update_tally.elapsed,
            vote_phase: vote_tally.elapsed,
            history_bytes_shipped,
        }
    }

    /// Tells every client to exit.
    pub fn shutdown(&self) {
        for c in 0..self.config.fl.num_clients() {
            self.endpoint.send(NodeId(c as u32), Message::Shutdown);
        }
    }

    /// Collects update submissions for `round` until every sampled
    /// contributor is **accounted for** in the phase ledger (answered,
    /// rejected at intake, or explicitly abstained) or the phase timeout
    /// expires. Returns the surviving updates plus the phase tally.
    ///
    /// An update survives only if **all** of these hold — the protocol's
    /// random-sampling defense is void without them:
    ///
    /// - the sender is in this round's sampled contributor set (an
    ///   unsolicited update must not reach FedAvg);
    /// - the claimed `from` matches the transport envelope's sender (no
    ///   impersonating a sampled client);
    /// - the sender has not already settled its slot — the **first**
    ///   submission wins, later duplicates are rejected (mirroring the
    ///   first-wins rule votes enforce);
    /// - the payload decodes to exactly `param_len` floats (a truncated
    ///   update would panic the aggregation — a remote DoS).
    ///
    /// A misbehaving *sampled* sender settles its ledger slot as
    /// `Rejected`: it has been heard from, so the phase no longer waits
    /// on it. Traffic from outside the sampled set never touches the
    /// ledger — rogues cannot drain the phase.
    fn collect_updates(
        &self,
        round: u64,
        contributors: &[usize],
    ) -> (HashMap<NodeId, Vec<f32>>, PhaseTally) {
        let mut ledger = PhaseLedger::new(contributors.iter().map(|&c| NodeId(c as u32)));
        let mut updates = HashMap::new();
        let mut tally = PhaseTally::default();
        let start = std::time::Instant::now();
        let deadline = start + self.config.phase_timeout;
        while !ledger.all_accounted() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => match env.message {
                    Message::UpdateSubmission { round: r, from, update } => {
                        if r != round {
                            // Stale-round stragglers are dropped silently.
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if !ledger.is_pending(from) {
                            // Duplicate: the first submission won.
                            tally.rejected += 1;
                            continue;
                        }
                        match wire::decode_f32(&update) {
                            Ok(u) if u.len() == self.param_len => {
                                updates.insert(from, u);
                                ledger.mark_answered(from);
                            }
                            _ => {
                                tally.rejected += 1;
                                ledger.mark_rejected(from);
                            }
                        }
                    }
                    Message::Abstain { round: r, from, reason } => {
                        if r != round || !reason.is_train_phase() {
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if ledger.mark_abstained(from) {
                            tally.abstentions += 1;
                        }
                    }
                    _ => {}
                },
                Err(_) => break,
            }
        }
        tally.elapsed = start.elapsed();
        (updates, tally)
    }

    /// Collects vote submissions for `round` until every sampled
    /// validator is accounted for in the phase ledger or the phase
    /// timeout expires. Returns the counted votes plus the phase tally.
    ///
    /// A vote counts only if the sender is in this round's sampled
    /// validator set, the claimed `from` matches the envelope, and the
    /// validator's ledger slot is still pending (no double votes, no
    /// vote after an abstention) — otherwise any node could stuff the
    /// quorum. An explicit abstention settles the slot without casting a
    /// vote: per footnote 1 it is an implicit accept, and the phase
    /// stops waiting for that validator.
    fn collect_votes(&self, round: u64, validators: &[usize]) -> (Vec<Vote>, PhaseTally) {
        let mut ledger = PhaseLedger::new(validators.iter().map(|&v| NodeId(v as u32)));
        let mut votes = Vec::new();
        let mut tally = PhaseTally::default();
        let start = std::time::Instant::now();
        let deadline = start + self.config.phase_timeout;
        while !ledger.all_accounted() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => match env.message {
                    Message::VoteSubmission { round: r, from, vote } => {
                        if r != round {
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if ledger.mark_answered(from) {
                            votes.push(vote);
                        } else {
                            // Duplicate vote, or a vote after abstaining.
                            tally.rejected += 1;
                        }
                    }
                    Message::Abstain { round: r, from, reason } => {
                        if r != round || !reason.is_vote_phase() {
                            continue;
                        }
                        if from != env.from || !ledger.contains(from) {
                            tally.rejected += 1;
                            ledger.mark_rejected(env.from);
                            continue;
                        }
                        if ledger.mark_abstained(from) {
                            tally.abstentions += 1;
                        }
                    }
                    _ => {}
                },
                Err(_) => break,
            }
        }
        tally.elapsed = start.elapsed();
        (votes, tally)
    }
}

/// What one collection phase observed besides its payloads.
#[derive(Debug, Default)]
struct PhaseTally {
    /// Submissions discarded at intake.
    rejected: usize,
    /// Explicit abstentions counted.
    abstentions: usize,
    /// Wall-clock the phase took.
    elapsed: Duration,
}
