//! End-to-end deployment harness.
//!
//! [`Deployment::build`] materialises data, models and the network and
//! returns [`DeploymentParts`] — the pieces a test can drive by hand
//! (run rounds, checkpoint the server, crash and restart clients).
//! [`Deployment::run`] is the turnkey path: it builds the parts, runs
//! every client as a state machine on the event-driven
//! [`crate::scheduler`] (one scheduler thread + the shared worker pool,
//! so 10k+ registered clients are cheap), executes the configured
//! rounds **including the fault plan's scripted crash/restart events**,
//! and reports. [`DeploymentParts::run_threaded`] retains the
//! thread-per-client path; the two are bit-identical on identical
//! configs (see `crates/net/tests/scheduler.rs`).

use crate::client::{Client, ClientReport, ClientRole};
use crate::fault::{FaultPlan, LinkPolicy};
use crate::message::NodeId;
use crate::scheduler::{ClientFactory, SchedulerHandle};
use crate::server::{Server, ServerConfig, ServerRound};
use crate::socket::TransportMode;
use crate::transport::{Endpoint, Network};
use crate::wal::{DurableServer, RecoveryInfo, RestoreKit, Standby};
use baffle_attack::voting::VoterBehavior;
use baffle_attack::{BackdoorSpec, ModelReplacement};
use baffle_core::{ValidationConfig, Validator};
use baffle_data::{partition, Dataset, SyntheticVision, VisionSpec};
use baffle_fl::{FlConfig, LocalTrainer, WireProfile};
use baffle_nn::{eval, Mlp, MlpSpec, Sgd};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a protocol deployment (CIFAR-like semantic
/// backdoor scenario).
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Master seed.
    pub seed: u64,
    /// Total clients `N`.
    pub num_clients: usize,
    /// Contributors per round `n`.
    pub clients_per_round: usize,
    /// Validators per round.
    pub validators_per_round: usize,
    /// Quorum threshold `q`.
    pub quorum: usize,
    /// Look-back window ℓ.
    pub lookback: usize,
    /// Protocol rounds to run.
    pub rounds: u64,
    /// Number of attacker-controlled clients (ids `0..malicious`); they
    /// poison whenever selected as contributors and stealth-accept as
    /// validators.
    pub malicious_clients: usize,
    /// Honest-pool size.
    pub total_train: usize,
    /// Server's data share.
    pub server_share: f64,
    /// Hidden widths of the model substrate.
    pub hidden: Vec<usize>,
    /// Central warm-up epochs before the protocol starts.
    pub warmup_central_epochs: usize,
    /// Per-message drop probability of the simulated network. Ignored
    /// when `faults` is set.
    pub drop_prob: f64,
    /// Full chaos configuration: per-link fault policies plus scripted
    /// partitions and crash/restart events. `None` derives a plain
    /// uniform-loss plan from `drop_prob`.
    pub faults: Option<FaultPlan>,
    /// Per-phase server timeout.
    pub phase_timeout: Duration,
    /// Trust-bootstrapping rounds: contributors are drawn from the
    /// honest (operator-vetted) clients until the accepted-model history
    /// is deep enough for validation (paper §IV-B).
    pub bootstrap_rounds: u64,
    /// How envelopes reach endpoints: in-process channels or
    /// frame-encoded bytes over loopback sockets. Presets read
    /// `BAFFLE_TRANSPORT` (see [`TransportMode::from_env`]).
    pub transport: TransportMode,
    /// Wire codecs for models, updates and history shipping. Presets
    /// read `BAFFLE_WIRE_PROFILE` (see [`WireProfile::from_env`]).
    pub wire_profile: WireProfile,
}

impl DeploymentConfig {
    /// A miniature deployment that runs in seconds (used by doctests and
    /// integration tests): 8 clients, one attacker, 6 rounds.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            num_clients: 8,
            clients_per_round: 4,
            validators_per_round: 4,
            quorum: 2,
            lookback: 4,
            rounds: 6,
            malicious_clients: 1,
            total_train: 800,
            server_share: 0.1,
            hidden: vec![16],
            warmup_central_epochs: 10,
            drop_prob: 0.0,
            faults: None,
            phase_timeout: Duration::from_secs(20),
            bootstrap_rounds: 5,
            transport: TransportMode::from_env(),
            wire_profile: WireProfile::from_env(),
        }
    }

    /// A registered-population scale benchmark: `num_clients` clients
    /// (10k+ intended) of which only a few hundred are sampled per round
    /// — the paper's FEMNIST regime, and the shape the event-driven
    /// scheduler exists for. All-honest, no warm-up, thin shards (most
    /// of the population is enrolled, not busy).
    pub fn at_scale(seed: u64, num_clients: usize) -> Self {
        let validators_per_round = (num_clients / 80).clamp(4, 128);
        Self {
            seed,
            num_clients,
            clients_per_round: (num_clients / 40).clamp(4, 256),
            validators_per_round,
            quorum: (validators_per_round / 2).max(1),
            lookback: 4,
            rounds: 3,
            malicious_clients: 0,
            total_train: 2 * num_clients,
            server_share: 0.02,
            hidden: vec![16],
            warmup_central_epochs: 0,
            drop_prob: 0.0,
            faults: None,
            phase_timeout: Duration::from_secs(60),
            bootstrap_rounds: 0,
            transport: TransportMode::from_env(),
            wire_profile: WireProfile::from_env(),
        }
    }
}

/// Outcome of a deployment run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOutcome {
    /// Per-round server observations.
    pub rounds: Vec<ServerRound>,
    /// Main-task accuracy of the final global model.
    pub final_main_accuracy: f32,
    /// Backdoor accuracy of the final global model.
    pub final_backdoor_accuracy: f32,
    /// Total messages handed to the transport.
    pub messages_sent: u64,
    /// Messages lost to the simulated network.
    pub messages_dropped: u64,
    /// Messages the link delivered twice.
    pub messages_duplicated: u64,
    /// Messages whose payload the link damaged.
    pub messages_corrupted: u64,
    /// Sends whose destination had no route (shutdown notices to
    /// crashed nodes, mid-round sends racing a crash). Kept apart from
    /// `messages_dropped` so loss assertions stay exact.
    pub messages_unroutable: u64,
    /// Frame bytes written to sockets (zero under the in-process
    /// transport). Equivalence comparisons across transports must
    /// normalise this along with the phase durations.
    pub wire_bytes: u64,
    /// Frames written to sockets (zero under the in-process transport).
    pub wire_frames: u64,
    /// Per-client lifetime reports, sorted by node id. A client that
    /// crashed and restarted contributes one report per incarnation.
    pub client_reports: Vec<ClientReport>,
}

/// Outcome of a [`DeploymentParts::run_with_failover`] run: the normal
/// deployment outcome plus the evidence the durability invariants are
/// asserted against.
#[derive(Debug)]
pub struct FailoverReport {
    /// The deployment outcome, rounds from both server incarnations
    /// merged in order. The torn round appears once — as the
    /// post-takeover re-run.
    pub outcome: DeploymentOutcome,
    /// What the doomed primary observed while running the round whose
    /// outcome it never journaled. Kept for diagnostics; protocol-wise
    /// this round never happened.
    pub torn_round: ServerRound,
    /// The primary's checkpoint taken just before the torn round ran —
    /// the state the standby must reconstruct bit-for-bit.
    pub pre_crash_checkpoint: Bytes,
    /// The promoted standby's checkpoint at takeover. Byte-equality
    /// with [`FailoverReport::pre_crash_checkpoint`] is the recovery
    /// correctness criterion.
    pub promoted_checkpoint: Bytes,
    /// Wall-clock from the primary's crash to the first accepted round
    /// under the promoted standby. `None` if no later round accepted.
    pub recovery: Option<Duration>,
    /// What the standby replayed to get there.
    pub recovery_info: RecoveryInfo,
}

/// Everything needed to (re)create one client actor — kept around so
/// scripted restarts can respawn a crashed client from scratch (a real
/// restart loses in-memory state; the history cache starts empty and the
/// acknowledged-sync protocol refills it).
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// The client's id (also its [`NodeId`]).
    pub id: usize,
    /// Its local shard, shared read-only across incarnations.
    pub data: Arc<Dataset>,
    /// Honest or malicious.
    pub role: ClientRole,
    /// The actor's RNG seed.
    pub seed: u64,
}

/// The materialised pieces of a deployment, before any actor runs.
pub struct DeploymentParts {
    /// The shared transport.
    pub network: Network,
    /// The server actor (already registered on the network).
    pub server: Server,
    /// One spec per client, by id. Clients are **not** yet registered —
    /// [`DeploymentParts::client_actor`] and the scheduler factory do
    /// that when spawning.
    pub specs: Vec<ClientSpec>,
    /// The validation function every actor uses.
    pub validator: Validator,
    /// Architecture template for building actors, shared read-only.
    pub template: Arc<Mlp>,
    /// Server-side config (kept for [`Server::restore`] after a crash).
    pub server_config: ServerConfig,
    /// Server-side validation data (kept for [`Server::restore`]).
    pub server_data: Dataset,
    /// History window `ℓ + 1`.
    pub history_window: usize,
    /// Main-task test set.
    pub test: Dataset,
    /// Backdoor test set.
    pub backdoor_test: Dataset,
    /// The attacker's backdoor.
    pub backdoor: BackdoorSpec,
    /// The originating config.
    pub config: DeploymentConfig,
    fl: FlConfig,
}

impl std::fmt::Debug for DeploymentParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeploymentParts")
            .field("clients", &self.specs.len())
            .field("history_window", &self.history_window)
            .finish_non_exhaustive()
    }
}

impl DeploymentParts {
    /// Registers client `id` on the network and builds its actor plus
    /// the dedicated endpoint its blocking loop drains — used by the
    /// thread-per-client path and by tests that drive one actor by hand.
    ///
    /// # Panics
    ///
    /// Panics if `id` has no spec or is currently registered.
    pub fn client_actor(&self, id: usize) -> (Endpoint, Client) {
        let spec = &self.specs[id];
        assert_eq!(spec.id, id, "specs must be indexed by id");
        let endpoint = self.network.register(NodeId(id as u32));
        let outbox = endpoint.outbox();
        let client = Client::new(
            outbox,
            Arc::clone(&spec.data),
            LocalTrainer::from_config(&self.fl),
            self.validator,
            spec.role.clone(),
            self.history_window,
            Arc::clone(&self.template),
            self.server_config.wire,
            spec.seed,
        );
        (endpoint, client)
    }

    /// The state-machine factory the scheduler uses for the initial
    /// population and for every scripted restart. Owns clones of the
    /// (Arc-shared) specs so it can outlive `self` on the scheduler
    /// thread.
    fn client_factory(&self) -> ClientFactory {
        let specs = self.specs.clone();
        let trainer = LocalTrainer::from_config(&self.fl);
        let validator = self.validator;
        let history_window = self.history_window;
        let template = Arc::clone(&self.template);
        let wire = self.server_config.wire;
        Box::new(move |id, outbox| {
            let spec = &specs[id.0 as usize];
            Client::new(
                outbox,
                Arc::clone(&spec.data),
                trainer.clone(),
                validator,
                spec.role.clone(),
                history_window,
                Arc::clone(&template),
                wire,
                spec.seed,
            )
        })
    }

    /// Runs the deployment on the event-driven scheduler: every client
    /// is a state machine multiplexed over one inbound queue, stepped on
    /// the shared worker pool. Scripted crash/restart events map to
    /// [`SchedulerHandle::crash`] / [`SchedulerHandle::restart`]. This
    /// is the default path; outcomes are bit-identical to
    /// [`DeploymentParts::run_threaded`].
    pub fn run(mut self) -> DeploymentOutcome {
        let events: FaultPlan =
            self.config.faults.clone().unwrap_or_else(|| FaultPlan::lossless(0));
        let ids: Vec<NodeId> = self.specs.iter().map(|s| NodeId(s.id as u32)).collect();
        let scheduler = SchedulerHandle::launch(&self.network, ids, self.client_factory());

        let mut rounds = Vec::with_capacity(self.config.rounds as usize);
        for r in 1..=self.config.rounds {
            self.network.begin_round(r);
            for node in events.crashes_at(r) {
                // Crash-stop: the machine is dropped after draining what
                // was already delivered, and the route disappears.
                scheduler.crash(node);
            }
            for node in events.restarts_at(r) {
                // A restarted client is a fresh process: empty history
                // cache, fresh RNG — only its shard survives.
                scheduler.restart(node);
            }
            rounds.push(self.server.run_round());
        }
        self.server.shutdown();
        let mut client_reports = scheduler.join();
        client_reports.sort_by_key(|r| r.id);
        self.outcome(rounds, client_reports)
    }

    /// Spawns every client on its own OS thread, runs the configured
    /// rounds while executing the fault plan's scripted crash/restart
    /// events, shuts down and reports. Retained as the reference
    /// implementation the scheduler is checked against; practical up to
    /// a few hundred clients.
    pub fn run_threaded(mut self) -> DeploymentOutcome {
        let events: FaultPlan =
            self.config.faults.clone().unwrap_or_else(|| FaultPlan::lossless(0));
        let mut rounds = Vec::with_capacity(self.config.rounds as usize);
        let reports: Mutex<Vec<ClientReport>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for spec in &self.specs {
                let (endpoint, mut client) = self.client_actor(spec.id);
                let reports = &reports;
                scope.spawn(move |_| reports.lock().push(client.run(&endpoint)));
            }

            for r in 1..=self.config.rounds {
                self.network.begin_round(r);
                for node in events.crashes_at(r) {
                    // Crash-stop: the route disappears, the actor's
                    // blocking recv errors out and the thread exits.
                    self.network.disconnect(node);
                }
                for node in events.restarts_at(r) {
                    let (endpoint, mut client) = self.client_actor(node.0 as usize);
                    let reports = &reports;
                    scope.spawn(move |_| reports.lock().push(client.run(&endpoint)));
                }
                rounds.push(self.server.run_round());
            }
            self.server.shutdown();
        })
        .expect("client actor panicked");

        let mut client_reports = reports.into_inner();
        client_reports.sort_by_key(|r| r.id);
        self.outcome(rounds, client_reports)
    }

    /// The [`RestoreKit`] a standby or recovery path needs to rebuild
    /// this deployment's server from any checkpoint it writes.
    pub fn restore_kit(&self) -> RestoreKit {
        RestoreKit {
            config: self.server_config.clone(),
            template: self.template.as_ref().clone(),
            history_window: self.history_window,
            validator: self.validator,
            server_data: self.server_data.clone(),
        }
    }

    /// Runs the deployment with the server under the durability
    /// protocol ([`DurableServer`]) and a hot [`Standby`] tailing its
    /// log in `dir` — then **crashes the primary mid-round** at
    /// `crash_round`: the round's `RoundStart` is journaled and the
    /// round runs, but the process dies before the outcome record, so
    /// the log is torn. The standby is promoted (route teardown →
    /// scheduler rendezvous → re-register → [`Standby::promote`]) and
    /// re-runs the torn round as a duplicate-safe re-ask, then finishes
    /// the schedule.
    ///
    /// Clients live on the scheduler throughout — from their side the
    /// failover is just a round that went quiet and was re-asked.
    ///
    /// # Panics
    ///
    /// Panics if `crash_round` is outside `1..=rounds`, or on
    /// durability-directory I/O failure.
    pub fn run_with_failover(mut self, dir: &Path, crash_round: u64) -> FailoverReport {
        assert!(
            (1..=self.config.rounds).contains(&crash_round),
            "crash_round {crash_round} outside 1..={}",
            self.config.rounds
        );
        let events: FaultPlan =
            self.config.faults.clone().unwrap_or_else(|| FaultPlan::lossless(0));
        let ids: Vec<NodeId> = self.specs.iter().map(|s| NodeId(s.id as u32)).collect();
        let scheduler = SchedulerHandle::launch(&self.network, ids, self.client_factory());
        let kit = self.restore_kit();

        let mut primary =
            DurableServer::create(dir, 0, self.server).expect("create durability directory");
        let mut standby = Standby::attach(dir, kit).expect("attach hot standby");

        let mut rounds = Vec::with_capacity(self.config.rounds as usize);
        for r in 1..crash_round {
            self.network.begin_round(r);
            for node in events.crashes_at(r) {
                scheduler.crash(node);
            }
            for node in events.restarts_at(r) {
                scheduler.restart(node);
            }
            rounds.push(primary.run_round().expect("journal round"));
            standby.catch_up().expect("standby catch-up");
        }

        // The doomed round: scripted events still fire (the crash does
        // not suspend the chaos plan), the pre-round state is captured
        // as the recovery target, and the outcome record never lands.
        self.network.begin_round(crash_round);
        for node in events.crashes_at(crash_round) {
            scheduler.crash(node);
        }
        for node in events.restarts_at(crash_round) {
            scheduler.restart(node);
        }
        let pre_crash_checkpoint = primary.server().checkpoint();
        let torn_round = primary.run_round_torn().expect("journal torn round start");
        let crash_at = Instant::now();

        // Primary dies: tear down its route first so replies already in
        // flight book as unroutable instead of racing the route swap,
        // then quiesce the scheduler so no client step straddles the
        // takeover.
        self.network.disconnect(NodeId::SERVER);
        drop(primary);
        scheduler.rendezvous();

        standby.catch_up().expect("standby catch-up at takeover");
        let endpoint = self.network.register(NodeId::SERVER);
        let (server, recovery_info) = standby.promote(endpoint);
        let promoted_checkpoint = server.checkpoint();
        // Takeover doubles as compaction: the promoted state becomes
        // the checkpoint and the torn log is superseded.
        let mut primary = DurableServer::create(dir, 0, server).expect("takeover compaction");

        let mut recovery = None;
        for r in crash_round..=self.config.rounds {
            self.network.begin_round(r);
            if r != crash_round {
                // The torn round's scripted events already fired on the
                // first ask; the re-run must not apply them twice.
                for node in events.crashes_at(r) {
                    scheduler.crash(node);
                }
                for node in events.restarts_at(r) {
                    scheduler.restart(node);
                }
            }
            let round = primary.run_round().expect("journal round");
            if recovery.is_none() && round.accepted {
                recovery = Some(crash_at.elapsed());
            }
            rounds.push(round);
        }

        self.server = primary.into_inner();
        self.server.shutdown();
        let mut client_reports = scheduler.join();
        client_reports.sort_by_key(|r| r.id);
        let outcome = self.outcome(rounds, client_reports);
        FailoverReport {
            outcome,
            torn_round,
            pre_crash_checkpoint,
            promoted_checkpoint,
            recovery,
            recovery_info,
        }
    }

    fn outcome(
        self,
        rounds: Vec<ServerRound>,
        client_reports: Vec<ClientReport>,
    ) -> DeploymentOutcome {
        DeploymentOutcome {
            final_main_accuracy: self
                .server
                .global_model()
                .accuracy(self.test.features(), self.test.labels()),
            final_backdoor_accuracy: eval::backdoor_accuracy(
                self.server.global_model(),
                self.backdoor_test.features(),
                self.backdoor.target_class(),
            ),
            rounds,
            messages_sent: self.network.messages_sent(),
            messages_dropped: self.network.messages_dropped(),
            messages_duplicated: self.network.messages_duplicated(),
            messages_corrupted: self.network.messages_corrupted(),
            messages_unroutable: self.network.messages_unroutable(),
            wire_bytes: self.network.wire_bytes(),
            wire_frames: self.network.wire_frames(),
            client_reports,
        }
    }
}

/// Runs a full deployment: one server thread (the caller's), the
/// scheduler thread, and the shared worker pool stepping client state
/// machines.
#[derive(Debug)]
pub struct Deployment;

impl Deployment {
    /// Materialises data and models, launches the scheduler, runs the
    /// configured number of rounds, shuts down and reports.
    pub fn run(config: DeploymentConfig) -> DeploymentOutcome {
        Self::build(config).run()
    }

    /// Materialises data, models, the network and the server actor —
    /// without running anything. Tests drive the returned parts by hand
    /// to interleave rounds with checkpoints, crashes and restarts.
    pub fn build(config: DeploymentConfig) -> DeploymentParts {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let spec = VisionSpec::cifar_like();
        let generator = SyntheticVision::new(&spec, &mut rng);
        let backdoor = BackdoorSpec::semantic(1, 0, 2);
        let pool = generator.generate_excluding(&mut rng, config.total_train, 1, 0);
        let (shards, server_data) = partition::client_server_split(
            &mut rng,
            &pool,
            config.num_clients,
            0.9,
            config.server_share,
        );
        let test = generator.generate_excluding(&mut rng, 400, 1, 0);
        let backdoor_test = generator.generate_subgroup(&mut rng, 150, 1, 0);
        let attacker_backdoor = Arc::new(generator.generate_subgroup(&mut rng, 120, 1, 0));

        let mlp_spec = MlpSpec::new(spec.input_dim(), &config.hidden, spec.num_classes());
        let mut initial = Mlp::new(&mlp_spec, &mut rng);
        if config.warmup_central_epochs > 0 {
            let mut pooled = server_data.clone();
            for s in &shards {
                if !s.is_empty() {
                    pooled = pooled.concat(s);
                }
            }
            let mut opt = Sgd::new(0.1).with_momentum(0.9);
            for _ in 0..config.warmup_central_epochs {
                initial.train_epoch(pooled.features(), pooled.labels(), 32, &mut opt, &mut rng);
            }
        }

        let fl = FlConfig::new(config.num_clients, config.clients_per_round);
        let boost = fl.replacement_boost();
        let validator = Validator::new(ValidationConfig::new(config.lookback).with_margin(1.2));
        let plan = match &config.faults {
            Some(plan) => plan.clone(),
            None => FaultPlan::uniform(
                LinkPolicy::lossless().with_drop(config.drop_prob),
                config.seed ^ 0x4E45_5400,
            ),
        };
        let network = Network::with_transport(plan, config.transport);

        let server_endpoint = network.register(NodeId::SERVER);
        let server_config = ServerConfig {
            fl: fl.clone(),
            validators_per_round: config.validators_per_round,
            quorum: config.quorum,
            phase_timeout: config.phase_timeout,
            server_votes: true,
            seed: config.seed,
            bootstrap_rounds: config.bootstrap_rounds,
            bootstrap_trusted: (config.malicious_clients..config.num_clients).collect(),
            wire: config.wire_profile,
        };
        let server = Server::new(
            server_endpoint,
            server_config.clone(),
            initial.clone(),
            config.lookback + 1,
            validator,
            server_data.clone(),
        );

        let specs: Vec<ClientSpec> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let role = if i < config.malicious_clients {
                    ClientRole::Malicious {
                        attack: ModelReplacement::new(backdoor, boost),
                        backdoor_data: Arc::clone(&attacker_backdoor),
                        voting: VoterBehavior::StealthAccept,
                    }
                } else {
                    ClientRole::Honest
                };
                ClientSpec {
                    id: i,
                    data: Arc::new(shard),
                    role,
                    seed: config.seed.wrapping_add(1 + i as u64),
                }
            })
            .collect();

        DeploymentParts {
            network,
            server,
            specs,
            validator,
            template: Arc::new(initial),
            server_config,
            server_data,
            history_window: config.lookback + 1,
            test,
            backdoor_test,
            backdoor,
            config,
            fl,
        }
    }
}
