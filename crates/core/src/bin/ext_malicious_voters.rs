//! Extension experiment: empirical validation of the §IV-B quorum
//! calculus against malicious voters.
//!
//! Sweeps the number of attacker-controlled clients and measures
//!
//! - **stealth-accept collusion**: the FN rate on injections — the
//!   quorum must fail once the expected number of colluders among the
//!   validators outweighs honest rejections (`n_M > n − q`);
//! - **denial of service**: the rejection rate on clean rounds — the
//!   quorum must hold as long as `n_M < q` holds among selected
//!   validators.
//!
//! Run with `cargo run --release -p baffle-core --bin ext_malicious_voters`.

use baffle_attack::voting::VoterBehavior;
use baffle_core::exp::{cell, repeat_rates, ExpArgs, Table};
use baffle_core::{Simulation, SimulationConfig};

fn main() {
    let args = ExpArgs::from_env();
    let fractions: &[f64] =
        if args.fast { &[0.0, 0.3, 0.6] } else { &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6] };

    // Stealth-accept collusion vs FN rate.
    let mut stealth = Table::new(
        "Extension: stealth-accept colluders vs FN rate (CifarLike, n=10 validators, q=5)",
        &["malicious fraction", "expected colluders/round", "FN rate", "FP rate"],
    );
    for &frac in fractions {
        let mut config = SimulationConfig::cifar_like(args.seed);
        config.malicious_clients = (frac * config.num_clients as f64).round() as usize;
        config.malicious_voter_behavior = VoterBehavior::StealthAccept;
        if args.fast {
            config.rounds = 20;
            config.poison_rounds = vec![10, 15];
        }
        let (fp, fnr) = repeat_rates(&config, &args);
        stealth.row(vec![
            format!("{frac:.1}"),
            format!("{:.1}", frac * config.validators_per_round as f64),
            cell(&fnr),
            cell(&fp),
        ]);
    }
    stealth.emit(&args);

    // DoS vs clean-round rejection rate.
    let mut dos = Table::new(
        "Extension: denial-of-service voters vs clean-round rejection rate",
        &["malicious fraction", "expected DoS voters/round", "clean rounds rejected"],
    );
    for &frac in fractions {
        let mut rejected_rates = Vec::new();
        for rep in 0..args.reps() {
            let mut config = SimulationConfig::cifar_like(args.seed + 1000 * rep as u64);
            config.malicious_clients = (frac * config.num_clients as f64).round() as usize;
            config.malicious_voter_behavior = VoterBehavior::DenialOfService;
            config.poison_rounds = vec![];
            if args.fast {
                config.rounds = 15;
            }
            let report = Simulation::new(config).run();
            let rejected =
                report.records.iter().filter(|r| !r.decision.is_accepted()).count() as f64;
            rejected_rates.push(rejected / report.rounds_run as f64);
        }
        dos.row(vec![format!("{frac:.1}"), format!("{:.1}", frac * 10.0), cell(&rejected_rates)]);
    }
    dos.emit(&args);
    println!(
        "§IV-B predicts the stealth attack wins once colluders can outvote honest\n\
         rejections (n_M > n − q = 5 expected colluders), and DoS succeeds once\n\
         n_M ≥ q = 5 expected DoS voters — i.e. both transitions near fraction 0.5."
    );
}
