//! Detector ablations: simpler global-model checks that BaFFLe's
//! LOF-on-error-variations analysis is measured against.
//!
//! All detectors share the [`Detector`] interface: given the candidate
//! model, the accepted history and a validation set, produce an
//! accept/reject vote. They are *secure-aggregation compatible* (they
//! only look at the global model), so the comparison isolates the value
//! of the cross-round per-class analysis itself.

use baffle_attack::voting::Vote;
use baffle_core::variation::variation_from_confusions;
use baffle_core::{ValidateError, ValidationConfig, Validator};
use baffle_data::Dataset;
use baffle_nn::{ConfusionMatrix, Mlp, Model};

/// A global-model poisoning detector (object-safe so harnesses can mix
/// them in one list).
pub trait Detector {
    /// A short name for result tables.
    fn name(&self) -> &'static str;

    /// Votes on the candidate given the accepted history (oldest first)
    /// and the caller's validation data.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the inputs are unusable (empty
    /// data, not enough history).
    fn vote(&self, current: &Mlp, history: &[Mlp], data: &Dataset) -> Result<Vote, ValidateError>;
}

/// The full BaFFLe validator (Algorithm 2) behind the common interface.
#[derive(Debug, Clone)]
pub struct BaffleDetector {
    validator: Validator,
}

impl BaffleDetector {
    /// Wraps a configured validator.
    pub fn new(config: ValidationConfig) -> Self {
        Self { validator: Validator::new(config) }
    }
}

impl Detector for BaffleDetector {
    fn name(&self) -> &'static str {
        "baffle-lof"
    }

    fn vote(&self, current: &Mlp, history: &[Mlp], data: &Dataset) -> Result<Vote, ValidateError> {
        Ok(self.validator.validate(current, history, data)?.vote())
    }
}

/// Naive accuracy gate: reject when the candidate's overall accuracy on
/// the validation set drops more than `tolerance` below the previous
/// model's. This is the "measuring model accuracy" anomaly detection the
/// paper notes adaptive attackers bypass (§IV-A) — a boosted backdoor
/// preserves overall accuracy by construction.
#[derive(Debug, Clone)]
pub struct AccuracyGate {
    tolerance: f32,
}

impl AccuracyGate {
    /// Creates the gate; `tolerance` is the permitted accuracy drop
    /// (e.g. 0.02 = two accuracy points).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or not finite.
    pub fn new(tolerance: f32) -> Self {
        assert!(tolerance.is_finite() && tolerance >= 0.0, "tolerance must be non-negative");
        Self { tolerance }
    }
}

impl Detector for AccuracyGate {
    fn name(&self) -> &'static str {
        "accuracy-gate"
    }

    fn vote(&self, current: &Mlp, history: &[Mlp], data: &Dataset) -> Result<Vote, ValidateError> {
        let prev = history.last().ok_or(ValidateError::NotEnoughHistory { got: 0, need: 1 })?;
        if data.is_empty() {
            return Err(ValidateError::EmptyDataset);
        }
        let acc_prev = prev.accuracy(data.features(), data.labels());
        let acc_curr = current.accuracy(data.features(), data.labels());
        Ok(if acc_prev - acc_curr > self.tolerance { Vote::Reject } else { Vote::Accept })
    }
}

/// Z-score detector on the error-variation *norm*: rejects when the L2
/// norm of the candidate's variation vector exceeds the history mean by
/// `threshold` standard deviations. A cheaper cross-round analysis than
/// LOF — it sees magnitude but not direction structure.
#[derive(Debug, Clone)]
pub struct VariationZScore {
    threshold: f64,
}

impl VariationZScore {
    /// Creates the detector with a rejection threshold in standard
    /// deviations (e.g. 3.0).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold.is_finite() && threshold > 0.0, "threshold must be positive");
        Self { threshold }
    }
}

impl Detector for VariationZScore {
    fn name(&self) -> &'static str {
        "variation-zscore"
    }

    fn vote(&self, current: &Mlp, history: &[Mlp], data: &Dataset) -> Result<Vote, ValidateError> {
        if history.len() < 4 {
            return Err(ValidateError::NotEnoughHistory { got: history.len(), need: 4 });
        }
        if data.is_empty() {
            return Err(ValidateError::EmptyDataset);
        }
        let cms: Vec<ConfusionMatrix> = history
            .iter()
            .map(|m| ConfusionMatrix::from_model(m, data.features(), data.labels()))
            .collect();
        let current_cm = ConfusionMatrix::from_model(current, data.features(), data.labels());
        let norms: Vec<f64> =
            cms.windows(2).map(|w| norm64(&variation_from_confusions(&w[0], &w[1]))).collect();
        let new_norm =
            norm64(&variation_from_confusions(cms.last().expect("non-empty"), &current_cm));
        let mean = norms.iter().sum::<f64>() / norms.len() as f64;
        let var = norms.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / norms.len() as f64;
        let std = var.sqrt().max(1e-9);
        Ok(if (new_norm - mean) / std > self.threshold { Vote::Reject } else { Vote::Accept })
    }
}

fn norm64(v: &[f32]) -> f64 {
    v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// LOF detectors restricted to half the variation vector, for the
/// source-only / target-only ablation called out in `DESIGN.md` §9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariationHalf {
    /// Source-focused errors only (`vˢ`).
    SourceOnly,
    /// Target-focused errors only (`vᵗ`).
    TargetOnly,
}

/// BaFFLe's LOF analysis run on only the source- or target-focused half
/// of the variation vector.
#[derive(Debug, Clone)]
pub struct HalfVariationLof {
    half: VariationHalf,
    k: usize,
    margin: f64,
    trust_window: usize,
}

impl HalfVariationLof {
    /// Creates the ablated detector with BaFFLe's defaults for window
    /// `ℓ` (`k = ⌈ℓ/2⌉`, trusted window `⌊ℓ/4⌋`, margin as configured).
    pub fn new(half: VariationHalf, lookback: usize, margin: f64) -> Self {
        Self { half, k: lookback.div_ceil(2), margin, trust_window: (lookback / 4).max(1) }
    }
}

impl Detector for HalfVariationLof {
    fn name(&self) -> &'static str {
        match self.half {
            VariationHalf::SourceOnly => "lof-source-only",
            VariationHalf::TargetOnly => "lof-target-only",
        }
    }

    fn vote(&self, current: &Mlp, history: &[Mlp], data: &Dataset) -> Result<Vote, ValidateError> {
        if history.len() < 4 {
            return Err(ValidateError::NotEnoughHistory { got: history.len(), need: 4 });
        }
        if data.is_empty() {
            return Err(ValidateError::EmptyDataset);
        }
        let c = current.num_classes();
        let slice = |v: Vec<f32>| -> Vec<f32> {
            match self.half {
                VariationHalf::SourceOnly => v[..c].to_vec(),
                VariationHalf::TargetOnly => v[c..].to_vec(),
            }
        };
        let cms: Vec<ConfusionMatrix> = history
            .iter()
            .map(|m| ConfusionMatrix::from_model(m, data.features(), data.labels()))
            .collect();
        let current_cm = ConfusionMatrix::from_model(current, data.features(), data.labels());
        let refs: Vec<Vec<f32>> =
            cms.windows(2).map(|w| slice(variation_from_confusions(&w[0], &w[1]))).collect();
        let v_new = slice(variation_from_confusions(cms.last().expect("non-empty"), &current_cm));

        let phi = baffle_lof_score(&v_new, &refs, self.k)?;
        let tw = self.trust_window.min(refs.len().saturating_sub(2)).max(1);
        let mut trusted = Vec::new();
        for i in refs.len() - tw..refs.len() {
            let mut others = refs.clone();
            let probe = others.remove(i);
            let p = baffle_lof_score(&probe, &others, self.k)?;
            if p.is_finite() {
                trusted.push(p);
            }
        }
        let tau = if trusted.is_empty() {
            1.0
        } else {
            trusted.iter().sum::<f64>() / trusted.len() as f64
        };
        Ok(if phi > self.margin * tau { Vote::Reject } else { Vote::Accept })
    }
}

fn baffle_lof_score(query: &[f32], refs: &[Vec<f32>], k: usize) -> Result<f64, ValidateError> {
    baffle_lof::lof_against(query, refs, k).map_err(ValidateError::Lof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_data::{SyntheticVision, VisionSpec};
    use baffle_nn::{MlpSpec, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        history: Vec<Mlp>,
        data: Dataset,
        poisoned: Mlp,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = SyntheticVision::new(&VisionSpec::new(5, 12, 2), &mut rng);
        let train = gen.generate(&mut rng, 2_500);
        let data = gen.generate(&mut rng, 500);
        let mut model = Mlp::new(&MlpSpec::new(12, &[20], 5), &mut rng);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let mut history = Vec::new();
        for _ in 0..12 {
            model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
            history.push(model.clone());
        }
        let spec = baffle_attack::BackdoorSpec::label_flip(1, 3);
        let attack = baffle_attack::ModelReplacement::new(spec, 1.0);
        let bd = gen.generate_class(&mut rng, 150, 1);
        let poisoned = attack.train_backdoored(&model, &train, &bd, &mut rng);
        Fixture { history, data, poisoned }
    }

    fn detectors() -> Vec<Box<dyn Detector>> {
        vec![
            Box::new(BaffleDetector::new(ValidationConfig::new(10).with_margin(1.2))),
            Box::new(VariationZScore::new(3.0)),
            Box::new(HalfVariationLof::new(VariationHalf::SourceOnly, 10, 1.2)),
            Box::new(HalfVariationLof::new(VariationHalf::TargetOnly, 10, 1.2)),
        ]
    }

    #[test]
    fn cross_round_detectors_flag_the_label_flip() {
        let f = fixture(31);
        for d in detectors() {
            let vote = d.vote(&f.poisoned, &f.history, &f.data).unwrap();
            assert_eq!(vote, Vote::Reject, "{} missed the label flip", d.name());
        }
    }

    #[test]
    fn cross_round_detectors_accept_the_latest_clean_model() {
        let f = fixture(32);
        let (current, history) = f.history.split_last().unwrap();
        for d in detectors() {
            let vote = d.vote(current, history, &f.data).unwrap();
            assert_eq!(vote, Vote::Accept, "{} rejected a clean model", d.name());
        }
    }

    #[test]
    fn accuracy_gate_misses_an_accuracy_preserving_backdoor() {
        // The label-flip of one of five classes costs some accuracy, so
        // give the gate a generous tolerance as a deployment would to
        // keep FPs low — then it misses subtler backdoors. Use the
        // semantic backdoor (tiny subpopulation): accuracy is preserved.
        let mut rng = StdRng::seed_from_u64(33);
        let gen = SyntheticVision::new(&VisionSpec::new(5, 12, 3), &mut rng);
        let train = gen.generate_excluding(&mut rng, 2_500, 1, 0);
        let data = gen.generate_excluding(&mut rng, 500, 1, 0);
        let mut model = Mlp::new(&MlpSpec::new(12, &[20], 5), &mut rng);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let mut history = Vec::new();
        for _ in 0..10 {
            model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
            history.push(model.clone());
        }
        let spec = baffle_attack::BackdoorSpec::semantic(1, 0, 3);
        let attack = baffle_attack::ModelReplacement::new(spec, 1.0);
        let bd = gen.generate_subgroup(&mut rng, 150, 1, 0);
        let poisoned = attack.train_backdoored(&model, &train, &bd, &mut rng);

        // A deployment tunes the tolerance to its benign round-to-round
        // fluctuation; 5 accuracy points is a conservative production
        // setting (tighter gates reject genuine updates constantly).
        let gate = AccuracyGate::new(0.05);
        let vote = gate.vote(&poisoned, &history, &data).unwrap();
        assert_eq!(
            vote,
            Vote::Accept,
            "the semantic backdoor preserved accuracy; the gate should miss it"
        );
        // …while BaFFLe's per-class analysis still catches the same model.
        let baffle = BaffleDetector::new(ValidationConfig::new(8).with_margin(1.2));
        assert_eq!(baffle.vote(&poisoned, &history, &data).unwrap(), Vote::Reject);
    }

    #[test]
    fn accuracy_gate_catches_a_model_collapse() {
        let f = fixture(34);
        let mut rng = StdRng::seed_from_u64(35);
        let garbage = Mlp::new(&MlpSpec::new(12, &[20], 5), &mut rng); // untrained
        let gate = AccuracyGate::new(0.02);
        assert_eq!(gate.vote(&garbage, &f.history, &f.data).unwrap(), Vote::Reject);
    }

    #[test]
    fn detectors_report_typed_errors() {
        let f = fixture(36);
        let empty = Dataset::empty(12, 5);
        for d in detectors() {
            assert!(d.vote(&f.poisoned, &f.history, &empty).is_err(), "{}", d.name());
            assert!(d.vote(&f.poisoned, &f.history[..1], &f.data).is_err(), "{}", d.name());
        }
    }
}
