//! Flat-vector (`&[f32]`) helpers.
//!
//! The federated-learning layer treats a model as one flat parameter vector;
//! these helpers implement the arithmetic used by FedAvg, model replacement
//! and the secure-aggregation masks.
//!
//! All binary operations panic on length mismatch — mixing parameter vectors
//! of two different architectures is a programming error.

use crate::simd::{F32x8, LANES};

/// `y += alpha * x` (the BLAS "axpy" kernel), 8 lanes at a time.
///
/// Each element is a single independent multiply-then-add, so the
/// explicit [`F32x8`] lanes change nothing about the result — this stays
/// bit-identical to the scalar loop for every input.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    let av = F32x8::splat(alpha);
    let mut i = 0;
    while i + LANES <= y.len() {
        let mut acc = F32x8::load(&y[i..]);
        acc.mul_add_assign(av, F32x8::load(&x[i..]));
        acc.store(&mut y[i..]);
        i += LANES;
    }
    for (yi, &xi) in y[i..].iter_mut().zip(&x[i..]) {
        *yi += alpha * xi;
    }
}

/// Entrywise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Entrywise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Entrywise scaling `alpha * a` as a new vector.
pub fn scale(alpha: f32, a: &[f32]) -> Vec<f32> {
    a.iter().map(|&x| alpha * x).collect()
}

/// Dot product of two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Linear interpolation `(1 - t) * a + t * b` as a new vector.
///
/// `t = 0` returns `a`, `t = 1` returns `b`; `t` outside `[0, 1]`
/// extrapolates.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn lerp(a: &[f32], b: &[f32], t: f32) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (1.0 - t) * x + t * y).collect()
}

/// Arithmetic mean of several equal-length vectors.
///
/// # Panics
///
/// Panics if `vectors` is empty or the lengths differ.
pub fn mean(vectors: &[Vec<f32>]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "mean: need at least one vector");
    let n = vectors.len() as f32;
    let mut acc = vec![0.0; vectors[0].len()];
    for v in vectors {
        axpy(1.0, v, &mut acc);
    }
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// Whether every entry is finite (no NaN or infinity).
pub fn is_finite(a: &[f32]) -> bool {
    a.iter().all(|x| x.is_finite())
}

/// Clamps the L2 norm of `a` to at most `max_norm`, in place.
///
/// A zero vector is left unchanged. Used by norm-clipping baselines.
pub fn clip_norm(a: &mut [f32], max_norm: f32) {
    let n = norm(a);
    if n > max_norm && n > 0.0 {
        let s = max_norm / n;
        for x in a.iter_mut() {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -0.5, 4.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_symmetric() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&b, &a), 5.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = vec![0.0, 10.0];
        let b = vec![10.0, 0.0];
        assert_eq!(lerp(&a, &b, 0.0), a);
        assert_eq!(lerp(&a, &b, 1.0), b);
        assert_eq!(lerp(&a, &b, 0.5), vec![5.0, 5.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let vs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(mean(&vs), vec![2.0, 3.0]);
    }

    #[test]
    fn clip_norm_shrinks_long_vectors_only() {
        let mut v = vec![3.0, 4.0];
        clip_norm(&mut v, 10.0);
        assert_eq!(v, vec![3.0, 4.0]);
        clip_norm(&mut v, 1.0);
        let n = norm(&v);
        assert!((n - 1.0).abs() < 1e-6, "norm after clip = {n}");
    }

    #[test]
    fn clip_norm_zero_vector_untouched() {
        let mut v = vec![0.0, 0.0];
        clip_norm(&mut v, 1.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn is_finite_detects_inf() {
        assert!(is_finite(&[1.0, 2.0]));
        assert!(!is_finite(&[1.0, f32::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_length_mismatch_panics() {
        let _ = add(&[1.0], &[1.0, 2.0]);
    }
}
