//! Regenerates **Table II**: FN rates of BAFFLE-C, BAFFLE-S and BAFFLE
//! against adaptive vs non-adaptive injections on the CIFAR-like setting,
//! for the three data splits.
//!
//! The adaptive attacker (§VI-C) runs a local copy of VALIDATE on its own
//! data and dampens the poisoned update until that local check passes;
//! the table shows whether such self-accepted injections still get caught
//! by the honest validators' diverse data.
//!
//! Run with `cargo run --release -p baffle-core --bin table2_adaptive`.

use baffle_core::exp::{
    base_config, cell, repeat_rates, server_shares, split_label, ExpArgs, Table,
};
use baffle_core::{AttackKind, DatasetKind, DefenseMode};

fn main() {
    let args = ExpArgs::from_env();
    let mut table = Table::new(
        "Table II (CifarLike): FN rates against adaptive injections, ℓ = 20, q = 5",
        &["split", "attack", "FN C", "FN S", "FN C+S"],
    );
    for share in server_shares(DatasetKind::CifarLike) {
        for attack in [AttackKind::Replacement, AttackKind::Adaptive] {
            let mut row = vec![
                split_label(share),
                match attack {
                    AttackKind::Replacement => "Non-Adaptive".to_string(),
                    AttackKind::Adaptive => "Adaptive".to_string(),
                },
            ];
            for mode in [DefenseMode::ClientsOnly, DefenseMode::ServerOnly, DefenseMode::Both] {
                let mut config = base_config(DatasetKind::CifarLike, args.seed);
                config.server_share = share;
                config.defense = mode;
                config.attack = attack;
                if args.fast {
                    config.rounds = 20;
                    config.poison_rounds = vec![10, 15];
                }
                let (_, fnr) = repeat_rates(&config, &args);
                row.push(cell(&fnr));
            }
            table.row(row);
        }
    }
    table.emit(&args);
}
